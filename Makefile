# Convenience targets for the DHB reproduction.

.PHONY: install test bench bench-json figures clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-json:
	PYTHONPATH=src python benchmarks/perf_report.py

figures:
	python -m repro.cli figures
	python -m repro.cli fig7
	python -m repro.cli fig8
	python -m repro.cli fig9
	python -m repro.cli variants

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
