# Convenience targets for the DHB reproduction.

.PHONY: install test lint bench bench-json bench-check smoke-large figures clean

install:
	pip install -e . || python setup.py develop

# Mirrors the tier-1 CI command exactly.
test:
	PYTHONPATH=src python -m pytest -x -q

# Uses ruff when installed; otherwise falls back to the dependency-free
# AST linter, which enforces the same rule set (see pyproject [tool.ruff]).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks tools; \
	else \
		echo "ruff not found; using tools/lint.py fallback"; \
		python tools/lint.py; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

bench-json:
	PYTHONPATH=src python benchmarks/perf_report.py

# Regression gate: fresh quick benches vs the committed BENCH_sweep.json.
bench-check:
	PYTHONPATH=src python benchmarks/check_regression.py

# Large-horizon smoke: a 1M-request fig7 point under wall-clock/RSS budgets.
smoke-large:
	PYTHONPATH=src python benchmarks/large_smoke.py

figures:
	python -m repro.cli figures
	python -m repro.cli fig7
	python -m repro.cli fig8
	python -m repro.cli fig9
	python -m repro.cli variants

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
