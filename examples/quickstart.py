#!/usr/bin/env python
"""Quickstart: simulate DHB on the paper's canonical workload.

Distributes a two-hour video cut into 99 segments (maximum waiting time
~73 s) under Poisson requests, and prints the average/peak server bandwidth
next to the analytic anchors: the harmonic saturation plateau H(99) and the
fixed costs of NPB and FB.

Run:  python examples/quickstart.py [requests_per_hour]
"""

import sys

from repro import (
    DHBProtocol,
    PoissonArrivals,
    RandomStreams,
    SlottedSimulation,
)
from repro.analysis.theory import dhb_saturation_bandwidth, fb_bandwidth
from repro.protocols.npb import pagoda_streams_for_segments
from repro.units import TWO_HOURS


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 100.0
    n_segments = 99
    slot = TWO_HOURS / n_segments

    protocol = DHBProtocol(n_segments=n_segments)
    horizon_slots = 5_000
    simulation = SlottedSimulation(
        protocol,
        slot_duration=slot,
        horizon_slots=horizon_slots,
        warmup_slots=horizon_slots // 10,
    )
    arrivals = PoissonArrivals(rate_per_hour=rate)
    times = arrivals.generate(
        horizon_slots * slot, RandomStreams(seed=42).get("arrivals")
    )
    result = simulation.run(times)

    print(f"DHB, two-hour video, {n_segments} segments, {rate:g} requests/hour")
    print(f"  maximum waiting time  : {slot:6.1f} s (one slot)")
    print(f"  measured mean wait    : {result.mean_wait:6.1f} s")
    print(f"  requests served       : {result.n_requests}")
    print(f"  average bandwidth     : {result.mean_streams:6.2f} streams")
    print(f"  peak bandwidth        : {result.max_streams:6.0f} streams")
    print("reference points:")
    print(f"  DHB saturation H(99)  : {dhb_saturation_bandwidth(n_segments):6.2f} streams")
    print(f"  NPB fixed cost        : {pagoda_streams_for_segments(n_segments):6d} streams")
    print(f"  FB  fixed cost        : {fb_bandwidth(n_segments):6d} streams")


if __name__ == "__main__":
    main()
