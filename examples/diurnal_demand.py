#!/usr/bin/env python
"""The paper's motivating scenario: demand that swings with the time of day.

"Child-oriented fare will always be in higher demand during the day and
early evening hours than at night ... No conventional distribution protocols
can effectively handle the distribution of these videos."

This example simulates 48 hours of a child-oriented title whose request rate
follows a daytime-peaked profile (idle overnight, ~120 requests/hour at
peak), under three protocols:

* NPB — the best fixed broadcast schedule: great at the peak, pure waste at
  4 am;
* stream tapping — great at 4 am, overloaded at the peak;
* DHB — tracks both regimes, which is the paper's whole point.

It prints per-4-hour-bucket average bandwidths so the time-of-day effect is
visible directly.
"""

from typing import List

import numpy as np

from repro import DHBProtocol, RandomStreams, StreamTappingProtocol
from repro.analysis.tables import format_simple_table
from repro.protocols.npb import pagoda_streams_for_segments
from repro.sim.continuous import ContinuousSimulation
from repro.sim.slotted import SlottedSimulation
from repro.units import HOUR, TWO_HOURS
from repro.workload.arrivals import NonHomogeneousPoisson
from repro.workload.diurnal import child_daytime_profile

N_SEGMENTS = 99
DAYS = 2
PEAK_RATE = 120.0


def bucket_means(series: List[int], slots_per_bucket: int) -> List[float]:
    """Average of each consecutive bucket of per-slot loads."""
    means = []
    for start in range(0, len(series) - slots_per_bucket + 1, slots_per_bucket):
        bucket = series[start : start + slots_per_bucket]
        means.append(sum(bucket) / len(bucket))
    return means


def main() -> None:
    profile = child_daytime_profile(peak_rate_per_hour=PEAK_RATE)
    horizon = DAYS * 24 * HOUR
    process = NonHomogeneousPoisson(profile.rate_at, profile.max_rate_per_hour)
    times = process.generate(horizon, RandomStreams(7).get("arrivals"))
    print(
        f"{len(times)} requests over {DAYS} days "
        f"(profile mean {profile.mean_rate_per_hour:.0f}/h, peak {PEAK_RATE:.0f}/h)"
    )

    slot = TWO_HOURS / N_SEGMENTS
    slots = int(horizon / slot)

    dhb = DHBProtocol(n_segments=N_SEGMENTS)
    dhb_run = SlottedSimulation(dhb, slot, slots, warmup_slots=0, keep_series=True).run(
        times
    )

    tapping = StreamTappingProtocol(duration=TWO_HOURS)  # online rate estimate
    tap_run = ContinuousSimulation(tapping, horizon).run(times)

    npb_streams = pagoda_streams_for_segments(N_SEGMENTS)

    slots_per_bucket = int(4 * HOUR / slot)
    dhb_buckets = bucket_means(dhb_run.series, slots_per_bucket)
    rows = []
    for index, dhb_mean in enumerate(dhb_buckets):
        start_hour = (index * 4) % 24
        mid = (index * 4 + 2) * HOUR
        rows.append(
            [
                f"day {index * 4 // 24 + 1} {start_hour:02d}:00-{start_hour + 4:02d}:00",
                f"{profile.rate_at(mid):.0f}",
                f"{dhb_mean:.2f}",
                f"{npb_streams:.2f}",
            ]
        )
    print()
    print(format_simple_table(
        ["window", "req/h", "DHB streams", "NPB streams"], rows
    ))
    print()
    print(f"whole-run averages: DHB {dhb_run.mean_streams:.2f} streams, "
          f"NPB {npb_streams} streams (always), "
          f"stream tapping {tap_run.mean_streams:.2f} streams")
    print("DHB idles with the audience at night and stays below NPB at the peak;")
    print("tapping matches DHB overnight but pays dearly for zero-delay at noon.")


if __name__ == "__main__":
    main()
