#!/usr/bin/env python
"""A tour of every distribution protocol in the library.

Prints the fixed schedules of Figures 1-3, DHB's dynamic schedules of
Figures 4-5, and then races all protocols — slotted and reactive — over one
shared Poisson workload, reproducing the paper's core comparison in
miniature.

Run:  python examples/protocol_tour.py
"""

from repro.analysis.tables import format_simple_table
from repro.experiments.config import SweepConfig
from repro.experiments.fig1to5 import render_all_figures
from repro.experiments.runner import arrivals_for_rate, measure_protocol
from repro.protocols.registry import ProtocolContext, available_protocols, build_protocol


def main() -> None:
    print(render_all_figures())
    print()

    config = SweepConfig().quick(rates_per_hour=(20.0,))
    rate = config.rates_per_hour[0]
    arrivals = arrivals_for_rate(config, rate)
    context = ProtocolContext(
        n_segments=config.n_segments,
        duration=config.duration,
        rate_per_hour=rate,
    )

    rows = []
    for name in available_protocols():
        protocol = build_protocol(name, context)
        point = measure_protocol(protocol, config, rate, arrival_times=arrivals)
        rows.append(
            [
                name,
                f"{point.mean_bandwidth:.2f}",
                f"{point.max_bandwidth:.0f}",
                f"{point.mean_wait:.1f}",
            ]
        )
    print(f"All protocols at {rate:g} requests/hour "
          f"(two-hour video, {config.n_segments} segments):")
    print(
        format_simple_table(
            ["protocol", "mean streams", "max streams", "mean wait s"], rows
        )
    )
    print()
    print("Notes: fixed protocols (fb/npb/sb) cost their stream count at any")
    print("rate; reactive ones (tapping/patching/catching) give zero-delay")
    print("access but grow with the rate; dhb tracks the cheapest of both.")


if __name__ == "__main__":
    main()
