#!/usr/bin/env python
"""Premiere night: a flash crowd plus VCR activity on one title.

A new release opens with a surge (900 extra requests/hour decaying with a
2-hour half-life-ish constant over a 10/hour base).  We distribute it with
DHB and with the interactive DHB extension, where a fraction of viewers
pause and later resume mid-video (each resume is a mid-video request with
shifted deadlines).

The output shows (a) DHB riding the surge without ever exceeding the fixed
NPB allocation by much, and (b) what VCR interactivity costs the server.

Run:  python examples/premiere_night.py
"""

import numpy as np

from repro.analysis.tables import format_simple_table
from repro.core.dhb import DHBProtocol
from repro.core.interactive import InteractiveDHB
from repro.protocols.npb import pagoda_streams_for_segments
from repro.sim.rng import RandomStreams
from repro.sim.slotted import SlottedSimulation
from repro.units import HOUR, TWO_HOURS
from repro.workload.flash import FlashCrowd

N_SEGMENTS = 99
SLOT = TWO_HOURS / N_SEGMENTS
HORIZON = 12 * HOUR


def main() -> None:
    crowd = FlashCrowd(peak_rate_per_hour=900.0, decay_hours=2.0,
                       base_rate_per_hour=10.0)
    rng = RandomStreams(2026)
    times = crowd.generate(HORIZON, rng.get("arrivals"))
    print(f"premiere surge: {len(times)} requests in 12 hours "
          f"(expected {crowd.expected_requests(HORIZON):.0f}); "
          f"opening hour rate ~{crowd.rate_at(0.0):.0f}/h")

    # Plain DHB over the surge.
    slots = int(HORIZON / SLOT)
    protocol = DHBProtocol(n_segments=N_SEGMENTS)
    run = SlottedSimulation(protocol, SLOT, slots, keep_series=True).run(times)
    series = np.array(run.series)
    per_hour = int(HOUR / SLOT)
    rows = []
    for hour in range(0, 12, 2):
        window = series[hour * per_hour : (hour + 2) * per_hour]
        rows.append(
            [
                f"h{hour:02d}-{hour + 2:02d}",
                f"{crowd.rate_at((hour + 1) * HOUR):.0f}",
                f"{window.mean():.2f}",
                f"{window.max():.0f}",
            ]
        )
    npb = pagoda_streams_for_segments(N_SEGMENTS)
    print()
    print(format_simple_table(["window", "req/h", "DHB mean", "DHB max"], rows))
    print(f"(NPB would hold {npb} streams through the whole night; "
          f"DHB averages {run.mean_streams:.2f})")

    # Interactive viewing: 30% of viewers pause once and resume later.
    vcr = InteractiveDHB(n_segments=N_SEGMENTS, track_clients=True)
    plain_total = 0
    resume_rng = rng.get("vcr")
    events = []
    for t in times:
        slot = int(t / SLOT)
        events.append((slot, 1))
        if resume_rng.random() < 0.3:
            pause_segment = int(resume_rng.integers(2, N_SEGMENTS))
            resume_slot = slot + int(resume_rng.integers(5, 50))
            events.append((resume_slot, pause_segment))
    events.sort()
    for slot, start_segment in events:
        vcr.handle_request(slot, start_segment=start_segment)
    plain = DHBProtocol(n_segments=N_SEGMENTS)
    for t in times:
        plain.handle_request(int(t / SLOT))
    print()
    print(f"interactive extension: {vcr.resumes_admitted} resume events on top "
          f"of {len(times)} plays")
    print(f"  instances scheduled: plain DHB {plain.schedule.total_instances}, "
          f"with VCR {vcr.schedule.total_instances} "
          f"(+{vcr.schedule.total_instances / plain.schedule.total_instances - 1:.0%})")
    # Verify a sample of resumed clients met their shifted deadlines.
    checked = 0
    for plan, (slot, start) in zip(vcr.clients, events):
        vcr.verify_resumed_plan(plan, start)
        checked += 1
    print(f"  all {checked} client plans verified on time")


if __name__ == "__main__":
    main()
