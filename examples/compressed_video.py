#!/usr/bin/env python
"""Section 4 end to end: distributing a compressed (VBR) video with DHB.

Builds the Matrix-calibrated synthetic trace (8170 s, avg 636 KB/s, 1-s peak
951 KB/s), derives the four DHB configurations the paper describes —

  DHB-a  peak-rate streams, 137 segments
  DHB-b  deterministic waiting time -> max per-segment rate
  DHB-c  work-ahead smoothing -> fewer segments at the smoothed rate
  DHB-d  + relaxed per-segment minimum frequencies T[j]

— prints their derivation (segment counts, stream rates, first periods), and
simulates all four plus UD at one arrival rate, reproducing a column of
Figure 9.

Run:  python examples/compressed_video.py [requests_per_hour]
"""

import sys

from repro.analysis.tables import format_simple_table
from repro.core.variants import make_all_variants
from repro.experiments.config import SweepConfig
from repro.experiments.fig9 import FIG9_MAX_WAIT
from repro.experiments.runner import arrivals_for_rate, measure_protocol
from repro.protocols.ud import UniversalDistributionProtocol
from repro.smoothing.deadlines import delay_gained
from repro.smoothing.packing import pack_video
from repro.units import KILOBYTE, MEGABYTE
from repro.video.matrix import matrix_like_video


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 100.0
    video = matrix_like_video()
    print(f"video: {video!r}")
    print(f"  avg {video.average_bandwidth / KILOBYTE:.0f} KB/s, "
          f"1-s peak {video.peak_bandwidth() / KILOBYTE:.0f} KB/s "
          f"(paper: 636 / 951)")

    variants = make_all_variants(video, FIG9_MAX_WAIT)
    rows = []
    for name in ("DHB-a", "DHB-b", "DHB-c", "DHB-d"):
        v = variants[name]
        rows.append(
            [
                name,
                v.n_segments,
                f"{v.stream_rate / KILOBYTE:.0f}",
                " ".join(str(v.periods[j]) for j in range(1, 7)),
            ]
        )
    print()
    print(format_simple_table(
        ["variant", "segments", "stream KB/s", "T[1..6]"], rows
    ))

    packed = pack_video(video, FIG9_MAX_WAIT)
    gains = delay_gained(packed)
    relaxed = sum(1 for g in gains if g > 0)
    print(f"\nDHB-d frequency relaxation: {relaxed} of {len(gains)} segments can "
          f"be delayed by up to {max(gains)} extra slots")

    config = SweepConfig(duration=video.duration, n_segments=variants["DHB-a"].n_segments)
    config = config.quick(rates_per_hour=(rate,))
    arrivals = arrivals_for_rate(config, rate)

    results = []
    ud = UniversalDistributionProtocol(n_segments=config.n_segments)
    peak = video.peak_bandwidth()
    point = measure_protocol(ud, config, rate, arrival_times=arrivals,
                             stream_bandwidth=peak, slot_duration=FIG9_MAX_WAIT)
    results.append(["UD", f"{point.mean_bandwidth / MEGABYTE:.3f}"])
    for name in ("DHB-a", "DHB-b", "DHB-c", "DHB-d"):
        v = variants[name]
        point = measure_protocol(
            v.build_protocol(), config, rate, arrival_times=arrivals,
            stream_bandwidth=v.stream_rate, slot_duration=v.slot_duration,
        )
        results.append([name, f"{point.mean_bandwidth / MEGABYTE:.3f}"])

    print(f"\naverage server bandwidth at {rate:g} requests/hour (one Figure 9 column):")
    print(format_simple_table(["protocol", "MB/s"], results))
    print("\nexpected ordering (paper): UD > DHB-a > DHB-b > DHB-c > DHB-d")


if __name__ == "__main__":
    main()
