#!/usr/bin/env python
"""Capacity planning for a multi-video VOD server.

Uses the Zipf catalog popularity model to split an aggregate request stream
across a catalog of titles, then picks, per title, the cheaper of DHB and
stream tapping at that title's individual rate — the deployment decision the
paper's flexibility argument enables ("a dynamic protocol ... can be easily
tailored to the specific bandwidth requirements of any given video").

Also demonstrates the client-bandwidth-limited DHB extension (the paper's
future-work item) and what its receive cap costs the server.

Run:  python examples/capacity_planning.py
"""

from repro import BandwidthLimitedDHB, DHBProtocol, RandomStreams, StreamTappingProtocol
from repro.analysis.tables import format_simple_table
from repro.analysis.theory import patching_cost_rate
from repro.experiments.config import SweepConfig
from repro.experiments.runner import arrivals_for_rate, measure_protocol
from repro.units import HOUR, TWO_HOURS
from repro.workload.popularity import ZipfCatalog

N_SEGMENTS = 99
CATALOG = 20
TOTAL_RATE = 400.0  # aggregate requests/hour across the catalog


def main() -> None:
    catalog = ZipfCatalog(n_videos=CATALOG, theta=1.0)
    config = SweepConfig().quick(rates_per_hour=(1.0,))  # per-title rates vary

    rows = []
    total_streams = 0.0
    for rank in range(CATALOG):
        rate = catalog.rate_for(rank, TOTAL_RATE)
        per_title = config.replace(rates_per_hour=(max(rate, 0.2),))
        arrivals = arrivals_for_rate(per_title, per_title.rates_per_hour[0])
        dhb_point = measure_protocol(
            DHBProtocol(n_segments=N_SEGMENTS),
            per_title,
            per_title.rates_per_hour[0],
            arrival_times=arrivals,
        )
        tapping_estimate = patching_cost_rate(rate / HOUR, TWO_HOURS)
        choice = "DHB" if dhb_point.mean_bandwidth <= tapping_estimate else "tapping"
        chosen = min(dhb_point.mean_bandwidth, tapping_estimate)
        total_streams += chosen
        if rank < 8 or rank == CATALOG - 1:
            rows.append(
                [
                    f"#{rank + 1}",
                    f"{rate:.1f}",
                    f"{dhb_point.mean_bandwidth:.2f}",
                    f"{tapping_estimate:.2f}",
                    choice,
                ]
            )
    print(f"catalog of {CATALOG} titles, {TOTAL_RATE:g} requests/hour total, "
          f"Zipf(1.0) popularity")
    print(format_simple_table(
        ["title", "req/h", "DHB streams", "tapping est.", "pick"], rows
    ))
    print(f"\nprovisioned server bandwidth (cheaper protocol per title): "
          f"{total_streams:.1f} streams")

    # Client receive-cap extension: what does limiting the STB cost?
    rate = catalog.rate_for(0, TOTAL_RATE)
    per_title = config.replace(rates_per_hour=(rate,))
    arrivals = arrivals_for_rate(per_title, rate)
    rows = []
    for cap_label, protocol in [
        ("unlimited", DHBProtocol(n_segments=N_SEGMENTS)),
        ("cap 3", BandwidthLimitedDHB(n_segments=N_SEGMENTS, client_cap=3)),
        ("cap 2", BandwidthLimitedDHB(n_segments=N_SEGMENTS, client_cap=2)),
    ]:
        point = measure_protocol(protocol, per_title, rate, arrival_times=arrivals)
        rows.append([cap_label, f"{point.mean_bandwidth:.2f}", f"{point.max_bandwidth:.0f}"])
    print(f"\nclient receive-cap extension on the most popular title "
          f"({rate:.0f} req/h):")
    print(format_simple_table(["client cap", "mean streams", "max streams"], rows))
    print("the cap trades a little server bandwidth for a bounded set-top box,")
    print("the direction the paper's future work points at.")


if __name__ == "__main__":
    main()
