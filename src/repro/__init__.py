"""repro — a reproduction of *A Dynamic Heuristic Broadcasting Protocol for
Video-on-Demand* (Carter, Pâris, Mohan & Long, ICDCS 2001).

The package implements the paper's Dynamic Heuristic Broadcasting (DHB)
protocol, every protocol it is evaluated against (FB, NPB, SB, UD, dynamic
NPB, stream tapping, patching, batching, selective catching), the compressed-
video machinery of its Section 4 (VBR traces, work-ahead smoothing, the
DHB-a/b/c/d configurations), and the simulation + experiment harness that
regenerates every figure.

Quickstart
----------
>>> from repro import DHBProtocol, PoissonArrivals, SlottedSimulation, RandomStreams
>>> protocol = DHBProtocol(n_segments=99)
>>> arrivals = PoissonArrivals(rate_per_hour=100.0)
>>> d = 7200.0 / 99
>>> sim = SlottedSimulation(protocol, slot_duration=d,
...                         horizon_slots=2000, warmup_slots=200)
>>> times = arrivals.generate(2000 * d, RandomStreams(1).get("arrivals"))
>>> result = sim.run(times)
>>> 0 < result.mean_streams < 6
True
"""

from .core import (
    BandwidthLimitedDHB,
    ClientPlan,
    DHBProtocol,
    DHBVariant,
    PeriodVector,
    dhb_a,
    dhb_b,
    dhb_c,
    dhb_d,
    make_all_variants,
)
from .errors import (
    ConfigurationError,
    DeadlineMissedError,
    ReproError,
    SchedulingError,
    SimulationError,
    SmoothingError,
    VideoModelError,
    WorkloadError,
)
from .protocols import (
    BatchingProtocol,
    DynamicPagodaProtocol,
    DynamicSkyscraperProtocol,
    FastBroadcasting,
    HMSMProtocol,
    HarmonicBroadcasting,
    NewPagodaBroadcasting,
    PatchingProtocol,
    SelectiveCatchingProtocol,
    SkyscraperBroadcasting,
    StaggeredBroadcasting,
    StreamTappingProtocol,
    UniversalDistributionProtocol,
)
from .server import ChannelPool, UnicastVODServer
from .sim import (
    ContinuousSimulation,
    RandomStreams,
    SlottedResult,
    SlottedSimulation,
)
from .video import CBRVideo, VBRVideo, matrix_like_video, segment_video
from .workload import DeterministicArrivals, PoissonArrivals

__version__ = "1.0.0"

__all__ = [
    "BandwidthLimitedDHB",
    "BatchingProtocol",
    "CBRVideo",
    "ChannelPool",
    "ClientPlan",
    "ConfigurationError",
    "ContinuousSimulation",
    "DHBProtocol",
    "DHBVariant",
    "DeadlineMissedError",
    "DeterministicArrivals",
    "DynamicPagodaProtocol",
    "DynamicSkyscraperProtocol",
    "FastBroadcasting",
    "HMSMProtocol",
    "HarmonicBroadcasting",
    "NewPagodaBroadcasting",
    "PatchingProtocol",
    "PeriodVector",
    "PoissonArrivals",
    "RandomStreams",
    "ReproError",
    "SchedulingError",
    "SelectiveCatchingProtocol",
    "SimulationError",
    "SkyscraperBroadcasting",
    "SlottedResult",
    "SlottedSimulation",
    "SmoothingError",
    "StaggeredBroadcasting",
    "StreamTappingProtocol",
    "UnicastVODServer",
    "UniversalDistributionProtocol",
    "VBRVideo",
    "VideoModelError",
    "WorkloadError",
    "dhb_a",
    "dhb_b",
    "dhb_c",
    "dhb_d",
    "make_all_variants",
    "matrix_like_video",
    "segment_video",
    "__version__",
]
