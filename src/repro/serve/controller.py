"""The origin controller: route each new client to a replica daemon.

The cluster layer already models the origin → controller → replica topology
and its routing trade-offs (:mod:`repro.cluster.routing`).  This module
puts the same :class:`~repro.cluster.routing.Router` policies in front of
*live* :class:`~repro.serve.daemon.BroadcastDaemon` replicas: a client
HELLOs the controller, the router picks a replica, and the controller
answers with a REDIRECT frame carrying the replica's address.  The client
then re-HELLOs the replica directly — the controller never proxies segment
bytes, so its per-client cost is one tiny exchange and the broadcast fan-out
stays on the replicas.

The routers need nothing from a candidate beyond ``pressure(slot)`` (and
preference order), which :class:`ReplicaHandle` provides by asking its
daemon for the live session count — ``least-loaded`` therefore steers new
clients away from busy replicas exactly as it does in simulation.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cluster.routing import ROUTER_NAMES, Router, make_router
from ..errors import ServeError
from ..obs.registry import MetricsRegistry
from .config import ServeConfig
from .daemon import BroadcastDaemon
from .framing import FRAME_ERROR, FRAME_HELLO, FRAME_REDIRECT, encode_frame, read_frame

logger = logging.getLogger("repro.serve")


@dataclass
class ReplicaHandle:
    """A routable replica: its public address plus a live load signal.

    Duck-types the slice of :class:`~repro.cluster.admission.CappedServer`
    the routers actually touch.
    """

    host: str
    port: int
    daemon: Optional[BroadcastDaemon] = None

    def pressure(self, slot: int) -> float:
        """Deferral-pressure analogue: the replica's live session count."""
        return self.daemon.pressure(slot) if self.daemon is not None else 0.0


class ControllerDaemon:
    """Redirect-only front door over a set of replica daemons."""

    def __init__(
        self,
        replicas: List[ReplicaHandle],
        router: Router,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        hello_timeout: float = 5.0,
    ):
        if not replicas:
            raise ServeError("a controller needs at least one replica")
        self.replicas = list(replicas)
        self.router = router
        self.host = host
        self.port = port
        self.metrics = metrics
        self.hello_timeout = hello_timeout
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        logger.info(
            "controller: routing on %s:%d over %d replicas",
            *self.address,
            len(self.replicas),
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid once :meth:`start` returned)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("controller is not started")
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        logger.info("controller: stopped")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HELLO with a REDIRECT (or an ERROR), then hang up."""
        try:
            try:
                hello = await asyncio.wait_for(
                    read_frame(reader), timeout=self.hello_timeout
                )
            except asyncio.TimeoutError:
                return
            if hello.frame_type != FRAME_HELLO:
                writer.write(
                    encode_frame(
                        FRAME_ERROR,
                        {"error": f"expected HELLO, got {hello.name}"},
                    )
                )
                await writer.drain()
                return
            chosen = self.router.choose(title=0, slot=0, candidates=self.replicas)
            if chosen is None:
                writer.write(
                    encode_frame(FRAME_ERROR, {"error": "no replica available"})
                )
                if self.metrics is not None:
                    self.metrics.counter("serve.controller.rejected").inc()
            else:
                writer.write(
                    encode_frame(
                        FRAME_REDIRECT, {"host": chosen.host, "port": chosen.port}
                    )
                )
                if self.metrics is not None:
                    self.metrics.counter("serve.controller.redirects").inc()
            await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, ServeError):
            pass
        except Exception:
            logger.exception("controller: connection handler failed")
        finally:
            if not writer.is_closing():
                writer.close()


class ServeCluster:
    """A controller fronting N in-process replica daemons, as one unit."""

    def __init__(
        self,
        controller: ControllerDaemon,
        replicas: List[BroadcastDaemon],
    ):
        self.controller = controller
        self.replicas = replicas

    @property
    def address(self) -> Tuple[str, int]:
        """The controller's public address — the one clients dial."""
        return self.controller.address

    async def stop(self) -> None:
        """Stop the front door first, then drain every replica."""
        await self.controller.stop()
        for replica in self.replicas:
            await replica.stop()


async def serve_cluster(
    config: ServeConfig,
    n_replicas: int,
    host: str = "127.0.0.1",
    port: int = 0,
    router_name: str = "least-loaded",
    metrics: Optional[MetricsRegistry] = None,
) -> ServeCluster:
    """Start ``n_replicas`` broadcast daemons plus a controller over them.

    Replicas bind ephemeral loopback ports; the controller takes the
    requested ``(host, port)`` and is the only address clients need.
    ``router_name`` picks the routing policy (:data:`ROUTER_NAMES`).
    """
    if n_replicas < 1:
        raise ServeError(f"n_replicas must be >= 1, got {n_replicas}")
    if router_name not in ROUTER_NAMES:
        raise ServeError(
            f"unknown router {router_name!r}; choose from {list(ROUTER_NAMES)}"
        )
    replicas: List[BroadcastDaemon] = []
    for index in range(n_replicas):
        daemon = BroadcastDaemon(
            config, host=host, port=0, metrics=metrics, name=f"replica-{index}"
        )
        await daemon.start()
        replicas.append(daemon)
    handles = [
        ReplicaHandle(host=d.address[0], port=d.address[1], daemon=d)
        for d in replicas
    ]
    controller = ControllerDaemon(
        handles, make_router(router_name), host=host, port=port, metrics=metrics
    )
    await controller.start()
    return ServeCluster(controller, replicas)
