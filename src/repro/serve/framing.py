"""Wire framing for the live serving layer.

Every message on a serving connection is one length-prefixed frame::

    magic     2 bytes   b"DH"
    type      1 byte    see the FRAME_* constants
    hlen      4 bytes   big-endian header length
    header    hlen      UTF-8 JSON object (possibly ``{}``)
    blen      4 bytes   big-endian body length
    body      blen      raw bytes (segment payload; empty for control frames)

The JSON header carries the structured fields (segment number, slot index,
redirect address, ...); the body carries bulk segment bytes so payloads never
pass through the JSON encoder.  Frames are self-delimiting, so a reader can
recover message boundaries from any TCP stream position that starts on a
frame.

Size limits are enforced on both ends (:data:`MAX_HEADER_BYTES`,
:data:`MAX_BODY_BYTES`); a violation — like a bad magic or an unknown frame
type — raises :class:`~repro.errors.ServeError`, because a malformed frame
means the peer is not speaking this protocol and the connection cannot be
resynchronised.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import ServeError

#: Leading two bytes of every frame.
MAGIC = b"DH"

# Frame types.  Client -> server: HELLO (open a session), BYE (clean leave).
# Server -> client: WELCOME (session accepted + serving parameters),
# REDIRECT (controller handing the client to a replica), SEGMENT (one
# scheduled segment instance), FIN (graceful daemon shutdown), ERROR
# (protocol violation report before the server closes the connection).
FRAME_HELLO = 1
FRAME_WELCOME = 2
FRAME_REDIRECT = 3
FRAME_SEGMENT = 4
FRAME_FIN = 5
FRAME_ERROR = 6
FRAME_BYE = 7

#: Human-readable names, for error messages and traces.
FRAME_NAMES = {
    FRAME_HELLO: "HELLO",
    FRAME_WELCOME: "WELCOME",
    FRAME_REDIRECT: "REDIRECT",
    FRAME_SEGMENT: "SEGMENT",
    FRAME_FIN: "FIN",
    FRAME_ERROR: "ERROR",
    FRAME_BYE: "BYE",
}

#: Largest JSON header accepted (64 KiB is far beyond any real header).
MAX_HEADER_BYTES = 64 * 1024

#: Largest segment body accepted (16 MiB bounds a hostile length prefix).
MAX_BODY_BYTES = 16 * 1024 * 1024

_PREFIX = struct.Struct(">2sBI")  # magic, type, header length
_BLEN = struct.Struct(">I")


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    frame_type: int
    header: Dict = field(default_factory=dict)
    body: bytes = b""

    @property
    def name(self) -> str:
        """The frame type's wire name (``"SEGMENT"``, ...)."""
        return FRAME_NAMES.get(self.frame_type, f"type-{self.frame_type}")


def encode_frame(frame_type: int, header: Dict = None, body: bytes = b"") -> bytes:
    """Serialise one frame to wire bytes.

    >>> raw = encode_frame(FRAME_HELLO, {"want": "first"})
    >>> decode_frame(raw).header["want"]
    'first'
    """
    if frame_type not in FRAME_NAMES:
        raise ServeError(f"unknown frame type {frame_type}")
    header_bytes = json.dumps(
        header or {}, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ServeError(
            f"{FRAME_NAMES[frame_type]} header is {len(header_bytes)} bytes; "
            f"the wire limit is {MAX_HEADER_BYTES}"
        )
    if len(body) > MAX_BODY_BYTES:
        raise ServeError(
            f"{FRAME_NAMES[frame_type]} body is {len(body)} bytes; "
            f"the wire limit is {MAX_BODY_BYTES}"
        )
    return b"".join(
        (
            _PREFIX.pack(MAGIC, frame_type, len(header_bytes)),
            header_bytes,
            _BLEN.pack(len(body)),
            body,
        )
    )


def decode_frame(data: bytes) -> Frame:
    """Decode exactly one frame from ``data`` (must contain the whole frame)."""
    frame, consumed = _decode_prefix(data)
    if consumed != len(data):
        raise ServeError(
            f"frame decode left {len(data) - consumed} trailing bytes"
        )
    return frame


def _decode_prefix(data: bytes) -> Tuple[Frame, int]:
    """Decode the frame starting at ``data[0]``; return it and its length."""
    if len(data) < _PREFIX.size:
        raise ServeError(f"truncated frame: {len(data)} bytes")
    magic, frame_type, hlen = _PREFIX.unpack_from(data)
    _check_prefix(magic, frame_type, hlen)
    offset = _PREFIX.size
    if len(data) < offset + hlen + _BLEN.size:
        raise ServeError("truncated frame: header cut short")
    header = _parse_header(data[offset : offset + hlen], frame_type)
    offset += hlen
    (blen,) = _BLEN.unpack_from(data, offset)
    offset += _BLEN.size
    if blen > MAX_BODY_BYTES:
        raise ServeError(f"frame body length {blen} exceeds {MAX_BODY_BYTES}")
    if len(data) < offset + blen:
        raise ServeError("truncated frame: body cut short")
    return Frame(frame_type, header, bytes(data[offset : offset + blen])), offset + blen


def _check_prefix(magic: bytes, frame_type: int, hlen: int) -> None:
    if magic != MAGIC:
        raise ServeError(f"bad frame magic {magic!r}; peer is not speaking DH")
    if frame_type not in FRAME_NAMES:
        raise ServeError(f"unknown frame type {frame_type}")
    if hlen > MAX_HEADER_BYTES:
        raise ServeError(f"frame header length {hlen} exceeds {MAX_HEADER_BYTES}")


def _parse_header(raw: bytes, frame_type: int) -> Dict:
    try:
        header = json.loads(raw.decode("utf-8")) if raw else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(
            f"{FRAME_NAMES[frame_type]} header is not valid JSON: {exc}"
        ) from None
    if not isinstance(header, dict):
        raise ServeError(
            f"{FRAME_NAMES[frame_type]} header must be a JSON object, "
            f"got {type(header).__name__}"
        )
    return header


async def read_frame(reader: asyncio.StreamReader) -> Frame:
    """Read exactly one frame from an asyncio stream.

    Raises :class:`~repro.errors.ServeError` on malformed input and
    :class:`asyncio.IncompleteReadError` when the peer closes mid-frame
    (a clean EOF *before* any byte of a frame surfaces the same way, with
    ``partial == b""``; callers treat that as end-of-stream).
    """
    prefix = await reader.readexactly(_PREFIX.size)
    magic, frame_type, hlen = _PREFIX.unpack(prefix)
    _check_prefix(magic, frame_type, hlen)
    header = _parse_header(await reader.readexactly(hlen), frame_type)
    (blen,) = _BLEN.unpack(await reader.readexactly(_BLEN.size))
    if blen > MAX_BODY_BYTES:
        raise ServeError(f"frame body length {blen} exceeds {MAX_BODY_BYTES}")
    body = await reader.readexactly(blen) if blen else b""
    return Frame(frame_type, header, body)
