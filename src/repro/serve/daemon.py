"""The asyncio broadcast daemon: DHB admission against wall-clock slots.

:class:`BroadcastDaemon` is the slotted simulator made live.  It accepts TCP
client sessions, buffers each HELLO into the wall-clock slot it arrived in,
and runs one tick per slot boundary that replays the simulator's contract
exactly (see :mod:`repro.sim.slotted`):

1. admit every request buffered during earlier slots —
   ``protocol.handle_batch(arrival_slot, count)``, which schedules segment
   instances into slots ``>= arrival_slot + 1`` only;
2. broadcast the instances the schedule placed in the slot that just began
   (``protocol.slot_instances(slot)``) — one SEGMENT frame per instance,
   fanned out to every connected session, since a broadcast channel reaches
   all tuned-in clients at once;
3. release protocol bookkeeping for past slots.

Because DHB always schedules ``S_1`` in the slot right after the arrival
slot, a client's wait until its first segment is bounded by one slot
duration ``d`` plus scheduling overhead — the same bound the paper proves
for the simulator, and the property the end-to-end CI gate asserts.

Backpressure: each session owns a bounded send queue drained by a writer
task that awaits the transport's own flow control (``drain()``).  A client
that stops reading fills its queue; the next frame for it then *evicts* the
session instead of blocking the broadcast tick — one slow client must never
stall the slot cadence for everyone else.  Evictions are counted in the
``serve.sessions.evicted`` metric.

The daemon is pure asyncio (no raw sockets): start/stop it from any event
loop, or use :func:`BroadcastDaemon.run_for` for a bounded lifetime.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
from typing import Dict, Optional, Tuple

from ..core.dhb import DHBProtocol
from ..obs.registry import MetricsRegistry
from ..sim.slotted import SlottedModel
from .config import ServeConfig
from .framing import (
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_FIN,
    FRAME_HELLO,
    FRAME_SEGMENT,
    FRAME_WELCOME,
    Frame,
    encode_frame,
    read_frame,
)

logger = logging.getLogger("repro.serve")


class _Session:
    """One connected client: its stream, send queue, and writer task."""

    __slots__ = ("session_id", "writer", "queue", "task", "segments_sent")

    def __init__(self, session_id: int, writer: asyncio.StreamWriter, bound: int):
        self.session_id = session_id
        self.writer = writer
        self.queue: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue(maxsize=bound)
        self.task: Optional[asyncio.Task] = None
        self.segments_sent = 0


class BroadcastDaemon:
    """A live DHB broadcast server on one listening address.

    Parameters
    ----------
    config:
        The broadcast scenario (segments, slot duration, payload size) and
        transport policy (queue bound, handshake timeout).
    host, port:
        Listening address; port 0 binds an ephemeral port — read the
        actual one from :attr:`address` after :meth:`start`.
    protocol:
        The slotted admission model; defaults to a fresh
        :class:`~repro.core.dhb.DHBProtocol` over ``config.n_segments``.
    metrics:
        Optional registry; the daemon counts sessions, frames, evictions
        and observes per-tick lag and instance counts.
    name:
        Label used in log lines (replicas get ``replica-0``, ...).
    """

    def __init__(
        self,
        config: ServeConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        protocol: Optional[SlottedModel] = None,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "daemon",
    ):
        self.config = config
        self.host = host
        self.port = port
        self.protocol = (
            protocol
            if protocol is not None
            else DHBProtocol(n_segments=config.n_segments)
        )
        self.metrics = metrics
        self.name = name
        self._queue_bound = config.resolve_queue_frames()
        self._payload = bytes(config.segment_bytes)
        self._server: Optional[asyncio.AbstractServer] = None
        self._ticker: Optional[asyncio.Task] = None
        self._sessions: Dict[int, _Session] = {}
        self._session_ids = itertools.count(1)
        self._pending: Dict[int, int] = {}  # arrival slot -> buffered HELLOs
        self._epoch = 0.0  # loop.time() at which slot 0 began
        self._next_slot = 1  # first boundary the ticker has not yet run
        self._stopping = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket, start the slot ticker."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self._epoch = asyncio.get_running_loop().time()
        self._next_slot = 1
        self._ticker = asyncio.create_task(
            self._slot_loop(), name=f"{self.name}-ticker"
        )
        logger.info(
            "%s: serving on %s:%d (n=%d, d=%.3fs, queue=%d frames)",
            self.name,
            *self.address,
            self.config.n_segments,
            self.config.slot_duration,
            self._queue_bound,
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid once :meth:`start` returned)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("daemon is not started")
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    @property
    def active_sessions(self) -> int:
        """Currently connected client sessions."""
        return len(self._sessions)

    def pressure(self, slot: int) -> float:
        """Load signal for routers: the live session count.

        Duck-types :meth:`repro.cluster.admission.CappedServer.pressure`,
        so every :class:`~repro.cluster.routing.Router` policy works over
        live replicas unchanged.
        """
        return float(len(self._sessions))

    async def stop(self) -> None:
        """Graceful shutdown: FIN every client, stop ticking, close up."""
        if self._stopping:
            return
        self._stopping = True
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
        fin = encode_frame(FRAME_FIN, {"reason": "shutdown"})
        for session in list(self._sessions.values()):
            self._offer(session, fin)
        # Give writers one scheduling round to flush the FIN, then close.
        await asyncio.sleep(0)
        for session in list(self._sessions.values()):
            await self._close_session(session, reason="shutdown")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        logger.info("%s: stopped", self.name)

    async def run_for(self, seconds: float) -> None:
        """Start, serve for ``seconds`` of wall time, then stop."""
        await self.start()
        try:
            await asyncio.sleep(seconds)
        finally:
            await self.stop()

    # -- the slot ticker ------------------------------------------------------

    async def _slot_loop(self) -> None:
        """One tick per slot boundary: admit, broadcast, release."""
        d = self.config.slot_duration
        loop = asyncio.get_running_loop()
        while True:
            target = self._epoch + self._next_slot * d
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            # The loop may have been descheduled past one or more
            # boundaries; catch up without skipping any slot's broadcast.
            now = loop.time()
            lag = now - target
            if self.metrics is not None:
                self.metrics.histogram("serve.tick.lag_seconds").observe(max(lag, 0.0))
            behind = max(int((now - self._epoch) / d) - self._next_slot, 0)
            for _ in range(behind + 1):
                self._tick(self._next_slot)
                self._next_slot += 1

    def _tick(self, slot: int) -> None:
        """Run the boundary starting ``slot``: admit < slot, broadcast slot."""
        protocol = self.protocol
        for arrival_slot in sorted(s for s in self._pending if s < slot):
            count = self._pending.pop(arrival_slot)
            protocol.handle_batch(arrival_slot, count)
            if self.metrics is not None:
                self.metrics.counter("serve.requests.admitted").inc(count)
        instances = protocol.slot_instances(slot)
        if instances and self._sessions:
            for segment in instances:
                frame = encode_frame(
                    FRAME_SEGMENT,
                    {"segment": segment, "slot": slot},
                    self._payload,
                )
                for session in list(self._sessions.values()):
                    self._offer(session, frame)
        if self.metrics is not None:
            self.metrics.histogram("serve.slot.instances").observe(len(instances))
            self.metrics.counter("serve.slots").inc()
            self.metrics.gauge("serve.sessions.active").set(len(self._sessions))
        protocol.release_before(slot)

    # -- per-connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Handshake one client, register its session, then read until BYE."""
        session: Optional[_Session] = None
        try:
            try:
                hello = await asyncio.wait_for(
                    read_frame(reader), timeout=self.config.hello_timeout
                )
            except asyncio.TimeoutError:
                writer.close()
                return
            if hello.frame_type != FRAME_HELLO:
                writer.write(
                    encode_frame(
                        FRAME_ERROR,
                        {"error": f"expected HELLO, got {hello.name}"},
                    )
                )
                await writer.drain()
                writer.close()
                return
            session = self._admit(writer)
            await self._read_until_closed(reader, session)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client vanished mid-frame; the session cleanup below copes
        except Exception:
            logger.exception("%s: connection handler failed", self.name)
        finally:
            if session is not None:
                await self._close_session(session, reason="disconnect")
            elif not writer.is_closing():
                writer.close()

    def _admit(self, writer: asyncio.StreamWriter) -> _Session:
        """Register the session and buffer its request into the live slot."""
        loop = asyncio.get_running_loop()
        arrival_slot = int((loop.time() - self._epoch) / self.config.slot_duration)
        # A HELLO racing a boundary the ticker already ran would be admitted
        # into a slot whose broadcasts are over; pin it to the live slot so
        # its schedule is still ahead of it.
        arrival_slot = max(arrival_slot, self._next_slot - 1)
        self._pending[arrival_slot] = self._pending.get(arrival_slot, 0) + 1

        session = _Session(next(self._session_ids), writer, self._queue_bound)
        self._sessions[session.session_id] = session
        welcome = dict(self.config.welcome_header())
        welcome.update(session=session.session_id, slot=arrival_slot)
        session.queue.put_nowait(encode_frame(FRAME_WELCOME, welcome))
        session.task = asyncio.create_task(
            self._write_loop(session), name=f"{self.name}-w{session.session_id}"
        )
        if self.metrics is not None:
            self.metrics.counter("serve.sessions.accepted").inc()
        return session

    async def _read_until_closed(
        self, reader: asyncio.StreamReader, session: _Session
    ) -> None:
        """Consume client frames until BYE or EOF (anything else is an error)."""
        while True:
            try:
                frame: Frame = await read_frame(reader)
            except asyncio.IncompleteReadError as exc:
                if exc.partial:
                    raise  # torn frame, not a clean close
                return
            if frame.frame_type == FRAME_BYE:
                return
            if frame.frame_type != FRAME_HELLO:
                # Clients only ever send HELLO/BYE; tolerate a duplicate
                # HELLO (idempotent re-tune) but nothing else.
                logger.warning(
                    "%s: session %d sent unexpected %s",
                    self.name,
                    session.session_id,
                    frame.name,
                )
                return

    # -- the send side --------------------------------------------------------

    def _offer(self, session: _Session, frame: bytes) -> None:
        """Enqueue ``frame`` for one session, evicting it when full."""
        try:
            session.queue.put_nowait(frame)
        except asyncio.QueueFull:
            logger.warning(
                "%s: evicting slow session %d (queue of %d frames full)",
                self.name,
                session.session_id,
                self._queue_bound,
            )
            if self.metrics is not None:
                self.metrics.counter("serve.sessions.evicted").inc()
            self._sessions.pop(session.session_id, None)
            if session.task is not None:
                session.task.cancel()
            if not session.writer.is_closing():
                session.writer.close()

    async def _write_loop(self, session: _Session) -> None:
        """Drain the session's queue onto its transport, respecting drain()."""
        writer = session.writer
        try:
            while True:
                frame = await session.queue.get()
                if frame is None:
                    return
                writer.write(frame)
                await writer.drain()
                if self.metrics is not None:
                    self.metrics.counter("serve.frames.sent").inc()
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def _close_session(self, session: _Session, reason: str) -> None:
        """Drop one session: cancel its writer, close its transport."""
        self._sessions.pop(session.session_id, None)
        if session.task is not None and not session.task.done():
            session.task.cancel()
            try:
                await session.task
            except asyncio.CancelledError:
                pass
        if not session.writer.is_closing():
            session.writer.close()
        if self.metrics is not None:
            self.metrics.counter(f"serve.sessions.closed.{reason}").inc()


def predicted_wait_bound(config: ServeConfig) -> float:
    """DHB's hard waiting bound for this scenario: one slot duration.

    ``S_1`` is always scheduled in the slot right after the arrival slot,
    so no client waits longer than ``d`` for its first segment (plus
    transport overhead, which the CI gate covers with explicit slack).
    """
    return config.slot_duration
