"""Socket-level load generation against a live broadcast daemon.

:func:`run_loadgen` sustains many concurrent client sessions over asyncio
streams: it draws an arrival schedule from :mod:`repro.workload` (Poisson,
the paper's model, or deterministic spacing), opens one connection per
arrival at its scheduled offset, performs the HELLO handshake (following a
controller REDIRECT when one is in front), and measures each client's
**wait until first segment** — the exact quantity the slotted simulator
reports, which is what makes served and simulated distributions directly
comparable.

:func:`compare_with_simulation` closes that loop: it replays the *same*
arrival offsets through :class:`~repro.sim.slotted.SlottedSimulation` with a
fresh DHB instance and reports measured-vs-predicted mean/p99 gaps.  The
daemon's slot grid is phase-shifted from the load generator's clock and
every served wait carries scheduling/transport overhead, so agreement is
statistical, not bit-exact; with Poisson arrivals both distributions are
uniform on ``(0, d]`` and the documented tolerances
(:data:`MEAN_TOLERANCE_FRACTION`, :data:`P99_SLACK_FRACTION`) hold with
wide margin on a loopback run.

:func:`assert_gates` turns a result into a pass/fail verdict (dropped
sessions, p99 bound) for the CI end-to-end job and the bench gate.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dhb import DHBProtocol
from ..errors import ServeError, WorkloadError
from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceSink
from ..sim.slotted import SlottedResult, SlottedSimulation
from ..workload.arrivals import DeterministicArrivals, PoissonArrivals
from ..workload.spec import parse_workload
from .framing import (
    FRAME_ERROR,
    FRAME_FIN,
    FRAME_HELLO,
    FRAME_REDIRECT,
    FRAME_SEGMENT,
    FRAME_WELCOME,
    encode_frame,
    read_frame,
)

#: Arrival schedule shapes the generator knows how to draw.
ARRIVAL_KINDS = ("poisson", "uniform")

#: How far a served mean wait may sit from the simulated prediction, as a
#: fraction of the slot duration.  Two independent uniform-(0, d] samples
#: of a few hundred clients differ by well under 0.35 d; transport overhead
#: only adds microseconds on loopback.
MEAN_TOLERANCE_FRACTION = 0.35

#: Extra headroom allowed on the served p99 over the simulated p99, as a
#: fraction of the slot duration (the p99 of a small sample is noisy and
#: always below the hard bound of one slot).
P99_SLACK_FRACTION = 0.5


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run (validated at construction)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Target number of client sessions (Poisson draws vary around it).
    clients: int = 100
    #: Seconds over which arrivals are spread.
    duration_seconds: float = 5.0
    #: Arrival schedule shape (see :data:`ARRIVAL_KINDS`).
    arrivals: str = "poisson"
    #: Workload seed (same seed, same offsets — and the same offsets feed
    #: :func:`compare_with_simulation`).
    seed: int = 2001
    #: ``"first"`` measures wait-until-first-segment then leaves;
    #: ``"all"`` stays tuned until every segment has been received.
    want: str = "first"
    #: Seconds to keep retrying the first connection while the daemon boots.
    connect_timeout: float = 10.0
    #: Seconds a session may go without a frame before counting as dropped.
    session_timeout: float = 30.0
    #: Optional workload spec string (see
    #: :data:`repro.workload.spec.WORKLOAD_GRAMMAR`).  When set it drives
    #: the live daemon from that schedule — NHPP flash crowds, diurnal
    #: profiles, MMPP bursts, recorded traces — over ``duration_seconds``,
    #: overriding ``clients``/``arrivals`` (rates in the spec are per
    #: hour, so 500 clients in 10 s is ``flash`` with peak around 180000).
    workload: Optional[str] = None

    def __post_init__(self):
        if self.clients < 1:
            raise ServeError(f"clients must be >= 1, got {self.clients}")
        if self.duration_seconds <= 0:
            raise ServeError(
                f"duration_seconds must be > 0, got {self.duration_seconds}"
            )
        if self.arrivals not in ARRIVAL_KINDS:
            raise ServeError(
                f"unknown arrival kind {self.arrivals!r}; "
                f"choose from {list(ARRIVAL_KINDS)}"
            )
        if self.want not in ("first", "all"):
            raise ServeError(f"want must be 'first' or 'all', got {self.want!r}")
        if self.workload is not None:
            parse_workload(self.workload)  # ConfigurationError on bad grammar


@dataclass
class LoadgenResult:
    """What a load-generation run measured."""

    #: Sessions that finished their goal (first segment, or all segments).
    completed: int
    #: Sessions that failed: refused, reset, evicted, or timed out.
    dropped: int
    #: Per-completed-client wait until first segment, seconds (sorted).
    waits: List[float]
    #: Wall-clock seconds from first arrival to last session settled.
    elapsed_seconds: float
    #: Serving parameters learned from the daemon's WELCOME frame.
    n_segments: int = 0
    slot_duration: float = 0.0
    #: The arrival offsets actually used (seconds from the run start).
    offsets: List[float] = field(default_factory=list)

    @property
    def sessions(self) -> int:
        """All sessions attempted."""
        return self.completed + self.dropped

    @property
    def clients_per_second(self) -> float:
        """Completed-session throughput over the run."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    @property
    def mean_wait(self) -> float:
        return sum(self.waits) / len(self.waits) if self.waits else 0.0

    @property
    def max_wait(self) -> float:
        return max(self.waits) if self.waits else 0.0

    @property
    def wait_p50(self) -> float:
        return empirical_quantile(self.waits, 0.5)

    @property
    def wait_p99(self) -> float:
        return empirical_quantile(self.waits, 0.99)

    def to_dict(self) -> Dict:
        """JSON-safe summary (the CLI prints this)."""
        return {
            "sessions": self.sessions,
            "completed": self.completed,
            "dropped": self.dropped,
            "elapsed_seconds": self.elapsed_seconds,
            "clients_per_second": self.clients_per_second,
            "mean_wait": self.mean_wait,
            "max_wait": self.max_wait,
            "wait_p50": self.wait_p50,
            "wait_p99": self.wait_p99,
            "n_segments": self.n_segments,
            "slot_duration": self.slot_duration,
        }


def empirical_quantile(values: Sequence[float], q: float) -> float:
    """The q-quantile of a sample (inverse empirical CDF; 0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def generate_offsets(config: LoadgenConfig) -> np.ndarray:
    """Draw the run's arrival offsets (sorted seconds from the run start).

    A ``workload`` spec string takes precedence: its process is generated
    over ``duration_seconds`` from the seeded generator, so the same spec
    and seed drive the daemon with the same schedule every run (and feed
    :func:`compare_with_simulation` the same offsets).
    """
    rng = np.random.default_rng(config.seed)
    if config.workload is not None:
        process = parse_workload(config.workload).process()
    elif config.arrivals == "poisson":
        rate_per_hour = config.clients / config.duration_seconds * 3600.0
        process = PoissonArrivals(rate_per_hour=rate_per_hour)
    else:
        process = DeterministicArrivals(
            interval=config.duration_seconds / config.clients
        )
    offsets = process.generate(config.duration_seconds, rng)
    if len(offsets) == 0:
        raise WorkloadError("the arrival schedule produced no clients")
    return offsets


async def wait_for_server(host: str, port: int, timeout: float) -> None:
    """Retry connecting until the daemon answers or ``timeout`` elapses."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        try:
            _, writer = await asyncio.open_connection(host, port)
            writer.close()
            return
        except OSError:
            if loop.time() >= deadline:
                raise ServeError(
                    f"no daemon answered on {host}:{port} within {timeout:.1f}s"
                ) from None
            await asyncio.sleep(0.05)


class _ClientOutcome:
    """Mutable per-client record filled in by :func:`_run_client`."""

    __slots__ = ("wait", "segments", "error", "welcome")

    def __init__(self):
        self.wait: Optional[float] = None
        self.segments = 0
        self.error: Optional[str] = None
        self.welcome: Dict = {}


async def _run_client(
    config: LoadgenConfig, offset: float, start: float, outcome: _ClientOutcome
) -> None:
    """One client session: connect at its offset, follow redirects, measure."""
    loop = asyncio.get_running_loop()
    delay = start + offset - loop.time()
    if delay > 0:
        await asyncio.sleep(delay)
    arrival = loop.time()
    host, port = config.host, config.port
    hello = encode_frame(FRAME_HELLO, {"want": config.want})
    writer: Optional[asyncio.StreamWriter] = None
    try:
        for _hop in range(2):  # direct, or controller + one redirect
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(hello)
            await writer.drain()
            redirect = await _consume(config, reader, arrival, outcome)
            if redirect is None:
                return
            host, port = redirect
            writer.close()
            writer = None
        outcome.error = "redirect loop"
    except (OSError, asyncio.IncompleteReadError, ServeError) as exc:
        outcome.error = type(exc).__name__
    except asyncio.TimeoutError:
        outcome.error = "session timeout"
    finally:
        if writer is not None and not writer.is_closing():
            writer.close()


async def _consume(
    config: LoadgenConfig,
    reader: asyncio.StreamReader,
    arrival: float,
    outcome: _ClientOutcome,
) -> Optional[Tuple[str, int]]:
    """Read frames until the session settles; return a redirect target if any."""
    loop = asyncio.get_running_loop()
    seen = set()
    while True:
        frame = await asyncio.wait_for(
            read_frame(reader), timeout=config.session_timeout
        )
        if frame.frame_type == FRAME_REDIRECT:
            return frame.header["host"], int(frame.header["port"])
        if frame.frame_type == FRAME_WELCOME:
            outcome.welcome = frame.header
            continue
        if frame.frame_type == FRAME_SEGMENT:
            if outcome.wait is None:
                outcome.wait = loop.time() - arrival
            segment = frame.header.get("segment")
            if segment not in seen:
                seen.add(segment)
                outcome.segments += 1
            n_segments = int(outcome.welcome.get("n_segments", 0))
            done = config.want == "first" or (
                n_segments and outcome.segments >= n_segments
            )
            if done:
                return None
            continue
        if frame.frame_type in (FRAME_FIN, FRAME_ERROR):
            if outcome.wait is None or config.want == "all":
                outcome.error = (
                    frame.header.get("error")
                    or frame.header.get("reason")
                    or frame.name
                )
            return None


async def run_loadgen_async(
    config: LoadgenConfig,
    offsets: Optional[np.ndarray] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[TraceSink] = None,
) -> LoadgenResult:
    """Run the load schedule against a live daemon; gather every session.

    ``offsets`` overrides the drawn schedule (tests inject exact arrival
    times); otherwise :func:`generate_offsets` draws it from the config.
    """
    if offsets is None:
        offsets = generate_offsets(config)
    await wait_for_server(config.host, config.port, config.connect_timeout)

    loop = asyncio.get_running_loop()
    start = loop.time()
    outcomes = [_ClientOutcome() for _ in offsets]
    tasks = [
        asyncio.create_task(_run_client(config, float(offset), start, outcome))
        for offset, outcome in zip(offsets, outcomes)
    ]
    await asyncio.gather(*tasks)
    elapsed = loop.time() - start

    waits: List[float] = []
    dropped = 0
    welcome: Dict = {}
    for index, outcome in enumerate(outcomes):
        if outcome.welcome:
            welcome = outcome.welcome
        succeeded = outcome.error is None and outcome.wait is not None
        if succeeded:
            waits.append(outcome.wait)
        else:
            dropped += 1
        if trace is not None:
            trace.emit(
                {
                    "kind": "client",
                    "client": index,
                    "offset": float(offsets[index]),
                    "wait": outcome.wait,
                    "segments": outcome.segments,
                    "error": outcome.error,
                }
            )
    waits.sort()
    if metrics is not None:
        metrics.counter("loadgen.sessions.completed").inc(len(waits))
        metrics.counter("loadgen.sessions.dropped").inc(dropped)
        histogram = metrics.histogram("loadgen.wait_seconds")
        for wait in waits:
            histogram.observe(wait)
        metrics.gauge("loadgen.clients_per_second").set(
            len(waits) / elapsed if elapsed > 0 else 0.0
        )
    return LoadgenResult(
        completed=len(waits),
        dropped=dropped,
        waits=waits,
        elapsed_seconds=elapsed,
        n_segments=int(welcome.get("n_segments", 0)),
        slot_duration=float(welcome.get("slot_duration", 0.0)),
        offsets=[float(t) for t in offsets],
    )


def run_loadgen(
    config: LoadgenConfig,
    offsets: Optional[np.ndarray] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[TraceSink] = None,
) -> LoadgenResult:
    """Synchronous wrapper around :func:`run_loadgen_async` (CLI entry)."""
    return asyncio.run(run_loadgen_async(config, offsets, metrics, trace))


@dataclass(frozen=True)
class SimComparison:
    """Served-vs-simulated waiting-time agreement for one scenario."""

    measured_mean: float
    predicted_mean: float
    measured_p99: float
    predicted_p99: float
    slot_duration: float

    @property
    def mean_gap(self) -> float:
        """Absolute served-minus-predicted mean wait, seconds."""
        return abs(self.measured_mean - self.predicted_mean)

    def within_tolerance(
        self,
        mean_fraction: float = MEAN_TOLERANCE_FRACTION,
        p99_fraction: float = P99_SLACK_FRACTION,
    ) -> bool:
        """Whether the served numbers agree with the documented tolerances."""
        d = self.slot_duration
        return (
            self.mean_gap <= mean_fraction * d
            and self.measured_p99 <= self.predicted_p99 + p99_fraction * d
        )

    def to_dict(self) -> Dict:
        return {
            "measured_mean": self.measured_mean,
            "predicted_mean": self.predicted_mean,
            "measured_p99": self.measured_p99,
            "predicted_p99": self.predicted_p99,
            "slot_duration": self.slot_duration,
            "mean_gap": self.mean_gap,
            "within_tolerance": self.within_tolerance(),
        }


def predict_with_simulation(
    offsets: Sequence[float], n_segments: int, slot_duration: float
) -> SlottedResult:
    """Slotted-simulator prediction for the exact arrival offsets served."""
    arrivals = np.asarray(offsets, dtype=float)
    horizon_slots = int(float(arrivals.max()) / slot_duration) + 2 if len(arrivals) else 2
    simulation = SlottedSimulation(
        DHBProtocol(n_segments=n_segments),
        slot_duration=slot_duration,
        horizon_slots=horizon_slots,
    )
    return simulation.run(arrivals)


def compare_with_simulation(result: LoadgenResult) -> SimComparison:
    """Replay the run's offsets through the simulator and compare waits."""
    if not result.waits:
        raise ServeError("cannot compare: the load run completed no sessions")
    if result.n_segments < 1 or result.slot_duration <= 0:
        raise ServeError(
            "cannot compare: the run never learned the serving parameters "
            "(no WELCOME frame seen)"
        )
    predicted = predict_with_simulation(
        result.offsets, result.n_segments, result.slot_duration
    )
    return SimComparison(
        measured_mean=result.mean_wait,
        predicted_mean=predicted.mean_wait,
        measured_p99=result.wait_p99,
        predicted_p99=predicted.wait_p99,
        slot_duration=result.slot_duration,
    )


def assert_gates(
    result: LoadgenResult,
    max_dropped: Optional[int] = None,
    p99_bound: Optional[float] = None,
) -> None:
    """Raise :class:`~repro.errors.ServeError` when a serving gate fails."""
    if max_dropped is not None and result.dropped > max_dropped:
        raise ServeError(
            f"loadgen gate failed: {result.dropped} dropped sessions "
            f"(allowed {max_dropped}) out of {result.sessions}"
        )
    if p99_bound is not None and result.wait_p99 > p99_bound:
        raise ServeError(
            f"loadgen gate failed: p99 wait {result.wait_p99:.4f}s exceeds "
            f"the bound {p99_bound:.4f}s"
        )
