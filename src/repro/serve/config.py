"""Serving parameters: one validated dataclass shared by daemon and CLI.

:class:`ServeConfig` pins down the broadcast scenario a daemon runs — the
DHB segment count, the wall-clock slot duration, the synthetic segment
payload size — plus the transport policy knobs (send-queue bound, handshake
timeout).  The client side never duplicates these numbers: the daemon
advertises them in its WELCOME frame and the load generator reads them from
there.

The send-queue bound follows the runtime layer's advisory-environment
discipline (see :mod:`repro.runtime.config`): an explicit value is code and
is validated eagerly; ``REPRO_SERVE_QUEUE_FRAMES`` is advisory, so a
malformed export warns and falls back to the default.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..runtime.config import DEFAULT_SERVE_QUEUE_FRAMES, SERVE_QUEUE_ENV, _env_int

#: Serving defaults: a short video (12 segments) in quarter-second slots
#: keeps loopback end-to-end runs fast while exercising real DHB windows.
DEFAULT_N_SEGMENTS = 12
DEFAULT_SLOT_DURATION = 0.25
DEFAULT_SEGMENT_BYTES = 1024

#: Seconds a fresh connection may sit silent before its HELLO is due.
DEFAULT_HELLO_TIMEOUT = 5.0


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of one broadcast daemon (validated at construction).

    >>> ServeConfig().n_segments
    12
    >>> ServeConfig(slot_duration=0.05).resolve_queue_frames() >= 1
    True
    """

    #: Segments per video (DHB's ``n``); every client needs all of them.
    n_segments: int = DEFAULT_N_SEGMENTS
    #: Wall-clock slot length ``d`` in seconds — also the DHB wait bound.
    slot_duration: float = DEFAULT_SLOT_DURATION
    #: Synthetic payload bytes per segment frame.
    segment_bytes: int = DEFAULT_SEGMENT_BYTES
    #: Send-queue bound in frames; ``None`` defers to the environment
    #: (``REPRO_SERVE_QUEUE_FRAMES``), then :data:`DEFAULT_SERVE_QUEUE_FRAMES`.
    queue_frames: Optional[int] = None
    #: Seconds a connection may wait before sending HELLO.
    hello_timeout: float = DEFAULT_HELLO_TIMEOUT

    def __post_init__(self):
        if self.n_segments < 1:
            raise ConfigurationError(
                f"n_segments must be >= 1, got {self.n_segments}"
            )
        if self.slot_duration <= 0:
            raise ConfigurationError(
                f"slot_duration must be > 0, got {self.slot_duration}"
            )
        if self.segment_bytes < 1:
            raise ConfigurationError(
                f"segment_bytes must be >= 1, got {self.segment_bytes}"
            )
        if self.queue_frames is not None and self.queue_frames < 1:
            raise ConfigurationError(
                f"queue_frames must be >= 1, got {self.queue_frames}"
            )
        if self.hello_timeout <= 0:
            raise ConfigurationError(
                f"hello_timeout must be > 0, got {self.hello_timeout}"
            )

    def resolve_queue_frames(self) -> int:
        """The effective send-queue bound (explicit > env > default).

        The environment is advisory: a malformed or non-positive
        ``REPRO_SERVE_QUEUE_FRAMES`` warns (via the shared runtime helper)
        or is ignored, and the baked-in default applies.
        """
        if self.queue_frames is not None:
            return int(self.queue_frames)
        from_env = _env_int(SERVE_QUEUE_ENV)
        if from_env is not None:
            if from_env >= 1:
                return from_env
            warnings.warn(
                f"ignoring {SERVE_QUEUE_ENV}={from_env}: queue bound must "
                "be >= 1; using the default",
                RuntimeWarning,
                stacklevel=2,
            )
        return DEFAULT_SERVE_QUEUE_FRAMES

    def welcome_header(self) -> dict:
        """The serving parameters a WELCOME frame advertises to clients."""
        return {
            "n_segments": self.n_segments,
            "slot_duration": self.slot_duration,
            "segment_bytes": self.segment_bytes,
        }
