"""Live serving layer: the slotted protocols as a running VOD daemon.

Everything below :mod:`repro.sim` treats time as slot indices; this package
runs the same admission logic against *wall-clock* slots and real TCP
connections:

* :mod:`repro.serve.framing` — the length-prefixed wire format;
* :mod:`repro.serve.config` — the serving parameters (:class:`ServeConfig`);
* :mod:`repro.serve.daemon` — :class:`BroadcastDaemon`, the asyncio slot
  ticker + segment fan-out with bounded send queues and slow-client
  eviction;
* :mod:`repro.serve.controller` — the origin controller redirecting clients
  across replicas with the :mod:`repro.cluster.routing` policies;
* :mod:`repro.serve.loadgen` — the asyncio load-generator harness and the
  served-vs-simulated comparison.

See ``docs/SERVING.md`` for the architecture and the CI end-to-end gate.
"""

from .config import ServeConfig
from .controller import ControllerDaemon, ReplicaHandle, ServeCluster, serve_cluster
from .daemon import BroadcastDaemon, predicted_wait_bound
from .framing import (
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_FIN,
    FRAME_HELLO,
    FRAME_REDIRECT,
    FRAME_SEGMENT,
    FRAME_WELCOME,
    Frame,
    decode_frame,
    encode_frame,
    read_frame,
)
from .loadgen import (
    LoadgenConfig,
    LoadgenResult,
    SimComparison,
    assert_gates,
    compare_with_simulation,
    empirical_quantile,
    generate_offsets,
    run_loadgen,
    run_loadgen_async,
    wait_for_server,
)

__all__ = [
    "BroadcastDaemon",
    "ControllerDaemon",
    "FRAME_BYE",
    "FRAME_ERROR",
    "FRAME_FIN",
    "FRAME_HELLO",
    "FRAME_REDIRECT",
    "FRAME_SEGMENT",
    "FRAME_WELCOME",
    "Frame",
    "LoadgenConfig",
    "LoadgenResult",
    "ReplicaHandle",
    "ServeCluster",
    "ServeConfig",
    "SimComparison",
    "assert_gates",
    "compare_with_simulation",
    "decode_frame",
    "empirical_quantile",
    "encode_frame",
    "generate_offsets",
    "predicted_wait_bound",
    "read_frame",
    "run_loadgen",
    "run_loadgen_async",
    "serve_cluster",
    "wait_for_server",
]
