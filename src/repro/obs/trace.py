"""Trace sinks: streams of per-slot records.

A *trace record* is a flat JSON-safe dict.  The slotted driver emits one
per simulated slot::

    {"kind": "slot", "slot": 42, "streams": 5, "weight": 5.0,
     "instances": [1, 3, 9], "arrivals": 2, "measured": true,
     "protocol": "DHB Protocol", "rate_per_hour": 50.0}

``streams`` is the slot's load — the number of concurrently active data
streams (each carrying one segment instance at the video consumption
rate); ``instances`` lists the scheduled segment numbers; ``arrivals``
counts the requests admitted during the slot; ``measured`` is false
inside the warmup window.  Context fields (protocol label, rate) are
attached by the experiment layer via ``trace_context``.

Two sinks cover the use cases: :class:`JsonlTraceSink` streams records to
a JSON-lines file (the CLI's ``--trace-out``); :class:`MemoryTraceSink`
buffers them in a list — used by tests, and by sweep worker processes,
which ship their buffered records back for the parent to re-emit in task
order.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import IO, Dict, List, Mapping, Optional, Union

from .registry import MetricsRegistry


class TraceSink:
    """Base sink: receives trace records; context-manager closeable."""

    def emit(self, record: Mapping) -> None:
        """Consume one trace record (a flat, JSON-safe mapping)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resources."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class MemoryTraceSink(TraceSink):
    """Buffers records in memory (tests, worker processes).

    >>> sink = MemoryTraceSink()
    >>> sink.emit({"kind": "slot", "slot": 0, "streams": 1})
    >>> sink.records[0]["slot"]
    0
    """

    def __init__(self):
        self.records: List[Dict] = []

    def emit(self, record: Mapping) -> None:
        self.records.append(dict(record))


class JsonlTraceSink(TraceSink):
    """Streams records to a JSON-lines file, one compact object per line."""

    def __init__(self, path: Union[str, pathlib.Path, IO[str]]):
        if hasattr(path, "write"):
            self._file: IO[str] = path  # type: ignore[assignment]
            self._owns_file = False
            self.path = None
        else:
            self.path = pathlib.Path(path)
            self._file = self.path.open("w")
            self._owns_file = True
        self.records_written = 0

    def emit(self, record: Mapping) -> None:
        self._file.write(json.dumps(record, separators=(",", ":"), sort_keys=True))
        self._file.write("\n")
        self.records_written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()
        else:
            self._file.flush()


@dataclass
class Observation:
    """The observability hooks one run threads through the layers.

    Attributes
    ----------
    metrics:
        Registry every component emits counters/histograms/timers into.
    trace:
        Optional per-slot record sink (``None`` disables tracing).
    """

    metrics: MetricsRegistry
    trace: Optional[TraceSink] = None
