"""Run manifests: a machine-readable record of what ran, where, at what cost.

A :class:`RunManifest` pins down everything needed to interpret (or rerun)
a measurement: the experiment name, the protocols and sweep parameters,
the workload seed, the git revision and interpreter/numpy versions that
produced it, plus the wall-clock duration and peak resident set size of
the run.  The CLI writes one next to every ``--metrics-out`` document, and
the observed sweep attaches one to every result.

:class:`ManifestRecorder` is the usual way to build one::

    with ManifestRecorder("fig7", protocols=["dhb"], seed=2001) as rec:
        ...  # run the experiment
    rec.manifest.write("run.json")
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence, Union

#: Manifest schema version, bumped on breaking field changes.
MANIFEST_SCHEMA = 1


def current_git_sha(cwd: Union[str, pathlib.Path, None] = None) -> Optional[str]:
    """The repository's HEAD commit, or ``None`` outside a git checkout.

    Never raises: a missing ``git`` binary, a non-repo directory, or a
    timeout all degrade to ``None`` — manifests must not fail runs.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def source_repo_root(
    source: Union[str, pathlib.Path, None] = None
) -> Optional[pathlib.Path]:
    """The git work tree that actually *tracks* ``source``, or ``None``.

    ``source`` defaults to this module's file, i.e. the installed package
    itself.  A pip-installed copy can sit inside an unrelated repository
    (site-packages under someone's dotfiles checkout, say), where a bare
    ``git rev-parse HEAD`` would stamp manifests with the SHA of a repo
    that never produced this code.  The enclosing work tree is therefore
    only trusted when ``git ls-files`` confirms it tracks the source file;
    otherwise callers should record no SHA at all.
    """
    path = pathlib.Path(source if source is not None else __file__).resolve()
    try:
        proc = subprocess.run(
            ["git", "-C", str(path.parent), "ls-files", "--error-unmatch", path.name],
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return path.parent if proc.returncode == 0 else None


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process in bytes, if measurable.

    Uses ``resource.getrusage``; ``ru_maxrss`` is kilobytes on Linux and
    bytes on macOS.  Returns ``None`` on platforms without ``resource``.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - windows
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macos
        return int(peak)
    return int(peak) * 1024


@dataclass
class RunManifest:
    """Provenance and cost record of one run.

    Attributes
    ----------
    experiment:
        What ran ("fig7", "sweep", a bench name, ...).
    protocols:
        Display labels of the protocols measured.
    params:
        The run parameters (typically the sweep config as a dict).
    seed:
        The workload seed, when one drove the run.
    git_sha:
        HEAD commit of the producing checkout (``None`` outside git).
    python_version / numpy_version / platform:
        The software that produced the numbers.
    started_at:
        UTC wall-clock start, ISO 8601.
    duration_seconds:
        Wall-clock cost of the run.
    peak_rss_bytes:
        Peak resident set size (``None`` where unmeasurable).
    """

    experiment: str
    protocols: List[str] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    git_sha: Optional[str] = None
    python_version: str = ""
    numpy_version: str = ""
    platform: str = ""
    started_at: str = ""
    duration_seconds: float = 0.0
    peak_rss_bytes: Optional[int] = None
    schema: int = MANIFEST_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output."""
        return cls(**state)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Parse a manifest previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def write(self, path: Union[str, pathlib.Path]) -> None:
        """Write the manifest as JSON to ``path``."""
        pathlib.Path(path).write_text(self.to_json() + "\n")


class ManifestRecorder:
    """Context manager that fills a :class:`RunManifest` around a run.

    On entry it stamps the start time; on exit it records the duration,
    peak RSS, git SHA, and interpreter/numpy versions.  The manifest is
    available (and complete) as :attr:`manifest` after the ``with`` block.

    ``repo_root`` pins the directory the git SHA is resolved in; when
    omitted, the SHA comes from the checkout that tracks the package
    source (:func:`source_repo_root`), and is ``None`` when no repository
    does — never from whatever unrelated repo happens to enclose an
    installed copy or the caller's working directory.
    """

    def __init__(
        self,
        experiment: str,
        protocols: Sequence[str] = (),
        params: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        repo_root: Union[str, pathlib.Path, None] = None,
    ):
        self.manifest = RunManifest(
            experiment=experiment,
            protocols=list(protocols),
            params=dict(params or {}),
            seed=seed,
        )
        self._repo_root = repo_root
        self._start = 0.0

    def __enter__(self) -> "ManifestRecorder":
        self.manifest.started_at = datetime.now(timezone.utc).isoformat()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.manifest.duration_seconds = time.perf_counter() - self._start
        self.manifest.peak_rss_bytes = peak_rss_bytes()
        root = self._repo_root if self._repo_root is not None else source_repo_root()
        self.manifest.git_sha = current_git_sha(root) if root is not None else None
        self.manifest.python_version = platform.python_version()
        self.manifest.platform = platform.platform()
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy is a hard dependency
            self.manifest.numpy_version = ""
        else:
            self.manifest.numpy_version = numpy.__version__
