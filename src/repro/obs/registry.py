"""The metrics registry: counters, gauges, histograms, timers.

Design goals, in order:

1. **Cheap when off.**  Instrumented code holds an ``Optional`` registry
   and guards every emission with ``is not None``; the null registry
   (:data:`NULL_REGISTRY`) exists for call sites that prefer unconditional
   calls — all of its instruments are process-wide singletons whose
   methods do nothing, so the disabled path allocates nothing per event.
2. **Mergeable.**  Sweeps fan out across worker processes; each worker
   accumulates into its own registry and ships :meth:`MetricsRegistry.to_dict`
   back, which the parent folds in with :meth:`MetricsRegistry.merge_dict`.
   Counters add, gauges keep the last merged value, histograms and timers
   combine their :class:`~repro.sim.stats.OnlineStats` losslessly.
3. **Schema-stable.**  ``to_dict`` output is plain JSON (see
   ``docs/OBSERVABILITY.md``) and round-trips through ``from_dict``.

Metric names are dotted paths (``sim.slot_load``, ``protocol.requests``).
The registry creates instruments on first use; asking twice for the same
name returns the same object.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.stats import OnlineStats


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) occurrences."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name}: negative inc {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current level of the measured quantity."""
        self.value = float(value)
        self.updates += 1


class Histogram:
    """A distribution summary over observed values.

    Backed by :class:`~repro.sim.stats.OnlineStats`, so it carries
    count/mean/stddev/min/max in O(1) memory and merges losslessly.
    """

    __slots__ = ("name", "stats")

    def __init__(self, name: str, stats: Optional[OnlineStats] = None):
        self.name = name
        self.stats = stats if stats is not None else OnlineStats()

    def observe(self, value: float) -> None:
        """Incorporate one observation."""
        self.stats.add(value)


class _Span:
    """One wall-clock measurement; context manager returned by :meth:`Timer.time`."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "Timer"):
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class Timer(Histogram):
    """A histogram of wall-clock durations in seconds.

    >>> registry = MetricsRegistry()
    >>> with registry.timer("demo.span").time():
    ...     pass
    >>> registry.timer("demo.span").stats.count
    1
    """

    __slots__ = ()

    def time(self) -> _Span:
        """A context manager that observes the elapsed wall time on exit."""
        return _Span(self)


class MetricsRegistry:
    """Named instruments, created on first use and queryable ever after.

    >>> registry = MetricsRegistry()
    >>> registry.counter("sim.slots").inc(3)
    >>> registry.counter("sim.slots").value
    3
    >>> registry.histogram("sim.slot_load").observe(5.0)
    >>> sorted(name for name, _ in registry.instruments())
    ['sim.slot_load', 'sim.slots']
    """

    #: Whether emissions are recorded; ``False`` only on the null registry.
    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}

    # -- instrument accessors -------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created empty on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def timer(self, name: str) -> Timer:
        """The timer called ``name``."""
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer(name)
        return instrument

    def instruments(self) -> Iterator[Tuple[str, object]]:
        """Every (name, instrument) pair, across all four kinds."""
        for family in (self._counters, self._gauges, self._histograms, self._timers):
            yield from family.items()

    # -- merge / serialization ------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (e.g. a worker's) into this one.

        Counters add; gauges take the other's value when it was ever set
        (merge order is task order, so "last writer wins" is well defined);
        histograms and timers combine their summaries losslessly.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            if gauge.updates:
                mine = self.gauge(name)
                mine.value = gauge.value
                mine.updates += gauge.updates
        for name, histogram in other._histograms.items():
            self.histogram(name).stats.merge(histogram.stats)
        for name, timer in other._timers.items():
            self.timer(name).stats.merge(timer.stats)

    def merge_dict(self, state: Dict[str, Dict]) -> None:
        """Fold a :meth:`to_dict` snapshot in (the cross-process path)."""
        self.merge(MetricsRegistry.from_dict(state))

    def to_dict(self) -> Dict[str, Dict]:
        """JSON-safe snapshot: ``{counters, gauges, histograms, timers}``."""
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "gauges": {
                name: {"value": g.value, "updates": g.updates}
                for name, g in self._gauges.items()
            },
            "histograms": {
                name: h.stats.to_dict() for name, h in self._histograms.items()
            },
            "timers": {name: t.stats.to_dict() for name, t in self._timers.items()},
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Dict]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name, value in state.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, payload in state.get("gauges", {}).items():
            gauge = registry.gauge(name)
            gauge.value = payload["value"]
            gauge.updates = int(payload["updates"])
        for name, payload in state.get("histograms", {}).items():
            registry._histograms[name] = Histogram(name, OnlineStats.from_dict(payload))
        for name, payload in state.get("timers", {}).items():
            timer = Timer(name)
            timer.stats = OnlineStats.from_dict(payload)
            registry._timers[name] = timer
        return registry


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullTimer(Timer):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """A registry whose instruments are shared do-nothing singletons.

    For call sites that prefer an unconditional ``registry.counter(...)``
    over an ``if registry is not None`` guard: every accessor returns the
    same pre-built instrument regardless of name, every mutator is a
    no-op, and nothing is allocated per event.
    """

    enabled = False

    def __init__(self):
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")
        self._null_timer = _NullTimer("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram

    def timer(self, name: str) -> Timer:
        return self._null_timer

    def merge(self, other: MetricsRegistry) -> None:
        pass


#: Process-wide disabled registry (all instruments are no-op singletons).
NULL_REGISTRY = NullMetricsRegistry()
