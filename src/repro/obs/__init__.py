"""Observability layer: metrics, run manifests, and per-slot traces.

Every layer of the reproduction — the simulation drivers, the protocols,
the experiment runner — can emit structured measurements into one shared
substrate instead of ad-hoc prints:

* :mod:`repro.obs.registry` — a :class:`MetricsRegistry` of counters,
  gauges, histograms, and wall-clock timers.  Registries accumulated in
  worker processes merge losslessly into the parent's, so parallel sweeps
  report exactly the serial numbers.
* :mod:`repro.obs.manifest` — a :class:`RunManifest` recording what ran
  (protocols, parameters, seed), under what software (git SHA,
  python/numpy versions), and at what cost (duration, peak RSS),
  serialized to JSON.
* :mod:`repro.obs.trace` — JSONL sinks for per-slot records (slot index,
  scheduled instances, load, active streams).

Everything is opt-in: hot paths take ``Optional`` registries/sinks and
guard each emission, so disabled observability costs one ``is not None``
check per call site and allocates nothing per event.
"""

from .manifest import (
    ManifestRecorder,
    RunManifest,
    current_git_sha,
    peak_rss_bytes,
    source_repo_root,
)
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    Timer,
)
from .trace import JsonlTraceSink, MemoryTraceSink, Observation, TraceSink

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "ManifestRecorder",
    "MemoryTraceSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullMetricsRegistry",
    "Observation",
    "RunManifest",
    "Timer",
    "TraceSink",
    "current_git_sha",
    "peak_rss_bytes",
    "source_repo_root",
]
