"""Command-line interface: regenerate any paper figure as a printed table.

Usage::

    repro-cli figures          # Figures 1-5 (exact schedule maps)
    repro-cli fig7 [--quick]   # average bandwidth sweep
    repro-cli fig8 [--quick]   # maximum bandwidth sweep
    repro-cli fig9 [--quick]   # compressed-video sweep (MB/s)
    repro-cli ablations [--quick]
    repro-cli variants         # the Section 4 DHB-a..d derivation table
    repro-cli cluster [--quick] [--scenario baseline|skewed|crash|all]
    repro-cli edge [--quick] [--cache-budget F] [--prefix-policy P] [--classes SPEC]
    repro-cli adaptive-study [--quick] [--workload SPEC]  # adaptive vs static DHB day
    repro-cli worker --connect HOST:PORT   # join a socket coordinator
    repro-cli serve [--bind HOST:PORT] [--replicas N]   # live VOD daemon
    repro-cli loadgen --connect HOST:PORT [--clients N] [--duration S]

``--quick`` shrinks horizons and the rate grid for smoke runs; the defaults
match the paper's 1–1000 requests/hour sweep.  ``--seed`` changes the
workload seed.  ``--workload SPEC`` swaps the seeded Poisson demand for a
nonstationary arrival process anywhere demand is consumed (see
``docs/WORKLOADS.md`` for the grammar): repeat it to sweep fig7/fig8 over
several workloads, or give it once to reshape cluster/edge/loadgen demand
or the ``adaptive-study`` day.  ``adaptive-study`` replays one seeded
diurnal+flash day through static DHB and the retuning
``AdaptiveDHBProtocol`` and reports the hour-by-hour peak comparison.
``cluster`` runs the multi-server scenarios of
``docs/CLUSTER.md`` (``--scenario`` picks one; the default runs all three).
``edge`` runs the origin→edge hierarchy budget study of ``docs/EDGE.md``:
backbone bandwidth saved vs pure DHB broadcast across per-edge cache
budgets, with the analytic bound overlaid (``--cache-budget`` highlights
one fraction, ``--prefix-policy`` picks the allocation policy,
``--classes name:weight:share,...`` overrides the traffic classes).

Execution is pluggable (results are bit-for-bit identical on every
backend — see ``docs/ARCHITECTURE.md``)::

    repro-cli fig7 --workers 4                      # local process pool
    repro-cli fig7 --backend socket --workers 2     # 2 loopback socket workers
    repro-cli fig7 --backend socket --bind 0.0.0.0:9000 --workers 2
    repro-cli worker --connect coordinator-host:9000

``--workers N`` (alias ``--jobs``) sizes the engine (``-1`` = all cores;
default: the ``REPRO_SWEEP_JOBS`` environment variable, else serial).
``--backend`` picks serial / process / socket explicitly.  With
``--backend socket`` the command spawns its own loopback workers unless
``--bind`` is given, in which case it waits for ``--workers`` external
``repro-cli worker`` processes to register.

Long sweeps survive interruption with a checkpoint journal::

    repro-cli fig7 --checkpoint fig7.ckpt       # journal as results land
    repro-cli fig7 --checkpoint fig7.ckpt       # re-run: completed cells skipped
    repro-cli fig7 --checkpoint fig7.ckpt --resume  # same, but requires the file

Completed cells are keyed by a content digest of their spec, so a resumed
run reproduces the uninterrupted run's output exactly without re-executing
finished work (``--resume`` merely *insists* the journal already exists).

The measured commands (fig7, fig8, fig9, cluster) also accept
observability outputs (see ``docs/OBSERVABILITY.md`` for the schemas)::

    repro-cli fig7 --quick --metrics-out run.json --trace-out trace.jsonl
    repro-cli cluster --quick --scenario crash --metrics-out run.json

``--metrics-out`` writes a JSON document with the run manifest (protocols,
parameters, seed, git SHA, versions, duration, peak RSS) and every metric
the layers emitted; ``--trace-out`` streams one JSON line per simulated
slot (slot index, scheduled instances, load, active streams).

The live serving pair (see ``docs/SERVING.md``)::

    repro-cli serve --bind 127.0.0.1:8471 --replicas 2 --serve-seconds 30
    repro-cli loadgen --connect 127.0.0.1:8471 --clients 500 --duration 10 \\
        --max-dropped 0 --p99-bound 0.375 --compare-sim

``serve`` prints ``serving on HOST:PORT`` once the daemon is listening
(with ``--replicas N`` that is a controller redirecting clients across N
replica daemons) and runs until ``--serve-seconds`` elapses or SIGINT.
``loadgen`` drives a client schedule against it, prints a JSON summary,
and exits non-zero when a ``--max-dropped``/``--p99-bound`` gate or the
``--compare-sim`` simulator-agreement check fails.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
from dataclasses import asdict, replace
from typing import Dict, Iterator, List, Optional, Sequence

from .analysis.tables import format_series_table, format_simple_table
from .cluster.scenario import preset_scenarios, run_scenarios
from .core.variants import make_all_variants
from .experiments.ablations import (
    heuristic_ablation,
    peak_demonstration,
    sharing_ablation,
    slack_dial_ablation,
)
from .experiments.catalog import run_catalog
from .experiments.config import SweepConfig
from .experiments.fig7 import FIG7_PROTOCOLS, report_fig7, run_fig7
from .experiments.fig8 import FIG8_PROTOCOLS, report_fig8, run_fig8
from .experiments.fig9 import FIG9_MAX_WAIT, FIG9_SERIES, report_fig9, run_fig9
from .cluster.routing import ROUTER_NAMES
from .errors import ReproError
from .obs.trace import JsonlTraceSink, Observation
from .runtime import CheckpointStore, Engine, RunSpec, observed_run
from .units import KILOBYTE
from .video.matrix import matrix_like_video
from .workload.spec import parse_workload

#: Commands that run measured sweeps and accept --metrics-out/--trace-out.
OBSERVABLE_COMMANDS = frozenset(
    {"fig7", "fig8", "fig9", "cluster", "edge", "loadgen", "adaptive-study"}
)

#: Commands that accept --workload SPEC (fig7/fig8 accept it repeatedly).
WORKLOAD_COMMANDS = frozenset(
    {"fig7", "fig8", "cluster", "edge", "loadgen", "adaptive-study"}
)

#: Cluster scenario names accepted by --scenario ("all" runs every preset).
CLUSTER_SCENARIOS = ("baseline", "skewed", "crash")


def _config(args: argparse.Namespace) -> SweepConfig:
    config = SweepConfig(seed=args.seed)
    if args.quick:
        config = config.quick()
    if args.workload:
        config = replace(
            config,
            workloads=tuple(parse_workload(spec) for spec in args.workload),
        )
    return config


def _engine(args: argparse.Namespace) -> Engine:
    """The command's execution engine, built from the backend/worker flags.

    ``--backend socket`` without ``--bind`` spawns its own loopback
    workers; with ``--bind`` it listens there and waits for ``--workers``
    external ``repro-cli worker`` registrations.  ``--checkpoint`` attaches
    a :class:`~repro.runtime.CheckpointStore` journaling every completed
    cell.  Commands close the engine (workers, journal) when done.
    """
    backend = args.backend
    if backend == "socket":
        from .runtime.backends import SocketWorkerBackend, parse_address

        workers = max(1, args.jobs if args.jobs is not None else 1)
        timeout = (
            {"register_timeout": args.register_timeout}
            if args.register_timeout is not None
            else {}
        )
        if args.bind:
            host, port = parse_address(args.bind)
            backend = SocketWorkerBackend(
                host=host, port=port, min_workers=workers, **timeout
            )
        else:
            backend = SocketWorkerBackend(spawn_workers=workers, **timeout)
    checkpoint = CheckpointStore(args.checkpoint) if args.checkpoint else None
    return Engine(n_jobs=args.jobs, backend=backend, checkpoint=checkpoint)


class _ObservedRun:
    """The disabled observability session (neither output flag given)."""

    def __init__(self, observation: Optional[Observation]):
        self.observation = observation


@contextlib.contextmanager
def _observed(
    args: argparse.Namespace,
    experiment: str,
    protocols: Sequence[str],
    params: Dict,
    seed: int,
) -> Iterator[_ObservedRun]:
    """Wire up --metrics-out/--trace-out for one measured command.

    Thin CLI shell over :func:`repro.runtime.observed_run` — the runtime
    owns the registry/manifest/trace wiring; this adds only the file
    outputs.  ``params`` is the JSON-safe parameter record for the
    manifest.  Yields a run whose ``observation`` is ``None`` when neither
    flag was given (runs then execute with observability off).  On exit,
    the manifest is completed, the trace sink closed, and the metrics
    document written.
    """
    if not (args.metrics_out or args.trace_out):
        yield _ObservedRun(None)
        return
    sink = JsonlTraceSink(args.trace_out) if args.trace_out else None
    try:
        with observed_run(
            experiment, protocols=protocols, params=params, seed=seed, trace=sink
        ) as run:
            yield run
    finally:
        if sink is not None:
            sink.close()
    if args.metrics_out:
        document = run.metrics_document()
        document["trace"] = (
            {"path": str(args.trace_out), "records": sink.records_written}
            if sink is not None
            else None
        )
        pathlib.Path(args.metrics_out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )


def _cmd_figures(args: argparse.Namespace) -> str:
    specs = [RunSpec("figure-render", (), label="figures 1-5")]
    with _engine(args) as engine:
        return engine.run_values(specs)[0]


def _cmd_fig7(args: argparse.Namespace) -> str:
    config = _config(args)
    labels = [label for _, label in FIG7_PROTOCOLS]
    with _observed(args, "fig7", labels, asdict(config), config.seed) as run:
        with _engine(args) as engine:
            return report_fig7(
                run_fig7(config, observation=run.observation, engine=engine)
            )


def _cmd_fig8(args: argparse.Namespace) -> str:
    config = _config(args)
    labels = [label for _, label in FIG8_PROTOCOLS]
    with _observed(args, "fig8", labels, asdict(config), config.seed) as run:
        with _engine(args) as engine:
            return report_fig8(
                run_fig8(config, observation=run.observation, engine=engine)
            )


def _cmd_fig9(args: argparse.Namespace) -> str:
    config = _config(args)
    labels = list(FIG9_SERIES)
    with _observed(args, "fig9", labels, asdict(config), config.seed) as run:
        with _engine(args) as engine:
            return report_fig9(
                run_fig9(config, observation=run.observation, engine=engine)
            )


def _cmd_variants(args: argparse.Namespace) -> str:
    video = matrix_like_video()
    variants = make_all_variants(video, FIG9_MAX_WAIT)
    rows = []
    for name in ("DHB-a", "DHB-b", "DHB-c", "DHB-d"):
        variant = variants[name]
        rows.append(
            [
                name,
                variant.n_segments,
                f"{variant.stream_rate / KILOBYTE:.0f}",
                f"{variant.periods.saturation_bandwidth * variant.stream_rate / KILOBYTE:.0f}",
            ]
        )
    header = (
        "Section 4 derivation on the Matrix-calibrated trace "
        f"(duration {video.duration:.0f}s, avg "
        f"{video.average_bandwidth / KILOBYTE:.0f} KB/s, peak "
        f"{video.peak_bandwidth() / KILOBYTE:.0f} KB/s)\n"
        "(paper: DHB-a 137 segs @951, DHB-b @789, DHB-c 129 segs @671)\n"
    )
    return header + format_simple_table(
        ["variant", "segments", "stream KB/s", "saturation KB/s"], rows
    )


def _cmd_ablations(args: argparse.Namespace) -> str:
    config = _config(args)
    with _engine(args) as engine:
        return _render_ablations(config, engine)


def _render_ablations(config: SweepConfig, engine: Engine) -> str:
    parts: List[str] = []
    heuristic_series = heuristic_ablation(config, engine=engine)
    parts.append("Heuristic ablation (mean streams):")
    parts.append(format_series_table(heuristic_series, value="mean"))
    parts.append("")
    parts.append("Heuristic ablation (max streams):")
    parts.append(format_series_table(heuristic_series, value="max", precision=0))
    parts.append("")
    parts.append("Sharing ablation (mean streams):")
    parts.append(format_series_table(sharing_ablation(config, engine=engine), value="mean"))
    parts.append("")
    slack_series = slack_dial_ablation(config, engine=engine)
    parts.append("Slack-dial ablation (mean streams):")
    parts.append(format_series_table(slack_series, value="mean"))
    parts.append("Slack-dial ablation (max streams):")
    parts.append(format_series_table(slack_series, value="max", precision=0))
    parts.append("")
    peak = peak_demonstration()
    parts.append("Peak demonstration (one request per slot, 40 segments):")
    rows = [
        [label, f"{stats['mean_streams']:.2f}", f"{stats['max_streams']:.0f}"]
        for label, stats in peak.items()
    ]
    parts.append(format_simple_table(["chooser", "mean", "max"], rows))
    return "\n".join(parts)


def _cmd_cluster(args: argparse.Namespace) -> str:
    scenarios = preset_scenarios(seed=args.seed, quick=args.quick)
    if args.scenario != "all":
        scenarios = [s for s in scenarios if s.name == args.scenario]
    if args.workload:
        workload = parse_workload(args.workload[0])
        scenarios = [replace(s, workload=workload) for s in scenarios]
    labels = [scenario.name for scenario in scenarios]
    params = {
        "quick": args.quick,
        "scenario": args.scenario,
        "scenarios": labels,
        "protocol": scenarios[0].protocol,
    }
    if args.workload:
        params["workload"] = scenarios[0].workload.label()
    with _observed(args, "cluster", labels, params, args.seed) as run:
        with _engine(args) as engine:
            results = run_scenarios(
                scenarios, observation=run.observation, engine=engine
            )
    parts = []
    for scenario, result in zip(scenarios, results):
        parts.append(
            f"[{scenario.name}] {scenario.topology.n_servers} servers x "
            f"{scenario.topology.spec_of(0).capacity} channels, "
            f"{scenario.topology.n_titles} titles, router {scenario.router}"
        )
        parts.append(result.render())
        parts.append("")
    return "\n".join(parts).rstrip()


def _cmd_catalog(args: argparse.Namespace) -> str:
    config = SweepConfig(seed=args.seed).quick(
        base_hours=10.0 if not args.quick else 3.0,
        min_requests=60 if not args.quick else 15,
    )
    with _engine(args) as engine:
        result = run_catalog(
            n_videos=10, total_rate_per_hour=300.0, config=config, engine=engine
        )
    header = (
        "Catalog provisioning: 10 titles, Zipf(1.0) popularity, "
        "300 requests/hour total\n"
    )
    return header + result.render()


def _cmd_edge(args: argparse.Namespace) -> str:
    """Run the origin→edge budget study and summarize the focus budget."""
    from .edge import DEFAULT_CLASSES, parse_classes, preset_hierarchy
    from .edge.study import DEFAULT_FRACTIONS, run_budget_study

    fraction = args.cache_budget if args.cache_budget is not None else 0.25
    policy = args.prefix_policy or "popularity"
    classes = parse_classes(args.classes) if args.classes else DEFAULT_CLASSES
    base = preset_hierarchy(
        seed=args.seed,
        quick=args.quick,
        cache_fraction=fraction,
        prefix_policy=policy,
        classes=classes,
    )
    if args.workload:
        base = replace(base, workload=parse_workload(args.workload[0]))
    fractions = tuple(sorted(set(DEFAULT_FRACTIONS) | {fraction}))
    params = {
        "quick": args.quick,
        "cache_budget": fraction,
        "prefix_policy": policy,
        "classes": [cls.name for cls in classes],
    }
    if args.workload:
        params["workload"] = base.workload.label()
    with _observed(args, "edge", [base.name], params, args.seed) as run:
        with _engine(args) as engine:
            study = run_budget_study(
                base,
                fractions=fractions,
                observation=run.observation,
                engine=engine,
            )
    focus_segments = base.topology.edges[0].cache_segments
    focus = next(
        point for point in study.points if point.cache_segments == focus_segments
    )
    origin = base.topology.origin
    header = (
        f"[{base.name}] origin {origin.n_servers} servers x "
        f"{origin.spec_of(0).capacity} channels, {origin.n_titles} titles; "
        f"{base.topology.n_edges} edges, policy {policy}, "
        f"Zipf({base.zipf_theta})"
    )
    summary = (
        f"at {fraction:.0%} budget ({focus.cache_segments} segments/edge): "
        f"hit ratio {focus.hit_ratio:.3f}, backbone bandwidth saved "
        f"{focus.backbone_saved:.1%} (analytic bound {focus.theory_bound:.1%})"
    )
    return "\n".join([header, study.render(), summary])


def _cmd_serve(args: argparse.Namespace) -> str:
    """Run a live broadcast daemon (or controller + replicas) until told to stop."""
    import asyncio
    import contextlib
    import signal

    from .runtime.backends import parse_address
    from .serve import BroadcastDaemon, ServeConfig, serve_cluster

    overrides = {
        name: value
        for name, value in (
            ("n_segments", args.segments),
            ("slot_duration", args.slot_duration),
            ("segment_bytes", args.segment_bytes),
            ("queue_frames", args.queue_frames),
        )
        if value is not None
    }
    config = ServeConfig(**overrides)
    replicas = args.replicas if args.replicas is not None else 0
    host, port = parse_address(args.bind) if args.bind else ("127.0.0.1", 0)

    async def _serve() -> None:
        if replicas > 0:
            unit = await serve_cluster(
                config, replicas, host=host, port=port,
                router_name=args.router or "least-loaded",
            )
        else:
            unit = BroadcastDaemon(config, host=host, port=port)
            await unit.start()
        bound_host, bound_port = unit.address
        print(f"serving on {bound_host}:{bound_port}", flush=True)
        # A signal-driven stop event makes the shutdown graceful under
        # SIGTERM too — backgrounded daemons in non-interactive shells
        # (CI steps) often inherit SIGINT as ignored, so `kill PID` must
        # take the same FIN-every-session path as Ctrl-C.
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                continue
            handled.append(signum)
        try:
            if args.serve_seconds is not None:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        stop_event.wait(), args.serve_seconds
                    )
            else:
                await stop_event.wait()
        finally:
            for signum in handled:
                loop.remove_signal_handler(signum)
            await unit.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return "serve: shut down cleanly"


def _cmd_loadgen(args: argparse.Namespace) -> str:
    """Drive a client schedule against a live daemon; print a JSON summary."""
    import asyncio

    from .errors import ServeError
    from .runtime.backends import parse_address
    from .serve import (
        LoadgenConfig,
        assert_gates,
        compare_with_simulation,
        run_loadgen_async,
    )

    host, port = parse_address(args.connect)
    config = LoadgenConfig(
        host=host,
        port=port,
        clients=args.clients if args.clients is not None else 100,
        duration_seconds=args.duration if args.duration is not None else 5.0,
        arrivals=args.arrivals or "poisson",
        seed=args.seed,
        want=args.want or "first",
        workload=args.workload[0] if args.workload else None,
    )
    params = {
        "clients": config.clients,
        "duration_seconds": config.duration_seconds,
        "arrivals": config.arrivals,
        "workload": config.workload,
        "want": config.want,
        "target": f"{host}:{port}",
    }
    with _observed(args, "loadgen", ["dhb"], params, args.seed) as run:
        observation = run.observation
        result = asyncio.run(
            run_loadgen_async(
                config,
                metrics=observation.metrics if observation else None,
                trace=observation.trace if observation else None,
            )
        )
    document = result.to_dict()
    comparison = None
    if args.compare_sim:
        comparison = compare_with_simulation(result)
        document["simulation"] = comparison.to_dict()
    output = json.dumps(document, indent=2, sort_keys=True)
    # Gates run after the summary is assembled so a failure still shows it.
    try:
        assert_gates(
            result, max_dropped=args.max_dropped, p99_bound=args.p99_bound
        )
        if comparison is not None and not comparison.within_tolerance():
            raise ServeError(
                "loadgen gate failed: served waits disagree with the slotted "
                f"simulator beyond tolerance: {comparison.to_dict()}"
            )
    except ServeError:
        print(output, flush=True)
        raise
    return output


def _cmd_adaptive_study(args: argparse.Namespace) -> str:
    """Replay one nonstationary day through static and adaptive DHB."""
    from .experiments.adaptive import AdaptiveStudyConfig, run_adaptive_study

    config = AdaptiveStudyConfig(seed=args.seed)
    if args.quick:
        config = config.quick()
    if args.workload:
        config = replace(config, workload=parse_workload(args.workload[0]))
    params = {
        "quick": args.quick,
        "workload": config.workload.label(),
        "n_segments": config.n_segments,
        "epoch_slots": config.epoch_slots,
        "slack_ladder": [list(rung) for rung in config.slack_ladder],
    }
    with _observed(args, "adaptive-study", ["static", "adaptive"], params, args.seed) as run:
        with _engine(args) as engine:
            result = run_adaptive_study(
                config=config, observation=run.observation, engine=engine
            )
    return result.render()


_COMMANDS = {
    "figures": _cmd_figures,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "variants": _cmd_variants,
    "ablations": _cmd_ablations,
    "catalog": _cmd_catalog,
    "cluster": _cmd_cluster,
    "edge": _cmd_edge,
    "adaptive-study": _cmd_adaptive_study,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description=(
            "Regenerate the figures of 'A Dynamic Heuristic Broadcasting "
            "Protocol for Video-on-Demand' (ICDCS 2001)."
        ),
    )
    parser.add_argument(
        "command",
        choices=sorted([*_COMMANDS, "worker"]),
        help=(
            "what to run (worker: join a socket coordinator; "
            "serve/loadgen: the live serving pair)"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true", help="short horizons / few rates"
    )
    parser.add_argument("--seed", type=int, default=2001, help="workload seed")
    parser.add_argument(
        "--workload",
        action="append",
        metavar="SPEC",
        default=None,
        help=(
            "nonstationary workload spec, e.g. diurnal:child,peak=120, "
            "flash:peak=400,decay=1.5,start=19, mmpp:rates=20|200,sojourn=2|0.5, "
            "trace:FILE, or parts joined with '+' (see docs/WORKLOADS.md); "
            "repeat to sweep fig7/fig8 over several workloads, give once "
            "for cluster/edge/loadgen/adaptive-study"
        ),
    )
    parser.add_argument(
        "--jobs",
        "--workers",
        dest="jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "workers for the execution engine "
            "(default: REPRO_SWEEP_JOBS or serial; -1 = all cores)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "process", "socket"),
        default=None,
        help=(
            "execution backend (default: REPRO_BACKEND, else picked from "
            "the worker count); results are identical on every backend"
        ),
    )
    parser.add_argument(
        "--bind",
        metavar="HOST:PORT",
        default=None,
        help=(
            "with --backend socket: listen here and wait for --workers "
            "external 'repro-cli worker' registrations instead of "
            "spawning loopback workers; with serve: the daemon's "
            "listening address (default 127.0.0.1 on an ephemeral port)"
        ),
    )
    parser.add_argument(
        "--register-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "with --backend socket: seconds to wait for worker "
            "registrations before erroring out (default 60)"
        ),
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help=(
            "worker: the coordinator to register with; "
            "loadgen: the daemon or controller to drive"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "journal completed cells here and skip ones already journaled "
            "(append-only; safe to re-run after an interruption)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="require --checkpoint PATH to already exist (strict resume)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a run manifest + metrics JSON document (fig7/fig8/fig9)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="stream per-slot JSONL trace records (fig7/fig8/fig9/cluster)",
    )
    parser.add_argument(
        "--scenario",
        choices=(*CLUSTER_SCENARIOS, "all"),
        default="all",
        help="which cluster preset to run (cluster command only)",
    )
    edge = parser.add_argument_group("edge (see docs/EDGE.md)")
    edge.add_argument(
        "--cache-budget",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "per-edge prefix-cache budget as a fraction of the catalog's "
            "segments (default 0.25); always added to the study sweep"
        ),
    )
    edge.add_argument(
        "--prefix-policy",
        choices=("popularity", "uniform", "proportional"),
        default=None,
        help="cache allocation policy (default popularity)",
    )
    edge.add_argument(
        "--classes",
        metavar="SPEC",
        default=None,
        help=(
            "traffic classes as name:weight:uplink_share,... "
            "(default premium:7:0.7,best-effort:3:0.3)"
        ),
    )
    serve = parser.add_argument_group("serve (see docs/SERVING.md)")
    serve.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="front N replica daemons with a redirecting controller (default 0)",
    )
    serve.add_argument(
        "--router",
        choices=ROUTER_NAMES,
        default=None,
        help="controller routing policy with --replicas (default least-loaded)",
    )
    serve.add_argument(
        "--segments",
        type=int,
        default=None,
        metavar="N",
        help="segments per video (default 12)",
    )
    serve.add_argument(
        "--slot-duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock slot length d, the DHB wait bound (default 0.25)",
    )
    serve.add_argument(
        "--segment-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="payload bytes per segment frame (default 1024)",
    )
    serve.add_argument(
        "--queue-frames",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-session send-queue bound before slow-client eviction "
            "(default: REPRO_SERVE_QUEUE_FRAMES or 64)"
        ),
    )
    serve.add_argument(
        "--serve-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for this long then stop (default: until SIGINT)",
    )
    loadgen = parser.add_argument_group("loadgen")
    loadgen.add_argument(
        "--clients",
        type=int,
        default=None,
        metavar="N",
        help="target client sessions (default 100)",
    )
    loadgen.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds the arrival schedule spans (default 5)",
    )
    loadgen.add_argument(
        "--arrivals",
        choices=("poisson", "uniform"),
        default=None,
        help="arrival schedule shape (default poisson)",
    )
    loadgen.add_argument(
        "--want",
        choices=("first", "all"),
        default=None,
        help=(
            "leave after the first segment (wait measurement only) or "
            "stay for the whole video (default first)"
        ),
    )
    loadgen.add_argument(
        "--max-dropped",
        type=int,
        default=None,
        metavar="N",
        help="gate: fail when more than N sessions drop",
    )
    loadgen.add_argument(
        "--p99-bound",
        type=float,
        default=None,
        metavar="SECONDS",
        help="gate: fail when the p99 wait exceeds this bound",
    )
    loadgen.add_argument(
        "--compare-sim",
        action="store_true",
        help=(
            "replay the same arrivals through the slotted simulator and "
            "fail when served waits disagree beyond tolerance"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "worker":
        if not args.connect:
            parser.error("worker requires --connect HOST:PORT")
        from .runtime.backends import worker_main

        return worker_main(args.connect)
    if args.command == "loadgen" and not args.connect:
        parser.error("loadgen requires --connect HOST:PORT")
    if args.connect and args.command != "loadgen":
        parser.error("--connect only applies to the worker and loadgen commands")
    if (args.metrics_out or args.trace_out) and args.command not in OBSERVABLE_COMMANDS:
        parser.error(
            f"--metrics-out/--trace-out only apply to "
            f"{'/'.join(sorted(OBSERVABLE_COMMANDS))}, not {args.command!r}"
        )
    if args.scenario != "all" and args.command != "cluster":
        parser.error("--scenario only applies to the cluster command")
    if args.workload:
        if args.command not in WORKLOAD_COMMANDS:
            parser.error(
                f"--workload only applies to "
                f"{'/'.join(sorted(WORKLOAD_COMMANDS))}, not {args.command!r}"
            )
        if len(args.workload) > 1 and args.command not in ("fig7", "fig8"):
            parser.error(
                "--workload may be repeated only for the fig7/fig8 sweeps; "
                f"give {args.command} a single spec (use '+' to superpose)"
            )
    if args.bind and args.backend != "socket" and args.command != "serve":
        parser.error("--bind only applies with --backend socket or serve")
    if args.register_timeout is not None and args.backend != "socket":
        parser.error("--register-timeout only applies with --backend socket")
    if args.command != "edge":
        for flag, value in (
            ("--cache-budget", args.cache_budget),
            ("--prefix-policy", args.prefix_policy),
            ("--classes", args.classes),
        ):
            if value is not None:
                parser.error(f"{flag} only applies to the edge command")
    if args.command != "serve":
        for flag, value in (
            ("--replicas", args.replicas),
            ("--router", args.router),
            ("--segments", args.segments),
            ("--slot-duration", args.slot_duration),
            ("--segment-bytes", args.segment_bytes),
            ("--queue-frames", args.queue_frames),
            ("--serve-seconds", args.serve_seconds),
        ):
            if value is not None:
                parser.error(f"{flag} only applies to the serve command")
    if args.command != "loadgen":
        for flag, value in (
            ("--clients", args.clients),
            ("--duration", args.duration),
            ("--arrivals", args.arrivals),
            ("--want", args.want),
            ("--max-dropped", args.max_dropped),
            ("--p99-bound", args.p99_bound),
            ("--compare-sim", args.compare_sim or None),
        ):
            if value is not None:
                parser.error(f"{flag} only applies to the loadgen command")
    if args.resume:
        if not args.checkpoint:
            parser.error("--resume requires --checkpoint PATH")
        if not pathlib.Path(args.checkpoint).exists():
            parser.error(
                f"--resume: checkpoint journal {args.checkpoint!r} does not exist"
            )
    try:
        output = _COMMANDS[args.command](args)
    except ReproError as exc:
        # Library errors carry an actionable message; a traceback would
        # only bury it.
        print(f"repro-cli: error: {exc}", file=sys.stderr)
        return 2
    try:
        print(output)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not our error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    sys.exit(main())
