"""Command-line interface: regenerate any paper figure as a printed table.

Usage::

    repro-cli figures          # Figures 1-5 (exact schedule maps)
    repro-cli fig7 [--quick]   # average bandwidth sweep
    repro-cli fig8 [--quick]   # maximum bandwidth sweep
    repro-cli fig9 [--quick]   # compressed-video sweep (MB/s)
    repro-cli ablations [--quick]
    repro-cli variants         # the Section 4 DHB-a..d derivation table
    repro-cli cluster [--quick] [--scenario baseline|skewed|crash|all]
    repro-cli worker --connect HOST:PORT   # join a socket coordinator

``--quick`` shrinks horizons and the rate grid for smoke runs; the defaults
match the paper's 1–1000 requests/hour sweep.  ``--seed`` changes the
workload seed.  ``cluster`` runs the multi-server scenarios of
``docs/CLUSTER.md`` (``--scenario`` picks one; the default runs all three).

Execution is pluggable (results are bit-for-bit identical on every
backend — see ``docs/ARCHITECTURE.md``)::

    repro-cli fig7 --workers 4                      # local process pool
    repro-cli fig7 --backend socket --workers 2     # 2 loopback socket workers
    repro-cli fig7 --backend socket --bind 0.0.0.0:9000 --workers 2
    repro-cli worker --connect coordinator-host:9000

``--workers N`` (alias ``--jobs``) sizes the engine (``-1`` = all cores;
default: the ``REPRO_SWEEP_JOBS`` environment variable, else serial).
``--backend`` picks serial / process / socket explicitly.  With
``--backend socket`` the command spawns its own loopback workers unless
``--bind`` is given, in which case it waits for ``--workers`` external
``repro-cli worker`` processes to register.

Long sweeps survive interruption with a checkpoint journal::

    repro-cli fig7 --checkpoint fig7.ckpt       # journal as results land
    repro-cli fig7 --checkpoint fig7.ckpt       # re-run: completed cells skipped
    repro-cli fig7 --checkpoint fig7.ckpt --resume  # same, but requires the file

Completed cells are keyed by a content digest of their spec, so a resumed
run reproduces the uninterrupted run's output exactly without re-executing
finished work (``--resume`` merely *insists* the journal already exists).

The measured commands (fig7, fig8, fig9, cluster) also accept
observability outputs (see ``docs/OBSERVABILITY.md`` for the schemas)::

    repro-cli fig7 --quick --metrics-out run.json --trace-out trace.jsonl
    repro-cli cluster --quick --scenario crash --metrics-out run.json

``--metrics-out`` writes a JSON document with the run manifest (protocols,
parameters, seed, git SHA, versions, duration, peak RSS) and every metric
the layers emitted; ``--trace-out`` streams one JSON line per simulated
slot (slot index, scheduled instances, load, active streams).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
from dataclasses import asdict
from typing import Dict, Iterator, List, Optional, Sequence

from .analysis.tables import format_series_table, format_simple_table
from .cluster.scenario import preset_scenarios, run_scenarios
from .core.variants import make_all_variants
from .experiments.ablations import (
    heuristic_ablation,
    peak_demonstration,
    sharing_ablation,
    slack_dial_ablation,
)
from .experiments.catalog import run_catalog
from .experiments.config import SweepConfig
from .experiments.fig7 import FIG7_PROTOCOLS, report_fig7, run_fig7
from .experiments.fig8 import FIG8_PROTOCOLS, report_fig8, run_fig8
from .experiments.fig9 import FIG9_MAX_WAIT, FIG9_SERIES, report_fig9, run_fig9
from .obs.trace import JsonlTraceSink, Observation
from .runtime import CheckpointStore, Engine, RunSpec, observed_run
from .units import KILOBYTE
from .video.matrix import matrix_like_video

#: Commands that run measured sweeps and accept --metrics-out/--trace-out.
OBSERVABLE_COMMANDS = frozenset({"fig7", "fig8", "fig9", "cluster"})

#: Cluster scenario names accepted by --scenario ("all" runs every preset).
CLUSTER_SCENARIOS = ("baseline", "skewed", "crash")


def _config(args: argparse.Namespace) -> SweepConfig:
    config = SweepConfig(seed=args.seed)
    if args.quick:
        config = config.quick()
    return config


def _engine(args: argparse.Namespace) -> Engine:
    """The command's execution engine, built from the backend/worker flags.

    ``--backend socket`` without ``--bind`` spawns its own loopback
    workers; with ``--bind`` it listens there and waits for ``--workers``
    external ``repro-cli worker`` registrations.  ``--checkpoint`` attaches
    a :class:`~repro.runtime.CheckpointStore` journaling every completed
    cell.  Commands close the engine (workers, journal) when done.
    """
    backend = args.backend
    if backend == "socket":
        from .runtime.backends import SocketWorkerBackend, parse_address

        workers = max(1, args.jobs if args.jobs is not None else 1)
        if args.bind:
            host, port = parse_address(args.bind)
            backend = SocketWorkerBackend(
                host=host, port=port, min_workers=workers
            )
        else:
            backend = SocketWorkerBackend(spawn_workers=workers)
    checkpoint = CheckpointStore(args.checkpoint) if args.checkpoint else None
    return Engine(n_jobs=args.jobs, backend=backend, checkpoint=checkpoint)


class _ObservedRun:
    """The disabled observability session (neither output flag given)."""

    def __init__(self, observation: Optional[Observation]):
        self.observation = observation


@contextlib.contextmanager
def _observed(
    args: argparse.Namespace,
    experiment: str,
    protocols: Sequence[str],
    params: Dict,
    seed: int,
) -> Iterator[_ObservedRun]:
    """Wire up --metrics-out/--trace-out for one measured command.

    Thin CLI shell over :func:`repro.runtime.observed_run` — the runtime
    owns the registry/manifest/trace wiring; this adds only the file
    outputs.  ``params`` is the JSON-safe parameter record for the
    manifest.  Yields a run whose ``observation`` is ``None`` when neither
    flag was given (runs then execute with observability off).  On exit,
    the manifest is completed, the trace sink closed, and the metrics
    document written.
    """
    if not (args.metrics_out or args.trace_out):
        yield _ObservedRun(None)
        return
    sink = JsonlTraceSink(args.trace_out) if args.trace_out else None
    try:
        with observed_run(
            experiment, protocols=protocols, params=params, seed=seed, trace=sink
        ) as run:
            yield run
    finally:
        if sink is not None:
            sink.close()
    if args.metrics_out:
        document = run.metrics_document()
        document["trace"] = (
            {"path": str(args.trace_out), "records": sink.records_written}
            if sink is not None
            else None
        )
        pathlib.Path(args.metrics_out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )


def _cmd_figures(args: argparse.Namespace) -> str:
    specs = [RunSpec("figure-render", (), label="figures 1-5")]
    with _engine(args) as engine:
        return engine.run_values(specs)[0]


def _cmd_fig7(args: argparse.Namespace) -> str:
    config = _config(args)
    labels = [label for _, label in FIG7_PROTOCOLS]
    with _observed(args, "fig7", labels, asdict(config), config.seed) as run:
        with _engine(args) as engine:
            return report_fig7(
                run_fig7(config, observation=run.observation, engine=engine)
            )


def _cmd_fig8(args: argparse.Namespace) -> str:
    config = _config(args)
    labels = [label for _, label in FIG8_PROTOCOLS]
    with _observed(args, "fig8", labels, asdict(config), config.seed) as run:
        with _engine(args) as engine:
            return report_fig8(
                run_fig8(config, observation=run.observation, engine=engine)
            )


def _cmd_fig9(args: argparse.Namespace) -> str:
    config = _config(args)
    labels = list(FIG9_SERIES)
    with _observed(args, "fig9", labels, asdict(config), config.seed) as run:
        with _engine(args) as engine:
            return report_fig9(
                run_fig9(config, observation=run.observation, engine=engine)
            )


def _cmd_variants(args: argparse.Namespace) -> str:
    video = matrix_like_video()
    variants = make_all_variants(video, FIG9_MAX_WAIT)
    rows = []
    for name in ("DHB-a", "DHB-b", "DHB-c", "DHB-d"):
        variant = variants[name]
        rows.append(
            [
                name,
                variant.n_segments,
                f"{variant.stream_rate / KILOBYTE:.0f}",
                f"{variant.periods.saturation_bandwidth * variant.stream_rate / KILOBYTE:.0f}",
            ]
        )
    header = (
        "Section 4 derivation on the Matrix-calibrated trace "
        f"(duration {video.duration:.0f}s, avg "
        f"{video.average_bandwidth / KILOBYTE:.0f} KB/s, peak "
        f"{video.peak_bandwidth() / KILOBYTE:.0f} KB/s)\n"
        "(paper: DHB-a 137 segs @951, DHB-b @789, DHB-c 129 segs @671)\n"
    )
    return header + format_simple_table(
        ["variant", "segments", "stream KB/s", "saturation KB/s"], rows
    )


def _cmd_ablations(args: argparse.Namespace) -> str:
    config = _config(args)
    with _engine(args) as engine:
        return _render_ablations(config, engine)


def _render_ablations(config: SweepConfig, engine: Engine) -> str:
    parts: List[str] = []
    heuristic_series = heuristic_ablation(config, engine=engine)
    parts.append("Heuristic ablation (mean streams):")
    parts.append(format_series_table(heuristic_series, value="mean"))
    parts.append("")
    parts.append("Heuristic ablation (max streams):")
    parts.append(format_series_table(heuristic_series, value="max", precision=0))
    parts.append("")
    parts.append("Sharing ablation (mean streams):")
    parts.append(format_series_table(sharing_ablation(config, engine=engine), value="mean"))
    parts.append("")
    slack_series = slack_dial_ablation(config, engine=engine)
    parts.append("Slack-dial ablation (mean streams):")
    parts.append(format_series_table(slack_series, value="mean"))
    parts.append("Slack-dial ablation (max streams):")
    parts.append(format_series_table(slack_series, value="max", precision=0))
    parts.append("")
    peak = peak_demonstration()
    parts.append("Peak demonstration (one request per slot, 40 segments):")
    rows = [
        [label, f"{stats['mean_streams']:.2f}", f"{stats['max_streams']:.0f}"]
        for label, stats in peak.items()
    ]
    parts.append(format_simple_table(["chooser", "mean", "max"], rows))
    return "\n".join(parts)


def _cmd_cluster(args: argparse.Namespace) -> str:
    scenarios = preset_scenarios(seed=args.seed, quick=args.quick)
    if args.scenario != "all":
        scenarios = [s for s in scenarios if s.name == args.scenario]
    labels = [scenario.name for scenario in scenarios]
    params = {
        "quick": args.quick,
        "scenario": args.scenario,
        "scenarios": labels,
        "protocol": scenarios[0].protocol,
    }
    with _observed(args, "cluster", labels, params, args.seed) as run:
        with _engine(args) as engine:
            results = run_scenarios(
                scenarios, observation=run.observation, engine=engine
            )
    parts = []
    for scenario, result in zip(scenarios, results):
        parts.append(
            f"[{scenario.name}] {scenario.topology.n_servers} servers x "
            f"{scenario.topology.spec_of(0).capacity} channels, "
            f"{scenario.topology.n_titles} titles, router {scenario.router}"
        )
        parts.append(result.render())
        parts.append("")
    return "\n".join(parts).rstrip()


def _cmd_catalog(args: argparse.Namespace) -> str:
    config = SweepConfig(seed=args.seed).quick(
        base_hours=10.0 if not args.quick else 3.0,
        min_requests=60 if not args.quick else 15,
    )
    with _engine(args) as engine:
        result = run_catalog(
            n_videos=10, total_rate_per_hour=300.0, config=config, engine=engine
        )
    header = (
        "Catalog provisioning: 10 titles, Zipf(1.0) popularity, "
        "300 requests/hour total\n"
    )
    return header + result.render()


_COMMANDS = {
    "figures": _cmd_figures,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "variants": _cmd_variants,
    "ablations": _cmd_ablations,
    "catalog": _cmd_catalog,
    "cluster": _cmd_cluster,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description=(
            "Regenerate the figures of 'A Dynamic Heuristic Broadcasting "
            "Protocol for Video-on-Demand' (ICDCS 2001)."
        ),
    )
    parser.add_argument(
        "command",
        choices=sorted([*_COMMANDS, "worker"]),
        help="what to run (worker: join a socket coordinator)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="short horizons / few rates"
    )
    parser.add_argument("--seed", type=int, default=2001, help="workload seed")
    parser.add_argument(
        "--jobs",
        "--workers",
        dest="jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "workers for the execution engine "
            "(default: REPRO_SWEEP_JOBS or serial; -1 = all cores)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "process", "socket"),
        default=None,
        help=(
            "execution backend (default: REPRO_BACKEND, else picked from "
            "the worker count); results are identical on every backend"
        ),
    )
    parser.add_argument(
        "--bind",
        metavar="HOST:PORT",
        default=None,
        help=(
            "with --backend socket: listen here and wait for --workers "
            "external 'repro-cli worker' registrations instead of "
            "spawning loopback workers"
        ),
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="worker command only: the coordinator to register with",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "journal completed cells here and skip ones already journaled "
            "(append-only; safe to re-run after an interruption)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="require --checkpoint PATH to already exist (strict resume)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a run manifest + metrics JSON document (fig7/fig8/fig9)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="stream per-slot JSONL trace records (fig7/fig8/fig9/cluster)",
    )
    parser.add_argument(
        "--scenario",
        choices=(*CLUSTER_SCENARIOS, "all"),
        default="all",
        help="which cluster preset to run (cluster command only)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "worker":
        if not args.connect:
            parser.error("worker requires --connect HOST:PORT")
        from .runtime.backends import worker_main

        return worker_main(args.connect)
    if args.connect:
        parser.error("--connect only applies to the worker command")
    if (args.metrics_out or args.trace_out) and args.command not in OBSERVABLE_COMMANDS:
        parser.error(
            f"--metrics-out/--trace-out only apply to "
            f"{'/'.join(sorted(OBSERVABLE_COMMANDS))}, not {args.command!r}"
        )
    if args.scenario != "all" and args.command != "cluster":
        parser.error("--scenario only applies to the cluster command")
    if args.bind and args.backend != "socket":
        parser.error("--bind only applies with --backend socket")
    if args.resume:
        if not args.checkpoint:
            parser.error("--resume requires --checkpoint PATH")
        if not pathlib.Path(args.checkpoint).exists():
            parser.error(
                f"--resume: checkpoint journal {args.checkpoint!r} does not exist"
            )
    output = _COMMANDS[args.command](args)
    try:
        print(output)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not our error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    sys.exit(main())
