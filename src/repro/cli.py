"""Command-line interface: regenerate any paper figure as a printed table.

Usage::

    repro-cli figures          # Figures 1-5 (exact schedule maps)
    repro-cli fig7 [--quick]   # average bandwidth sweep
    repro-cli fig8 [--quick]   # maximum bandwidth sweep
    repro-cli fig9 [--quick]   # compressed-video sweep (MB/s)
    repro-cli ablations [--quick]
    repro-cli variants         # the Section 4 DHB-a..d derivation table

``--quick`` shrinks horizons and the rate grid for smoke runs; the defaults
match the paper's 1–1000 requests/hour sweep.  ``--seed`` changes the
workload seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.tables import format_series_table, format_simple_table
from .core.variants import make_all_variants
from .experiments.ablations import (
    heuristic_ablation,
    peak_demonstration,
    sharing_ablation,
    slack_dial_ablation,
)
from .experiments.catalog import run_catalog
from .experiments.config import SweepConfig
from .experiments.fig1to5 import render_all_figures
from .experiments.fig7 import report_fig7, run_fig7
from .experiments.fig8 import report_fig8, run_fig8
from .experiments.fig9 import FIG9_MAX_WAIT, report_fig9, run_fig9
from .units import KILOBYTE
from .video.matrix import matrix_like_video


def _config(args: argparse.Namespace) -> SweepConfig:
    config = SweepConfig(seed=args.seed)
    if args.quick:
        config = config.quick()
    return config


def _cmd_figures(args: argparse.Namespace) -> str:
    return render_all_figures()


def _cmd_fig7(args: argparse.Namespace) -> str:
    return report_fig7(run_fig7(_config(args)))


def _cmd_fig8(args: argparse.Namespace) -> str:
    return report_fig8(run_fig8(_config(args)))


def _cmd_fig9(args: argparse.Namespace) -> str:
    return report_fig9(run_fig9(_config(args)))


def _cmd_variants(args: argparse.Namespace) -> str:
    video = matrix_like_video()
    variants = make_all_variants(video, FIG9_MAX_WAIT)
    rows = []
    for name in ("DHB-a", "DHB-b", "DHB-c", "DHB-d"):
        variant = variants[name]
        rows.append(
            [
                name,
                variant.n_segments,
                f"{variant.stream_rate / KILOBYTE:.0f}",
                f"{variant.periods.saturation_bandwidth * variant.stream_rate / KILOBYTE:.0f}",
            ]
        )
    header = (
        "Section 4 derivation on the Matrix-calibrated trace "
        f"(duration {video.duration:.0f}s, avg "
        f"{video.average_bandwidth / KILOBYTE:.0f} KB/s, peak "
        f"{video.peak_bandwidth() / KILOBYTE:.0f} KB/s)\n"
        "(paper: DHB-a 137 segs @951, DHB-b @789, DHB-c 129 segs @671)\n"
    )
    return header + format_simple_table(
        ["variant", "segments", "stream KB/s", "saturation KB/s"], rows
    )


def _cmd_ablations(args: argparse.Namespace) -> str:
    config = _config(args)
    parts: List[str] = []
    parts.append("Heuristic ablation (mean streams):")
    parts.append(format_series_table(heuristic_ablation(config), value="mean"))
    parts.append("")
    parts.append("Heuristic ablation (max streams):")
    parts.append(format_series_table(heuristic_ablation(config), value="max", precision=0))
    parts.append("")
    parts.append("Sharing ablation (mean streams):")
    parts.append(format_series_table(sharing_ablation(config), value="mean"))
    parts.append("")
    slack_series = slack_dial_ablation(config)
    parts.append("Slack-dial ablation (mean streams):")
    parts.append(format_series_table(slack_series, value="mean"))
    parts.append("Slack-dial ablation (max streams):")
    parts.append(format_series_table(slack_series, value="max", precision=0))
    parts.append("")
    peak = peak_demonstration()
    parts.append("Peak demonstration (one request per slot, 40 segments):")
    rows = [
        [label, f"{stats['mean_streams']:.2f}", f"{stats['max_streams']:.0f}"]
        for label, stats in peak.items()
    ]
    parts.append(format_simple_table(["chooser", "mean", "max"], rows))
    return "\n".join(parts)


def _cmd_catalog(args: argparse.Namespace) -> str:
    config = SweepConfig(seed=args.seed).quick(
        base_hours=10.0 if not args.quick else 3.0,
        min_requests=60 if not args.quick else 15,
    )
    result = run_catalog(n_videos=10, total_rate_per_hour=300.0, config=config)
    header = (
        "Catalog provisioning: 10 titles, Zipf(1.0) popularity, "
        "300 requests/hour total\n"
    )
    return header + result.render()


_COMMANDS = {
    "figures": _cmd_figures,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "variants": _cmd_variants,
    "ablations": _cmd_ablations,
    "catalog": _cmd_catalog,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description=(
            "Regenerate the figures of 'A Dynamic Heuristic Broadcasting "
            "Protocol for Video-on-Demand' (ICDCS 2001)."
        ),
    )
    parser.add_argument("command", choices=sorted(_COMMANDS), help="what to run")
    parser.add_argument(
        "--quick", action="store_true", help="short horizons / few rates"
    )
    parser.add_argument("--seed", type=int, default=2001, help="workload seed")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    output = _COMMANDS[args.command](args)
    try:
        print(output)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not our error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    sys.exit(main())
