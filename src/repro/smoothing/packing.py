"""Packing smoothed video data into equal-duration segments (DHB-c).

Once the video is transmitted at a constant work-ahead rate ``r``, each slot
of duration ``d`` carries exactly ``r * d`` bytes — usually *more* than one
slot's worth of playout.  The 137 playout segments of the paper's example
therefore pack into fewer transmission segments (129 in the paper), and
"so much data would be received ahead of time that the bandwidth peaks
occurring later in the video would be completely buffered".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..errors import SmoothingError
from ..video.model import Video
from .workahead import minimum_workahead_rate


@dataclass(frozen=True)
class PackedSegments:
    """The video's bytes packed into constant-size transmission segments.

    Attributes
    ----------
    video:
        The underlying video.
    rate:
        Constant stream rate ``r`` in bytes/second.
    slot_duration:
        Slot length ``d`` in seconds (also the startup delay).
    n_segments:
        Number of packed transmission segments.
    first_byte_playout_times:
        ``first_byte_playout_times[j]`` is the playout time (seconds from
        playout start) at which the first byte of packed segment ``j+1``
        is consumed.  Segment 1 always starts at 0.0.
    """

    video: Video
    rate: float
    slot_duration: float
    n_segments: int
    first_byte_playout_times: List[float]

    @property
    def bytes_per_segment(self) -> float:
        """Payload of one packed segment: ``rate * slot_duration`` bytes."""
        return self.rate * self.slot_duration


def pack_video(
    video: Video, slot_duration: float, rate: float = 0.0
) -> PackedSegments:
    """Pack ``video`` into equal-duration segments at a work-ahead rate.

    Parameters
    ----------
    video:
        The video to pack.
    slot_duration:
        Slot length ``d`` (= startup delay = maximum waiting time).
    rate:
        Stream rate in bytes/second.  0 (the default) selects the minimum
        feasible work-ahead rate — the paper's solution DHB-c.

    Raises
    ------
    SmoothingError
        If an explicit ``rate`` is below the minimum feasible rate.

    Examples
    --------
    A CBR video of 100 s with d = 10 s: the minimum work-ahead rate spreads
    the 100 bytes across the whole (D + d) = 110 s reception window, which
    is 11 chunks of 10/11 bytes each:

    >>> from ..video.model import CBRVideo
    >>> packed = pack_video(CBRVideo(duration=100.0, rate=1.0), 10.0)
    >>> packed.n_segments
    11
    >>> round(packed.rate, 6)
    0.909091
    """
    if slot_duration <= 0:
        raise SmoothingError(f"slot duration must be > 0, got {slot_duration}")
    minimum_rate = minimum_workahead_rate(video, startup_delay=slot_duration)
    if rate <= 0:
        rate = minimum_rate
    elif rate < minimum_rate * (1 - 1e-9):
        raise SmoothingError(
            f"rate {rate} below minimum feasible work-ahead rate {minimum_rate}"
        )
    bytes_per_segment = rate * slot_duration
    n_segments = int(math.ceil(video.total_bytes / bytes_per_segment - 1e-9))
    first_bytes = [j * bytes_per_segment for j in range(n_segments)]
    playout_times = [_playout_time(video, offset) for offset in first_bytes]
    return PackedSegments(
        video=video,
        rate=rate,
        slot_duration=slot_duration,
        n_segments=n_segments,
        first_byte_playout_times=playout_times,
    )


def _playout_time(video: Video, byte_offset: float) -> float:
    """Earliest playout time at which ``byte_offset`` cumulative bytes are needed."""
    inverse = getattr(video, "playout_time_for_bytes", None)
    if inverse is not None:
        return float(inverse(byte_offset))
    # Generic fallback: bisection on the cumulative curve.
    if byte_offset <= 0:
        return 0.0
    low, high = 0.0, video.duration
    for _ in range(64):
        mid = (low + high) / 2.0
        if video.cumulative_bytes(mid) < byte_offset:
            low = mid
        else:
            high = mid
    return high
