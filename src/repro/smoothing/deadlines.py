"""Per-segment deadlines and maximum transmission periods (DHB-d).

The last optimisation of Section 4: "as many video data are now transmitted
ahead of time, most segments will not need to be transmitted as frequently as
before".  Each packed segment ``S_j`` gets a **maximum period** ``T[j]`` — the
largest number of slots by which its transmission may trail the start of a
client's schedule while still arriving before its first byte is consumed.

Timeline conventions (matching :mod:`repro.core`): a client admitted after
slot ``i`` starts *receiving* at the beginning of slot ``i+1`` and starts
*watching* one slot later.  A segment transmitted during relative slot ``m``
(``m = 1`` being the first reception slot) is fully buffered at relative time
``m * d``; its first byte is consumed at relative time ``p_j + d``, where
``p_j`` is the playout time of that byte.  On-time delivery therefore needs
``m <= p_j / d + 1``, i.e.::

    T[j] = floor(p_j / d) + 1

For an unsmoothed CBR video ``p_j = (j-1) d`` and ``T[j] = j`` — the uniform
window of the base DHB protocol, as required.
"""

from __future__ import annotations

import math
from typing import List

from ..errors import SmoothingError
from .packing import PackedSegments

#: Tolerance for boundary-exact deadlines (a byte needed exactly at a slot
#: boundary may be delivered in the slot ending at that boundary).
_BOUNDARY_EPS = 1e-9


def chunk_deadline_slots(packed: PackedSegments) -> List[int]:
    """Latest relative slot in which each packed segment may be transmitted.

    Returns a list ``deadlines`` with ``deadlines[j-1] = T[j]`` for the
    1-based segment ``S_j``.  ``T[1] == 1`` always (the first segment feeds
    playout immediately after the one-slot startup delay).
    """
    d = packed.slot_duration
    deadlines: List[int] = []
    for playout_time in packed.first_byte_playout_times:
        slot = int(math.floor(playout_time / d + 1 + _BOUNDARY_EPS))
        deadlines.append(max(slot, 1))
    if deadlines and deadlines[0] != 1:
        raise SmoothingError(
            f"first segment deadline must be slot 1, got {deadlines[0]}"
        )
    for j in range(1, len(deadlines)):
        if deadlines[j] < deadlines[j - 1]:
            raise SmoothingError("deadline slots must be non-decreasing")
    return deadlines


def maximum_periods(packed: PackedSegments) -> List[int]:
    """Maximum transmission periods ``T[j]`` for the DHB-d scheduler.

    ``T[j]`` equals the deadline slot: a segment due by relative slot
    ``T[j]`` for every client must appear at least once in every window of
    ``T[j]`` consecutive slots, so its maximum period *is* its deadline.
    """
    return chunk_deadline_slots(packed)


def uniform_periods(n_segments: int) -> List[int]:
    """The base DHB periods ``T[j] = j`` (CBR, no smoothing).

    >>> uniform_periods(4)
    [1, 2, 3, 4]
    """
    if n_segments < 1:
        raise SmoothingError(f"need >= 1 segment, got {n_segments}")
    return list(range(1, n_segments + 1))


def delay_gained(packed: PackedSegments) -> List[int]:
    """Slots of slack DHB-d gains over the naive ``T[j] = j`` window.

    The paper reports "nearly all other segments could be delayed by one to
    eight slots"; this helper quantifies that per segment.
    """
    periods = maximum_periods(packed)
    return [t - (j + 1) for j, t in enumerate(periods)]
