"""Constant-rate work-ahead smoothing.

Solution DHB-c of the paper makes "continuous use of all that bandwidth so
that each one-minute segment would normally contain more than one minute of
video data" — i.e. the server transmits at a constant rate ``r`` from the
moment the client's reception starts, and playout begins one slot (``d``
seconds) later.  Delivery is on time iff the cumulative transmission curve
``r * t`` never falls below the cumulative consumption curve shifted by the
startup delay.

The minimum feasible constant rate is therefore::

    r_min = max over t in (0, D] of  C(t) / (t + w)

where ``C`` is cumulative consumption and ``w`` the startup delay (one slot
for DHB).  We evaluate the maximum at per-second playout boundaries, which is
exact for traces that are piecewise-constant per second (each second's
constraint is tightest at its end because ``C`` is concave-or-linear within
the second while the denominator grows linearly).
"""

from __future__ import annotations

import numpy as np

from ..errors import SmoothingError
from ..video.model import Video
from ..video.vbr import VBRVideo


def minimum_workahead_rate(video: Video, startup_delay: float) -> float:
    """Minimum constant transmission rate for on-time playout.

    Parameters
    ----------
    video:
        The video to smooth.
    startup_delay:
        Seconds between reception start and playout start (``d`` for DHB).

    Returns
    -------
    float
        The smallest rate ``r`` (bytes/second) with
        ``r * (t + startup_delay) >= C(t)`` for all playout times ``t``.

    Examples
    --------
    A CBR video needs slightly less than its consumption rate, because the
    startup delay buys slack:

    >>> from ..video.model import CBRVideo
    >>> r = minimum_workahead_rate(CBRVideo(duration=100.0, rate=1.0), 10.0)
    >>> round(r, 6)
    0.909091
    """
    if startup_delay < 0:
        raise SmoothingError(f"startup delay must be >= 0, got {startup_delay}")
    if isinstance(video, VBRVideo):
        cumulative = np.cumsum(np.asarray(video.bytes_per_second))
        times = np.arange(1, len(cumulative) + 1, dtype=float)
        rates = cumulative / (times + startup_delay)
        rate = float(rates.max())
    else:
        # Generic videos: sample the constraint at one-second boundaries plus
        # the exact end of the video.
        duration = video.duration
        times = list(np.arange(1.0, duration, 1.0)) + [duration]
        rate = max(video.cumulative_bytes(t) / (t + startup_delay) for t in times)
    if rate <= 0:
        raise SmoothingError("video consumes no data; nothing to smooth")
    return rate


def is_rate_feasible(video: Video, rate: float, startup_delay: float) -> bool:
    """Whether constant ``rate`` delivers every byte of ``video`` on time.

    >>> from ..video.model import CBRVideo
    >>> is_rate_feasible(CBRVideo(duration=100.0, rate=1.0), 1.0, 0.0)
    True
    >>> is_rate_feasible(CBRVideo(duration=100.0, rate=1.0), 0.5, 0.0)
    False
    """
    if rate <= 0:
        return False
    tolerance = 1e-9 * max(rate, 1.0)
    return bool(rate + tolerance >= minimum_workahead_rate(video, startup_delay))
