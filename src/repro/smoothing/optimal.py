"""Optimal (buffer-constrained, minimum-peak) smoothing — Salehi et al.

Section 4 attributes the work-ahead idea to "smoothing by work-ahead"
[Salehi, Zhang, Kurose & Towsley, SIGMETRICS 1996].  DHB-c only needs the
*constant-rate* special case (:mod:`repro.smoothing.workahead`), but the full
algorithm — the minimum-peak-rate piecewise-constant transmission plan that
respects a finite client buffer — is the natural extension the paper's
future-work section points at ("reduce or eliminate bandwidth peaks"), so we
implement it too.

The algorithm is the classic funnel walk: maintain the cone of cumulative-
transmission slopes that keep the line from the current anchor between the
underflow curve ``L`` (data must arrive before it is played) and the overflow
curve ``U`` (data must not overrun the client buffer).  When the cone closes,
commit a linear piece at the binding slope, ending at the point where that
constraint pinched, and restart the cone there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import SmoothingError
from ..video.vbr import VBRVideo


@dataclass(frozen=True)
class SmoothingPiece:
    """One constant-rate piece of a smoothed transmission plan.

    ``start``/``end`` are reception-timeline seconds; ``rate`` is bytes/s.
    """

    start: float
    end: float
    rate: float


@dataclass(frozen=True)
class SmoothingSchedule:
    """A piecewise-constant transmission plan.

    Attributes
    ----------
    pieces:
        The constant-rate pieces, contiguous and in order.
    peak_rate:
        Largest piece rate (the quantity optimal smoothing minimises).
    """

    pieces: List[SmoothingPiece]
    peak_rate: float

    @property
    def total_bytes(self) -> float:
        """Bytes transmitted by the whole plan."""
        return sum((p.end - p.start) * p.rate for p in self.pieces)

    def cumulative_at(self, time: float) -> float:
        """Cumulative bytes transmitted by reception ``time``."""
        total = 0.0
        for piece in self.pieces:
            if time <= piece.start:
                break
            total += (min(time, piece.end) - piece.start) * piece.rate
        return total


def optimal_smoothing_schedule(
    video: VBRVideo, buffer_bytes: float, startup_delay: float
) -> SmoothingSchedule:
    """Minimum-peak-rate transmission plan under a client buffer bound.

    Parameters
    ----------
    video:
        The VBR video to smooth.
    buffer_bytes:
        Client set-top-box buffer capacity in bytes.
    startup_delay:
        Seconds between reception start and playout start.

    Returns
    -------
    SmoothingSchedule
        A feasible plan whose cumulative curve stays within
        ``[L(t), U(t)] = [C(t - delay), C(t - delay) + buffer]`` and whose
        peak rate is minimal among all such plans at one-second granularity.

    Raises
    ------
    SmoothingError
        If the buffer cannot absorb the largest one-second burst (no
        per-second-granularity plan exists then).
    """
    if buffer_bytes <= 0:
        raise SmoothingError(f"buffer must be > 0 bytes, got {buffer_bytes}")
    if startup_delay < 0:
        raise SmoothingError(f"startup delay must be >= 0, got {startup_delay}")

    per_second = np.asarray(video.bytes_per_second)
    if buffer_bytes < float(per_second.max()) * (1.0 - 1e-12):
        raise SmoothingError(
            "buffer smaller than the largest one-second burst; "
            "no per-second-granularity plan can avoid underflow"
        )
    consumption = np.concatenate(([0.0], np.cumsum(per_second)))
    duration = len(per_second)
    horizon = duration + startup_delay

    # Envelopes sampled at 1-second reception-time boundaries.  The lower
    # envelope at reception time t is the data played out by t; the upper is
    # lower + buffer, capped at the total size (no point sending more).  Both
    # meet at (horizon, total) so the plan delivers exactly the video.
    times = np.arange(0.0, np.floor(horizon) + 1.0)
    if times[-1] < horizon - 1e-12:
        times = np.append(times, horizon)
    total = float(consumption[-1])
    lower = np.array([video.cumulative_bytes(t - startup_delay) for t in times])
    upper = np.minimum(lower + buffer_bytes, total)
    lower[-1] = total
    upper[-1] = total

    pieces: List[SmoothingPiece] = []
    last = len(times) - 1
    anchor_i, anchor_y = 0, 0.0
    while anchor_i < last:
        cone_min, cone_max = -np.inf, np.inf
        min_pinch = (anchor_i, anchor_y)  # where the underflow bound last bit
        max_pinch = (anchor_i, anchor_y)  # where the overflow bound last bit
        i = anchor_i + 1
        committed = False
        while i <= last:
            dt = times[i] - times[anchor_i]
            need = (lower[i] - anchor_y) / dt
            allow = (upper[i] - anchor_y) / dt
            if need > cone_max:
                # Underflow forces a slope above what overflow permits:
                # commit the flattest legal piece up to the overflow pinch.
                pieces.append(
                    SmoothingPiece(times[anchor_i], times[max_pinch[0]], cone_max)
                )
                anchor_i, anchor_y = max_pinch
                committed = True
                break
            if allow < cone_min:
                # Overflow forces a slope below what underflow requires:
                # commit the steepest legal piece up to the underflow pinch.
                pieces.append(
                    SmoothingPiece(times[anchor_i], times[min_pinch[0]], cone_min)
                )
                anchor_i, anchor_y = min_pinch
                committed = True
                break
            if need >= cone_min:
                cone_min = need
                min_pinch = (i, lower[i])
            if allow <= cone_max:
                cone_max = allow
                max_pinch = (i, upper[i])
            i += 1
        if not committed:
            # Reached the horizon inside the cone: a single straight piece
            # from the anchor to (horizon, total) is feasible everywhere.
            final_slope = (total - anchor_y) / (times[last] - times[anchor_i])
            pieces.append(SmoothingPiece(times[anchor_i], times[last], final_slope))
            break

    peak = max(piece.rate for piece in pieces)
    return SmoothingSchedule(pieces=pieces, peak_rate=peak)
