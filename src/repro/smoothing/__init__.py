"""Bandwidth smoothing for compressed video (Section 4 of the paper).

The paper derives four DHB configurations for a VBR video:

* **DHB-a** — streams at the video's 1-second peak rate (no smoothing);
* **DHB-b** — deterministic waiting time: every segment fully downloaded one
  slot ahead, streams at the maximum per-segment average rate
  (:mod:`repro.video.segmentation`);
* **DHB-c** — *smoothing by work-ahead* (Salehi et al.): continuous use of a
  constant stream rate packs the video into fewer segments
  (:mod:`repro.smoothing.workahead`, :mod:`repro.smoothing.packing`);
* **DHB-d** — additionally relaxes each segment's minimum transmission
  frequency to the latest slot its data is actually needed
  (:mod:`repro.smoothing.deadlines`).

:mod:`repro.smoothing.optimal` adds the classic optimal (minimum-peak,
buffer-constrained) smoothing algorithm as an extension.
"""

from .deadlines import chunk_deadline_slots, maximum_periods
from .optimal import optimal_smoothing_schedule
from .packing import PackedSegments, pack_video
from .workahead import minimum_workahead_rate

__all__ = [
    "PackedSegments",
    "chunk_deadline_slots",
    "maximum_periods",
    "minimum_workahead_rate",
    "optimal_smoothing_schedule",
    "pack_video",
]
