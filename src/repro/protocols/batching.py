"""Request batching (Dan, Sitaram & Shahabuddin 1994-96).

The earliest bandwidth-reduction idea the related-work section cites: hold
arriving requests for a batching window and serve every member of the batch
with a single multicast stream.  Cheap, but the waiting time is the window
itself — the paper's framing is that batching-era protocols were superseded
once set-top boxes gained buffers.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError
from ..sim.continuous import BusyInterval, ReactiveModel
from ..units import TWO_HOURS


class BatchingProtocol(ReactiveModel):
    """Window batching: one complete stream per batch.

    Parameters
    ----------
    duration:
        Video length ``D`` in seconds.
    window:
        Batching window in seconds; a batch opens at its first request and
        is served (one multicast stream) ``window`` seconds later.

    Examples
    --------
    >>> b = BatchingProtocol(duration=100.0, window=10.0)
    >>> b.handle_request(5.0)     # opens a batch, served at t=15
    [(15.0, 115.0)]
    >>> b.handle_request(12.0)    # joins the same batch: free
    []
    >>> b.startup_delay(12.0)
    3.0
    """

    def __init__(self, duration: float = TWO_HOURS, window: float = 300.0):
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        if window < 0:
            raise ConfigurationError(f"window must be >= 0, got {window}")
        self.duration = float(duration)
        self.window = float(window)
        self._batch_serve_time: Optional[float] = None
        self._last_wait = 0.0
        self.batches_served = 0
        self.requests_served = 0

    def handle_request(self, time: float) -> List[BusyInterval]:
        """Open a batch or join the pending one."""
        self.requests_served += 1
        if self._batch_serve_time is None or time >= self._batch_serve_time:
            self._batch_serve_time = time + self.window
            self.batches_served += 1
            self._last_wait = self.window
            return [(self._batch_serve_time, self._batch_serve_time + self.duration)]
        self._last_wait = self._batch_serve_time - time
        return []

    def startup_delay(self, time: float) -> float:
        """Wait until the batch's multicast begins."""
        return self._last_wait
