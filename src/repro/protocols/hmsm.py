"""Hierarchical multicast stream merging (Eager & Vernon 1999-2001).

The strongest reactive rival the paper cites: clients may listen to **two**
streams at once, so a later client can buffer an earlier client's stream
while watching its own, *catch up*, and merge — and merged groups keep
merging hierarchically toward the group's root stream.  "Its bandwidth
requirements are indeed very close to the theoretical minimum for a reactive
protocol that does not require the STB to receive more than two streams at
the same time."

Model (closest-target policy, conservative re-targeting)
--------------------------------------------------------
* The first request of a group starts a **root** stream carrying the whole
  video in real time.
* A request at time ``t_s`` starts its own stream and simultaneously listens
  to the *most recent* still-active earlier stream (its target, started
  ``t_r``).  Listening to both, it has buffered the target's transmissions
  of positions ``>= t_s - t_r``; once its own stream has covered the prefix
  ``[0, t_s - t_r)`` — after ``gap = t_s - t_r`` seconds — it can drop its
  own stream and ride the target: a **merge**.
* When a target merges away first, its listeners re-target the target's own
  target.  Because a listener could not have been buffering the *new* target
  before (the two-stream limit was spent), it conservatively extends its own
  stream until it has covered everything not obtainable from the new target:
  its effective gap becomes ``now - t_newtarget``.  This is an upper bound
  on the published policy's cost (which recovers some buffered data), and it
  keeps every delivery provably on time with at most two receptions.
* Streams never outlive the video; a root expires after ``D`` and the next
  request starts a fresh group.

The implementation advances lazily: each request first settles every merge
and expiry due before its arrival (in chronological cascade order), then
joins the surviving structure; closed streams are emitted as busy intervals.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError
from ..sim.continuous import BusyInterval, ReactiveModel
from ..units import TWO_HOURS


class _Stream:
    """One server stream of a merging group."""

    __slots__ = ("start", "target", "merge_time", "alive", "listeners")

    def __init__(self, start: float, target: Optional["_Stream"]):
        self.start = start
        self.target = target
        self.merge_time: Optional[float] = None
        self.alive = True
        self.listeners: List["_Stream"] = []


class HMSMProtocol(ReactiveModel):
    """Hierarchical multicast stream merging, closest-target policy.

    Parameters
    ----------
    duration:
        Video length ``D`` in seconds.

    Examples
    --------
    >>> hmsm = HMSMProtocol(duration=100.0)
    >>> hmsm.handle_request(0.0)    # root stream
    []
    >>> hmsm.handle_request(10.0)   # merges into the root after 10 s
    []
    >>> sorted(hmsm.finish(1000.0))
    [(0.0, 100.0), (10.0, 20.0)]
    """

    def __init__(self, duration: float = TWO_HOURS):
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.duration = float(duration)
        self._root: Optional[_Stream] = None
        self._streams: List[_Stream] = []  # active, in start order
        self._closed: List[BusyInterval] = []
        self.requests_served = 0
        self.merges = 0

    def _advance(self, now: float) -> None:
        """Process merges and expiry due strictly before/at ``now``."""
        while True:
            due: Optional[_Stream] = None
            due_time = now
            for stream in self._streams:
                end = self._end_time(stream)
                if end is not None and end <= due_time:
                    due, due_time = stream, end
            if due is None:
                return
            self._close(due, due_time)

    def _end_time(self, stream: _Stream) -> Optional[float]:
        if stream.target is None:
            return stream.start + self.duration  # root expiry
        return stream.merge_time

    def _close(self, stream: _Stream, when: float) -> None:
        """End ``stream`` (merge or expiry) and cascade re-targeting."""
        stream.alive = False
        self._streams.remove(stream)
        self._closed.append((stream.start, when))
        if stream.target is not None:
            self.merges += 1
        for listener in list(stream.listeners):
            if not listener.alive:
                continue
            new_target = stream.target
            if new_target is None or not new_target.alive:
                # The whole chain above is gone: the listener becomes the
                # group's root-like survivor and must play out on its own.
                listener.target = None
                listener.merge_time = None
            else:
                listener.target = new_target
                new_target.listeners.append(listener)
                # Conservative restart: the listener's own stream must cover
                # [0, when - t_newtarget) before it can ride the new target.
                effective_gap = when - new_target.start
                listener.merge_time = min(
                    listener.start + effective_gap,
                    listener.start + self.duration,
                )
        stream.listeners.clear()
        if stream is self._root:
            self._root = None

    def handle_request(self, time: float) -> List[BusyInterval]:
        """Admit a request; completed stream intervals are emitted lazily."""
        self._advance(time)
        self.requests_served += 1
        target = self._streams[-1] if self._streams else None
        stream = _Stream(start=time, target=target)
        if target is None:
            self._root = stream
        else:
            target.listeners.append(stream)
            gap = time - target.start
            stream.merge_time = min(time + gap, time + self.duration)
        self._streams.append(stream)
        flushed = self._closed
        self._closed = []
        return flushed

    def finish(self, horizon: float) -> List[BusyInterval]:
        """Flush every remaining stream, clipping still-open ones."""
        self._advance(horizon)
        leftovers = [
            (stream.start, min(self._end_or_horizon(stream, horizon), horizon))
            for stream in self._streams
        ]
        flushed = self._closed + leftovers
        self._closed = []
        return flushed

    def _end_or_horizon(self, stream: _Stream, horizon: float) -> float:
        end = self._end_time(stream)
        return end if end is not None else horizon

    def startup_delay(self, time: float) -> float:
        """Merging protocols give instant access."""
        return 0.0
