"""Stream tapping with unlimited extra tapping (Carter & Long 1997).

The purely reactive baseline of Figure 7.  Clients have a set-top-box buffer
that "allows them to tap into streams of data on the VOD server originally
created for other clients, and then store the data until they are needed";
the figure "assumed ... an unlimited buffer size for stream tapping", and the
protocol grants instant (zero-delay) access.

Model
-----
Requests form *groups* anchored by a **complete stream** that transmits the
whole video ``[0, D)`` in real time from the group's first arrival ``t0``.

A request arriving ``Δ = t - t0`` later taps the complete stream for the
video suffix ``[Δ, D)`` (the part still to come) and must obtain the prefix
``[0, Δ)`` otherwise:

* **full tap** — its own server stream of length ``Δ``;
* **extra tapping** (unlimited) — it may additionally tap *any* earlier
  group member's partial stream.  Member ``j`` (arrival ``t_j``) transmits
  each of its own video pieces just-in-time (position ``x`` at wall time
  ``t_j + x``), so the newcomer can capture the portion of ``j``'s pieces at
  positions ``>= t - t_j``.  The newcomer's own stream then carries only the
  *uncovered gaps* of ``[0, Δ)`` — again just-in-time, which both meets every
  playout deadline and maximises what later clients can tap in turn.

When ``Δ`` exceeds a restart threshold the server starts a fresh complete
stream instead (Carter & Long's stream-restart option); we use the window
that is cost-optimal for Poisson arrivals
(:func:`repro.analysis.theory.optimal_patching_window`), either from a
configured expected rate or from an online interarrival estimate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis.theory import optimal_patching_window
from ..errors import ConfigurationError
from ..sim.continuous import BusyInterval, ReactiveModel
from ..units import HOUR, TWO_HOURS
from .intervals import Interval, subtract


class StreamTappingProtocol(ReactiveModel):
    """Stream tapping with optional unlimited extra tapping.

    Parameters
    ----------
    duration:
        Video length ``D`` in seconds.
    expected_rate_per_hour:
        Poisson rate used to fix the complete-stream restart window.  When
        omitted the protocol estimates the rate online (exponential moving
        average over interarrival gaps).
    extra_tapping:
        ``True`` (the paper's configuration) allows tapping other clients'
        partial streams; ``False`` degrades to plain full taps.
    restart_window:
        Explicit restart threshold in seconds, overriding the optimal
        window.

    Examples
    --------
    >>> st = StreamTappingProtocol(duration=100.0, expected_rate_per_hour=360.0)
    >>> st.handle_request(0.0)    # first request: a complete stream
    [(0.0, 100.0)]
    >>> st.handle_request(4.0)    # 4 s later: a 4-second full tap
    [(4.0, 8.0)]
    >>> st.handle_request(6.0)    # taps the previous client too: 2 x 2 s
    [(6.0, 8.0), (10.0, 12.0)]
    """

    def __init__(
        self,
        duration: float = TWO_HOURS,
        expected_rate_per_hour: Optional[float] = None,
        extra_tapping: bool = True,
        restart_window: Optional[float] = None,
    ):
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.duration = float(duration)
        self.extra_tapping = extra_tapping
        self._fixed_window = restart_window
        self._configured_rate = (
            expected_rate_per_hour / HOUR if expected_rate_per_hour else None
        )
        self._estimated_gap: Optional[float] = None
        self._last_arrival: Optional[float] = None
        # Group state: complete-stream start + members' own transmissions.
        self._group_start: Optional[float] = None
        self._members: List[Tuple[float, List[Interval]]] = []
        self.complete_streams = 0
        self.requests_served = 0

    def restart_window(self) -> float:
        """Current complete-stream restart threshold in seconds."""
        if self._fixed_window is not None:
            return self._fixed_window
        rate = self._configured_rate
        if rate is None:
            if self._estimated_gap is None or self._estimated_gap <= 0:
                return self.duration
            rate = 1.0 / self._estimated_gap
        return optimal_patching_window(rate, self.duration)

    def _observe_gap(self, time: float) -> None:
        if self._last_arrival is not None:
            gap = time - self._last_arrival
            if self._estimated_gap is None:
                self._estimated_gap = gap
            else:  # EMA keeps the estimate adaptive to demand swings.
                self._estimated_gap = 0.9 * self._estimated_gap + 0.1 * gap
        self._last_arrival = time

    def _start_group(self, time: float) -> List[BusyInterval]:
        self._group_start = time
        self._members = []
        self.complete_streams += 1
        return [(time, time + self.duration)]

    def handle_request(self, time: float) -> List[BusyInterval]:
        """Serve one request; returns the new server streams it costs."""
        self._observe_gap(time)
        self.requests_served += 1
        if self._group_start is None or time >= self._group_start + self.duration:
            return self._start_group(time)
        delta = time - self._group_start
        if delta > self.restart_window():
            return self._start_group(time)
        gaps = self._uncovered_prefix(time, delta)
        self._members.append((time, gaps))
        # Each gap piece [a, b) of video is transmitted just-in-time,
        # i.e. during wall time [time + a, time + b).
        return [(time + a, time + b) for a, b in gaps]

    def _uncovered_prefix(self, time: float, delta: float) -> List[Interval]:
        """Video in ``[0, delta)`` not obtainable from existing streams."""
        if not self.extra_tapping or not self._members:
            return [(0.0, delta)] if delta > 0 else []
        covers: List[Interval] = []
        for member_arrival, pieces in self._members:
            earliest_position = time - member_arrival
            for piece_start, piece_end in pieces:
                start = max(piece_start, earliest_position)
                if start < piece_end:
                    covers.append((start, piece_end))
        return subtract((0.0, delta), covers)

    def startup_delay(self, time: float) -> float:
        """Stream tapping gives instant access."""
        return 0.0
