"""Every distribution protocol the paper evaluates against or builds upon.

Fixed (proactive) broadcasting schedules:

* :mod:`repro.protocols.fb` — Fast Broadcasting (Juhn & Tseng).
* :mod:`repro.protocols.npb` — New Pagoda Broadcasting (Pâris).
* :mod:`repro.protocols.sb` — Skyscraper Broadcasting (Hua & Sheu).
* :mod:`repro.protocols.harmonic` — Harmonic broadcasting (extension).

Dynamic slotted protocols:

* :mod:`repro.protocols.ud` — the Universal Distribution protocol
  (dynamic Fast Broadcasting).
* :mod:`repro.protocols.dnpb` — dynamic NPB, the design Section 3 rejects.

Reactive (continuous-time) protocols:

* :mod:`repro.protocols.stream_tapping` — Carter & Long stream tapping with
  unlimited extra tapping.
* :mod:`repro.protocols.patching` — greedy/grace patching (Hua, Cai & Sheu).
* :mod:`repro.protocols.batching` — request batching (Dan et al.).
* :mod:`repro.protocols.catching` — selective catching (Gao et al.).
* :mod:`repro.protocols.hmsm` — hierarchical multicast stream merging
  (Eager & Vernon).
* :mod:`repro.protocols.dsb` — dynamic skyscraper broadcasting
  (Eager & Vernon).
* :mod:`repro.protocols.staggered` — staggered broadcasting (the primordial
  near-VOD baseline).

:mod:`repro.protocols.registry` maps protocol names to factories for the CLI
and the sweep harness.
"""

from .base import StaticBroadcastProtocol, StaticMap, verify_static_map
from .batching import BatchingProtocol
from .catching import SelectiveCatchingProtocol
from .dnpb import DynamicPagodaProtocol
from .dsb import DynamicSkyscraperProtocol
from .fb import FastBroadcasting, fb_segments_for_streams, fb_streams_for_segments
from .harmonic import HarmonicBroadcasting, PolyharmonicBroadcasting
from .hmsm import HMSMProtocol
from .npb import NewPagodaBroadcasting, pagoda_capacity, pagoda_streams_for_segments
from .patching import PatchingProtocol, optimal_patching_window
from .sb import SkyscraperBroadcasting, skyscraper_widths
from .staggered import StaggeredBroadcasting
from .stream_tapping import StreamTappingProtocol
from .ud import UniversalDistributionProtocol

__all__ = [
    "BatchingProtocol",
    "DynamicPagodaProtocol",
    "DynamicSkyscraperProtocol",
    "FastBroadcasting",
    "HMSMProtocol",
    "HarmonicBroadcasting",
    "NewPagodaBroadcasting",
    "PatchingProtocol",
    "PolyharmonicBroadcasting",
    "SelectiveCatchingProtocol",
    "SkyscraperBroadcasting",
    "StaggeredBroadcasting",
    "StaticBroadcastProtocol",
    "StaticMap",
    "StreamTappingProtocol",
    "UniversalDistributionProtocol",
    "fb_segments_for_streams",
    "fb_streams_for_segments",
    "optimal_patching_window",
    "pagoda_capacity",
    "pagoda_streams_for_segments",
    "skyscraper_widths",
    "verify_static_map",
]
