"""Patching (Hua, Cai & Sheu 1998) — threshold ("grace") patching.

Patching is the simplest stream-sharing reactive protocol: a request
arriving ``Δ`` after the group's complete stream taps its remainder and
receives the missed prefix through a dedicated *patch* stream of length
``Δ``.  Unlike stream tapping, patches are never tapped in turn.  A new
complete stream is started whenever ``Δ`` exceeds the patching window; the
window that minimises the expected cost rate under Poisson arrivals is
``w* = (sqrt(1 + 2λD) - 1) / λ``
(:func:`repro.analysis.theory.optimal_patching_window`).

Figure 7 labels its reactive curve "Stream Tapping/Patching" — the two
protocols are near-indistinguishable at that plot's scale, which this
reproduction confirms (see the Figure 7 bench).
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.theory import optimal_patching_window
from ..errors import ConfigurationError
from ..sim.continuous import BusyInterval, ReactiveModel
from ..units import HOUR, TWO_HOURS


#: Re-exported for convenience alongside the protocol class.
__all__ = ["PatchingProtocol", "optimal_patching_window"]


class PatchingProtocol(ReactiveModel):
    """Threshold patching with an optimal or explicit window.

    Parameters
    ----------
    duration:
        Video length ``D`` in seconds.
    expected_rate_per_hour:
        Poisson rate used to pick the optimal window (omit to supply
        ``window`` directly).
    window:
        Explicit patching window in seconds.

    Examples
    --------
    >>> p = PatchingProtocol(duration=100.0, window=30.0)
    >>> p.handle_request(0.0)
    [(0.0, 100.0)]
    >>> p.handle_request(10.0)
    [(10.0, 20.0)]
    >>> p.handle_request(50.0)   # beyond the window: fresh complete stream
    [(50.0, 150.0)]
    """

    def __init__(
        self,
        duration: float = TWO_HOURS,
        expected_rate_per_hour: Optional[float] = None,
        window: Optional[float] = None,
    ):
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        if window is None:
            if expected_rate_per_hour is None:
                raise ConfigurationError(
                    "give expected_rate_per_hour or an explicit window"
                )
            window = optimal_patching_window(
                expected_rate_per_hour / HOUR, duration
            )
        if window < 0:
            raise ConfigurationError(f"window must be >= 0, got {window}")
        self.duration = float(duration)
        self.window = float(window)
        self._group_start: Optional[float] = None
        self.complete_streams = 0
        self.requests_served = 0

    def handle_request(self, time: float) -> List[BusyInterval]:
        """Serve one request: a patch, or a fresh complete stream."""
        self.requests_served += 1
        if (
            self._group_start is None
            or time >= self._group_start + self.duration
            or time - self._group_start > self.window
        ):
            self._group_start = time
            self.complete_streams += 1
            return [(time, time + self.duration)]
        delta = time - self._group_start
        return [(time, time + delta)] if delta > 0 else []

    def startup_delay(self, time: float) -> float:
        """Patching gives instant access."""
        return 0.0
