"""Staggered broadcasting — the primordial proactive baseline.

Before segment-based protocols, "near video-on-demand" simply looped the
whole video on ``C`` channels, offset ``D / C`` apart (the scheme selective
catching's dedicated channels inherit).  It needs neither set-top-box
buffering nor multi-stream reception, at the price of a ``D / C`` maximum
wait — the baseline every broadcasting protocol in the paper improves on.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim.slotted import SlottedModel


class StaggeredBroadcasting(SlottedModel):
    """``n_channels`` whole-video loops, offset evenly.

    The slotted interface treats one video length as ``n_channels`` slots of
    duration ``D / n_channels`` — each slot boundary starts one loop.

    Parameters
    ----------
    n_channels:
        Dedicated channels ``C``.
    duration:
        Video length ``D`` in seconds.

    Examples
    --------
    >>> stag = StaggeredBroadcasting(n_channels=4, duration=7200.0)
    >>> stag.max_wait
    1800.0
    >>> stag.slot_load(123)
    4
    """

    def __init__(self, n_channels: int, duration: float):
        if n_channels < 1:
            raise ConfigurationError(f"need >= 1 channel, got {n_channels}")
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.n_channels = int(n_channels)
        self.duration = float(duration)
        self.requests_admitted = 0

    @property
    def slot_duration(self) -> float:
        """Offset between consecutive loop starts."""
        return self.duration / self.n_channels

    @property
    def max_wait(self) -> float:
        """Worst-case wait: one full offset."""
        return self.slot_duration

    @property
    def mean_wait(self) -> float:
        """Expected wait under uniform arrivals."""
        return self.slot_duration / 2.0

    def handle_request(self, slot: int) -> None:
        """The fixed loops serve everyone; nothing to schedule."""
        self.requests_admitted += 1

    def slot_load(self, slot: int) -> int:
        """All channels are always busy."""
        return self.n_channels
