"""On-demand transmission over a fixed broadcast map.

The Universal Distribution protocol and the dynamic NPB variant of Section 3
share one idea: keep a fixed protocol's segment-to-stream *timing*, but
transmit an occurrence only when at least one admitted client will consume
it.  "Segments are transmitted only on demand, which saves a considerable
amount of bandwidth when the request arrival rate remains below 100 requests
per hour.  Above 200 requests per hour, all channels become saturated and
the UD reverts to a conventional FB protocol."

:class:`OnDemandMapProtocol` implements the shared machinery: a client
arriving during slot ``i`` consumes, for each segment, the *first* map
occurrence at or after slot ``i + 1`` (its set-top box listens to all
streams); the server marks exactly those occurrences for transmission.
Because occurrences of a segment are evenly spaced with a period no larger
than the segment's deadline, the first occurrence is always on time, and
marking is idempotent — overlapping requests share marked occurrences, which
is where all the bandwidth savings come from.

Marked occurrences are stored in a
:class:`~repro.core.schedule.SlotSchedule` — the same array-backed slot
store the dynamic protocols use — which makes per-slot load reads O(1) and
lets admission run vectorised: one numpy expression computes every
segment's next occurrence, one compare against the schedule's
future-instance index finds the (few, at saturation) occurrences not yet
marked.  Since admissions arrive in non-decreasing slot order within a
simulation, a segment's marked occurrences are non-decreasing too, so
"already marked" is exactly "equals the segment's latest scheduled
instance".
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from ..core.schedule import SlotSchedule
from ..errors import ConfigurationError
from ..sim.slotted import SlottedModel
from .base import StaticMap


class OnDemandMapProtocol(SlottedModel):
    """Transmit a fixed map's occurrences only when a client needs them.

    Parameters
    ----------
    static_map:
        The underlying fixed schedule (FB for UD, pagoda for dynamic NPB).
    """

    def __init__(self, static_map: StaticMap):
        self.map = static_map
        # Per segment: (period, first-occurrence offset) within the map.
        self._timing: List[Tuple[int, int]] = []
        for segment in range(1, static_map.n_segments + 1):
            period = static_map.period_of(segment)
            offset = self._first_offset(static_map, segment, period)
            self._timing.append((period, offset))
        self._periods_np = np.array([p for p, _ in self._timing], dtype=np.int64)
        self._offsets_np = np.array([o for _, o in self._timing], dtype=np.int64)
        self._schedule = SlotSchedule(static_map.n_segments)
        self.requests_admitted = 0

    @staticmethod
    def _first_offset(static_map: StaticMap, segment: int, period: int) -> int:
        for slot in range(period):
            if segment in static_map.segments_in_slot(slot):
                return slot
        raise ConfigurationError(f"segment S{segment} missing from map")

    @property
    def n_segments(self) -> int:
        """Number of video segments."""
        return self.map.n_segments

    @property
    def n_streams(self) -> int:
        """Streams of the underlying map (the saturation bandwidth)."""
        return self.map.n_streams

    @property
    def _marked(self) -> Dict[int, Set[int]]:
        """Marked occurrences as {slot: segments} (audit/compatibility view).

        Derived from the backing schedule on access; tests use it to check
        marks against the underlying fixed map.
        """
        return {
            slot: set(self._schedule.segments_in(slot))
            for slot in self._schedule.occupied_slots()
        }

    def next_occurrence(self, segment: int, after_slot: int) -> int:
        """First slot ``>= after_slot`` in which ``segment`` is broadcast."""
        period, offset = self._timing[segment - 1]
        if after_slot <= offset:
            return offset
        return offset + -(-(after_slot - offset) // period) * period

    def handle_request(self, slot: int) -> None:
        """Mark, for each segment, its first occurrence after ``slot``.

        Vectorised: occurrences for all segments in one expression, then
        only the not-yet-marked ones (``occurrence != latest scheduled``)
        touch the store.  Marking is idempotent because occurrences are
        non-decreasing across admissions.
        """
        self.handle_batch(slot, 1)

    def handle_batch(self, slot: int, count: int) -> None:
        """Admit ``count`` same-slot requests with one marking pass.

        Every request arriving during ``slot`` consumes exactly the same
        occurrences (the first of each segment after ``slot``), and marking
        is idempotent, so the batch reduces to one vectorised pass plus
        O(1) bookkeeping — observably identical to ``count`` repeated
        :meth:`handle_request` calls.
        """
        if count <= 0:
            return
        schedule = self._schedule
        after = slot + 1
        delta = after - self._offsets_np
        periods = self._periods_np
        steps = -(delta // -periods)  # ceil-div; <= 0 when after <= offset
        occurrences = self._offsets_np + np.maximum(steps, 0) * periods
        fresh = (occurrences != schedule.next_transmissions).nonzero()[0]
        if fresh.size:
            add = schedule.add
            targets = occurrences[fresh].tolist()
            for index, occurrence in zip(fresh.tolist(), targets):
                add(occurrence, index + 1)
        self.requests_admitted += count
        if self.metrics is not None:
            self.metrics.counter("protocol.requests").inc(count)
            self.metrics.counter("protocol.instances_scheduled").inc(int(fresh.size))

    def slot_load(self, slot: int) -> int:
        """Occurrences actually transmitted during ``slot``."""
        return self._schedule.load(slot)

    def slot_instances(self, slot: int) -> List[int]:
        """Segment numbers marked for transmission in ``slot``."""
        return self._schedule.segments_in(slot)

    def release_before(self, slot: int) -> None:
        """Drop bookkeeping for slots ``< slot``."""
        self._schedule.release_before(slot)
