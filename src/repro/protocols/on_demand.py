"""On-demand transmission over a fixed broadcast map.

The Universal Distribution protocol and the dynamic NPB variant of Section 3
share one idea: keep a fixed protocol's segment-to-stream *timing*, but
transmit an occurrence only when at least one admitted client will consume
it.  "Segments are transmitted only on demand, which saves a considerable
amount of bandwidth when the request arrival rate remains below 100 requests
per hour.  Above 200 requests per hour, all channels become saturated and
the UD reverts to a conventional FB protocol."

:class:`OnDemandMapProtocol` implements the shared machinery: a client
arriving during slot ``i`` consumes, for each segment, the *first* map
occurrence at or after slot ``i + 1`` (its set-top box listens to all
streams); the server marks exactly those occurrences for transmission.
Because occurrences of a segment are evenly spaced with a period no larger
than the segment's deadline, the first occurrence is always on time, and
marking is idempotent — overlapping requests share marked occurrences, which
is where all the bandwidth savings come from.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import ConfigurationError
from ..sim.slotted import SlottedModel
from .base import StaticMap


class OnDemandMapProtocol(SlottedModel):
    """Transmit a fixed map's occurrences only when a client needs them.

    Parameters
    ----------
    static_map:
        The underlying fixed schedule (FB for UD, pagoda for dynamic NPB).
    """

    def __init__(self, static_map: StaticMap):
        self.map = static_map
        # Per segment: (period, first-occurrence offset) within the map.
        self._timing: List[Tuple[int, int]] = []
        for segment in range(1, static_map.n_segments + 1):
            period = static_map.period_of(segment)
            offset = self._first_offset(static_map, segment, period)
            self._timing.append((period, offset))
        self._marked: Dict[int, Set[int]] = {}
        self._released_before = 0
        self.requests_admitted = 0

    @staticmethod
    def _first_offset(static_map: StaticMap, segment: int, period: int) -> int:
        for slot in range(period):
            if segment in static_map.segments_in_slot(slot):
                return slot
        raise ConfigurationError(f"segment S{segment} missing from map")

    @property
    def n_segments(self) -> int:
        """Number of video segments."""
        return self.map.n_segments

    @property
    def n_streams(self) -> int:
        """Streams of the underlying map (the saturation bandwidth)."""
        return self.map.n_streams

    def next_occurrence(self, segment: int, after_slot: int) -> int:
        """First slot ``>= after_slot`` in which ``segment`` is broadcast."""
        period, offset = self._timing[segment - 1]
        if after_slot <= offset:
            return offset
        return offset + -(-(after_slot - offset) // period) * period

    def handle_request(self, slot: int) -> None:
        """Mark, for each segment, its first occurrence after ``slot``."""
        for segment in range(1, self.map.n_segments + 1):
            occurrence = self.next_occurrence(segment, slot + 1)
            self._marked.setdefault(occurrence, set()).add(segment)
        self.requests_admitted += 1

    def slot_load(self, slot: int) -> int:
        """Occurrences actually transmitted during ``slot``."""
        return len(self._marked.get(slot, ()))

    def release_before(self, slot: int) -> None:
        """Drop bookkeeping for slots ``< slot``."""
        for old in range(self._released_before, slot):
            self._marked.pop(old, None)
        self._released_before = max(self._released_before, slot)
