"""Fast Broadcasting (Juhn & Tseng 1998) — the paper's Figure 1.

FB allocates ``k`` streams of the video consumption rate and partitions the
video into ``2**k - 1`` equal segments.  Stream ``s`` (1-based) cyclically
transmits segments ``2**(s-1) .. 2**s - 1``, so segment ``S_j`` appears once
every ``2**floor(log2 j)`` slots — always within its deadline window of ``j``
slots.  Clients watch stream 1 immediately (after the slot-boundary wait)
while their set-top box downloads from every other stream concurrently.

The map generaliser also supports an exact segment count ``n`` below the full
capacity: the last stream then cycles through fewer segments
(``2**(k-1) .. n``, period ``n - 2**(k-1) + 1 <= 2**(k-1)``), which keeps
every deadline and lets UD be configured with the paper's 99 segments.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..errors import ConfigurationError
from .base import StaticBroadcastProtocol, StaticMap


def fb_segments_for_streams(n_streams: int) -> int:
    """Segments ``2**k - 1`` that ``k`` FB streams can carry.

    >>> fb_segments_for_streams(3)
    7
    """
    if n_streams < 1:
        raise ConfigurationError(f"need >= 1 stream, got {n_streams}")
    return 2**n_streams - 1


def fb_streams_for_segments(n_segments: int) -> int:
    """Fewest FB streams whose capacity reaches ``n_segments``.

    >>> fb_streams_for_segments(99)
    7
    >>> fb_streams_for_segments(63)
    6
    """
    if n_segments < 1:
        raise ConfigurationError(f"need >= 1 segment, got {n_segments}")
    return int(math.ceil(math.log2(n_segments + 1)))


def fb_map(n_streams: int, n_segments: Optional[int] = None) -> StaticMap:
    """The FB segment-to-stream map for ``k`` streams.

    >>> print(fb_map(3).render(4))
    Stream 1  S1 S1 S1 S1
    Stream 2  S2 S3 S2 S3
    Stream 3  S4 S5 S6 S7
    """
    capacity = fb_segments_for_streams(n_streams)
    if n_segments is None:
        n_segments = capacity
    if not 2 ** (n_streams - 1) <= n_segments <= capacity:
        raise ConfigurationError(
            f"{n_streams} FB streams carry between {2 ** (n_streams - 1)} and "
            f"{capacity} segments, not {n_segments}"
        )
    patterns: List[List[int]] = []
    for stream in range(1, n_streams + 1):
        first = 2 ** (stream - 1)
        last = min(2 * first - 1, n_segments)
        patterns.append(list(range(first, last + 1)))
    return StaticMap(patterns=patterns, n_segments=n_segments)


class FastBroadcasting(StaticBroadcastProtocol):
    """The FB protocol as a fixed slotted broadcast schedule.

    Parameters
    ----------
    n_streams:
        Number of streams ``k``; defaults to the fewest covering
        ``n_segments``.
    n_segments:
        Segment count; defaults to the full capacity ``2**k - 1``.

    Examples
    --------
    >>> fb = FastBroadcasting(n_streams=3)
    >>> fb.n_segments, fb.n_streams
    (7, 3)
    >>> FastBroadcasting(n_segments=99).n_streams
    7
    """

    def __init__(
        self, n_streams: Optional[int] = None, n_segments: Optional[int] = None
    ):
        if n_streams is None and n_segments is None:
            raise ConfigurationError("give n_streams and/or n_segments")
        if n_streams is None:
            n_streams = fb_streams_for_segments(n_segments)
        super().__init__(fb_map(n_streams, n_segments))

    @classmethod
    def for_segments(cls, n_segments: int) -> "FastBroadcasting":
        """FB instance carrying exactly ``n_segments`` segments."""
        return cls(n_segments=n_segments)
