"""Harmonic broadcasting (Juhn & Tseng 1997) — analytical extension.

The paper's Section 4 mentions polyharmonic broadcasting with partial
preloading (PHB-PP) as one of only two prior protocols able to handle
compressed video, while noting it "requires a large number of small
bandwidth data streams".  Harmonic-family protocols broadcast segment
``S_j`` continuously on its own sub-stream of bandwidth ``b / j``, for a
total server bandwidth of ``b * H(n)`` — the information-theoretic floor the
pagoda family approximates with equal-bandwidth streams, and exactly the
plateau DHB reaches dynamically.

Because the sub-streams are fractional-bandwidth and continuous, harmonic
broadcasting does not fit the equal-bandwidth slotted interface; this module
models it analytically (bandwidth, waiting time, delivery feasibility) so
benches can plot it as a reference floor.
"""

from __future__ import annotations

from ..analysis.theory import harmonic_number
from ..errors import ConfigurationError


class HarmonicBroadcasting:
    """Classic harmonic broadcasting of ``n`` equal segments.

    Parameters
    ----------
    n_segments:
        Number of segments; the maximum waiting time is ``D / n``.
    duration:
        Video length ``D`` in seconds.

    Examples
    --------
    >>> hb = HarmonicBroadcasting(n_segments=99, duration=7200.0)
    >>> round(hb.total_bandwidth, 3)
    5.177
    >>> round(hb.max_wait, 1)
    72.7
    """

    def __init__(self, n_segments: int, duration: float):
        if n_segments < 1:
            raise ConfigurationError(f"need >= 1 segment, got {n_segments}")
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.n_segments = int(n_segments)
        self.duration = float(duration)

    @property
    def segment_duration(self) -> float:
        """Slot/segment length ``d = D / n`` in seconds."""
        return self.duration / self.n_segments

    @property
    def max_wait(self) -> float:
        """Maximum client waiting time (one segment duration).

        The classic protocol as published actually requires clients to delay
        one extra slot to avoid the well-known first-segment jitter flaw
        (fixed by cautious harmonic variants); we report the intended wait.
        """
        return self.segment_duration

    @property
    def total_bandwidth(self) -> float:
        """Server bandwidth in units of ``b``: the harmonic number ``H(n)``."""
        return harmonic_number(self.n_segments)

    def sub_stream_bandwidth(self, segment: int) -> float:
        """Bandwidth of ``S_j``'s continuous sub-stream, in units of ``b``."""
        if not 1 <= segment <= self.n_segments:
            raise ConfigurationError(
                f"segment {segment} outside 1..{self.n_segments}"
            )
        return 1.0 / segment

    def delivery_complete_by(self, segment: int) -> float:
        """Relative time at which ``S_j`` is fully received (worst case).

        Downloading ``S_j`` (d seconds of data) at rate ``b/j`` from the
        moment reception starts takes ``j * d`` seconds — exactly the
        segment's playout deadline.
        """
        if not 1 <= segment <= self.n_segments:
            raise ConfigurationError(
                f"segment {segment} outside 1..{self.n_segments}"
            )
        return segment * self.segment_duration


class PolyharmonicBroadcasting(HarmonicBroadcasting):
    """Polyharmonic broadcasting — the PHB of Section 4's PHB-PP.

    PHB(m) starts playout only ``m`` slots after reception begins, which
    lets segment ``S_j`` ride a sub-stream of bandwidth ``b / (m + j - 1)``:
    the total drops from ``H(n)`` to ``H(n + m - 1) - H(m - 1)``, trading
    startup delay for bandwidth.  ``m = 1`` is classic harmonic
    broadcasting.  (The *partial preloading* refinement pre-stores the first
    segments on the STB, removing the wait entirely; model it by dropping
    the first ``preloaded`` segments from the bandwidth sum.)

    Examples
    --------
    >>> phb = PolyharmonicBroadcasting(n_segments=99, duration=7200.0, m=4)
    >>> phb.total_bandwidth < HarmonicBroadcasting(99, 7200.0).total_bandwidth
    True
    >>> round(phb.max_wait, 1)
    290.9
    """

    def __init__(self, n_segments: int, duration: float, m: int = 1,
                 preloaded: int = 0):
        super().__init__(n_segments, duration)
        if m < 1:
            raise ConfigurationError(f"m must be >= 1, got {m}")
        if not 0 <= preloaded <= n_segments:
            raise ConfigurationError(
                f"preloaded must be in [0, {n_segments}], got {preloaded}"
            )
        self.m = int(m)
        self.preloaded = int(preloaded)

    @property
    def max_wait(self) -> float:
        """PHB(m) clients wait ``m`` slots (0 if the wait is preloaded away)."""
        if self.preloaded >= self.m:
            return 0.0
        return self.m * self.segment_duration

    @property
    def total_bandwidth(self) -> float:
        """Server bandwidth in units of ``b``.

        ``sum_{j>preloaded} 1 / (m + j - 1)``.
        """
        return sum(
            1.0 / (self.m + j - 1)
            for j in range(self.preloaded + 1, self.n_segments + 1)
        )

    def sub_stream_bandwidth(self, segment: int) -> float:
        """Bandwidth of ``S_j``'s sub-stream: ``1 / (m + j - 1)``; 0 if preloaded."""
        if not 1 <= segment <= self.n_segments:
            raise ConfigurationError(
                f"segment {segment} outside 1..{self.n_segments}"
            )
        if segment <= self.preloaded:
            return 0.0
        return 1.0 / (self.m + segment - 1)

    def delivery_complete_by(self, segment: int) -> float:
        """Worst-case full reception: ``(m + j - 1) * d <= (j-1+m) * d``.

        Playout of ``S_j`` begins at relative time ``(m + j - 1) * d``
        (a client waits ``m`` slots), so delivery is always on time.
        """
        if not 1 <= segment <= self.n_segments:
            raise ConfigurationError(
                f"segment {segment} outside 1..{self.n_segments}"
            )
        if segment <= self.preloaded:
            return 0.0
        return (self.m + segment - 1) * self.segment_duration
