"""Selective catching (Gao, Zhang & Towsley 1999).

"Selective catching combines both reactive and proactive approaches.  It
dedicates a certain number of channels for periodic broadcasts of videos
while using the other channels to allow incoming requests to catch up with
the current broadcast cycle.  As a result, its bandwidth requirements are
O(log(λL))."

Model: ``n_channels`` dedicated channels broadcast the whole video staggered
``D / n_channels`` seconds apart, forever.  A request arriving ``Δ`` after
the latest cycle start joins that cycle and receives the missed prefix
``[0, Δ)`` on a catching channel (a patch of length ``Δ <= D/C``), giving
zero-delay access.  With the channel count balanced against the arrival rate
(``C* = sqrt(λD/2)``) the total bandwidth grows as ``O(sqrt(λD))`` for the
pure-staggered layout we model — between patching and the broadcast
protocols, exactly where Figure 7's discussion places it.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..analysis.theory import optimal_catching_channels
from ..errors import ConfigurationError
from ..sim.continuous import BusyInterval, ReactiveModel
from ..units import HOUR, TWO_HOURS


class SelectiveCatchingProtocol(ReactiveModel):
    """Staggered broadcasts plus catch-up patches.

    Parameters
    ----------
    duration:
        Video length ``D`` in seconds.
    n_channels:
        Dedicated broadcast channels; defaults to the cost-optimal count for
        ``expected_rate_per_hour``.
    expected_rate_per_hour:
        Poisson rate used when ``n_channels`` is omitted.

    Examples
    --------
    >>> sc = SelectiveCatchingProtocol(duration=100.0, n_channels=2)
    >>> sc.cycle_gap
    50.0
    >>> sc.handle_request(60.0)[-1]   # catch-up patch for Delta = 10
    (60.0, 70.0)
    """

    def __init__(
        self,
        duration: float = TWO_HOURS,
        n_channels: Optional[int] = None,
        expected_rate_per_hour: Optional[float] = None,
    ):
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        if n_channels is None:
            if expected_rate_per_hour is None:
                raise ConfigurationError(
                    "give n_channels or expected_rate_per_hour"
                )
            n_channels = optimal_catching_channels(
                expected_rate_per_hour / HOUR, duration
            )
        if n_channels < 1:
            raise ConfigurationError(f"need >= 1 channel, got {n_channels}")
        self.duration = float(duration)
        self.n_channels = int(n_channels)
        self._next_cycle_start = 0.0
        self.requests_served = 0

    @property
    def cycle_gap(self) -> float:
        """Seconds between consecutive staggered broadcast starts."""
        return self.duration / self.n_channels

    def _emit_cycles_until(self, time: float) -> List[BusyInterval]:
        """Broadcast cycles whose start is due by ``time`` (lazy emission)."""
        cycles: List[BusyInterval] = []
        while self._next_cycle_start <= time:
            cycles.append(
                (self._next_cycle_start, self._next_cycle_start + self.duration)
            )
            self._next_cycle_start += self.cycle_gap
        return cycles

    def handle_request(self, time: float) -> List[BusyInterval]:
        """Join the current cycle; add a catch-up patch for the prefix."""
        self.requests_served += 1
        intervals = self._emit_cycles_until(time)
        latest_start = math.floor(time / self.cycle_gap) * self.cycle_gap
        delta = time - latest_start
        if delta > 0:
            intervals.append((time, time + delta))
        return intervals

    def startup_delay(self, time: float) -> float:
        """Catching gives instant access."""
        return 0.0

    def finish(self, horizon: float) -> List[BusyInterval]:
        """Flush broadcast cycles up to the horizon (idle periods included)."""
        return self._emit_cycles_until(horizon)
