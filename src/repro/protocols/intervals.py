"""Small interval-set arithmetic for the reactive protocols.

Stream tapping needs to answer "which parts of the video prefix ``[0, Δ)``
are *not* covered by any tappable transmission?".  Intervals are half-open
``[start, end)`` pairs of floats.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

Interval = Tuple[float, float]


def normalize(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort, drop empties, and merge overlapping/adjacent intervals.

    >>> normalize([(3.0, 5.0), (1.0, 2.0), (2.0, 3.5)])
    [(1.0, 5.0)]
    """
    cleaned = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Interval] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def subtract(base: Interval, covers: Iterable[Interval]) -> List[Interval]:
    """The parts of ``base`` not covered by ``covers``.

    >>> subtract((0.0, 10.0), [(2.0, 4.0), (6.0, 12.0)])
    [(0.0, 2.0), (4.0, 6.0)]
    """
    start, end = base
    if end <= start:
        return []
    gaps: List[Interval] = []
    cursor = start
    for cover_start, cover_end in normalize(covers):
        if cover_end <= cursor:
            continue
        if cover_start >= end:
            break
        if cover_start > cursor:
            gaps.append((cursor, min(cover_start, end)))
        cursor = max(cursor, cover_end)
        if cursor >= end:
            break
    if cursor < end:
        gaps.append((cursor, end))
    return gaps


def total_length(intervals: Iterable[Interval]) -> float:
    """Total measure of a normalised-or-not interval collection.

    >>> total_length([(0.0, 1.0), (0.5, 2.0)])
    2.0
    """
    return sum(end - start for start, end in normalize(intervals))


def clip(interval: Interval, lo: float, hi: float) -> Interval:
    """Clamp ``interval`` to ``[lo, hi]`` (may come back empty).

    >>> clip((1.0, 9.0), 2.0, 5.0)
    (2.0, 5.0)
    """
    start, end = interval
    return (max(start, lo), min(end, hi))
