"""New Pagoda Broadcasting (Pâris 1999) — the paper's Figure 2.

NPB improves on FB "by using a more complex segment-to-stream mapping": each
stream is time-multiplexed into interleaved *trains* (arithmetic slot
progressions ``offset + t * period``) and each segment rides one train whose
period never exceeds the segment's index — the on-time condition.  Three
streams carry nine segments where FB carries seven.

The original paper gives the mapping by construction; here we rebuild it
with a greedy train packer that captures the pagoda idea directly:

1. process segments in increasing order;
2. for segment ``S_j``, consider every free train ``(period p, offset o)``
   of the ``k`` streams (an unopened stream is one free train ``(1, 0)``)
   and the *achievable period* ``p * floor(j / p)`` — the longest train
   period not exceeding ``j`` reachable by subdividing;
3. pick the train with the largest achievable period (ties: the largest
   ``p``, i.e. the least subdividing, then the lowest stream/offset);
4. subdivide hierarchically by the prime factors of ``floor(j / p)``,
   keeping one branch for ``S_j`` and returning the siblings — at mixed
   granularities — to the free pool.

For three streams this packer emits the paper's Figure 2 *verbatim*
(``S2 S4 S2 S5 S2 S4`` / ``S3 S6 S8 S3 S7 S9``; asserted in the test suite),
and it beats FB's ``2**k - 1`` capacity for every ``k >= 3``.  Like every
pagoda-family protocol its capacity tracks the harmonic bound: 99 segments —
the configuration of Figures 7 and 8 — fit in six streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SchedulingError
from .base import StaticBroadcastProtocol, StaticMap

#: Idle-slot marker in patterns when capacity exceeds the requested segments.
IDLE = 0


@dataclass(frozen=True)
class _Train:
    """An arithmetic progression of slots within one stream."""

    stream: int
    period: int
    offset: int


def _prime_factors(value: int) -> List[int]:
    """Prime factors of ``value`` in ascending order (with multiplicity)."""
    factors: List[int] = []
    remaining = value
    divisor = 2
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            factors.append(divisor)
            remaining //= divisor
        divisor += 1
    if remaining > 1:
        factors.append(remaining)
    return factors


def _pack(n_streams: int, max_segments: Optional[int]) -> Tuple[List[_Train], Dict[_Train, int]]:
    """Greedy pagoda packing of segments onto ``n_streams`` streams.

    Returns the leftover free trains and the segment assignment.
    """
    free: List[_Train] = []
    next_stream = 0
    assignment: Dict[_Train, int] = {}
    segment = 0
    while max_segments is None or segment < max_segments:
        segment += 1
        candidates = list(free)
        if next_stream < n_streams:
            candidates.append(_Train(next_stream, 1, 0))
        best: Optional[_Train] = None
        best_period = 0
        for train in candidates:
            achievable = train.period * (segment // train.period)
            if achievable == 0:
                continue
            if (
                best is None
                or achievable > best_period
                or (
                    achievable == best_period
                    and (train.period, -train.stream, -train.offset)
                    > (best.period, -best.stream, -best.offset)
                )
            ):
                best, best_period = train, achievable
        if best is None:
            segment -= 1
            break
        if best.period == 1 and best.offset == 0 and best.stream == next_stream:
            next_stream += 1
        else:
            free.remove(best)
        # Subdivide hierarchically by prime factors, pooling the siblings.
        current = best
        for factor in _prime_factors(segment // best.period):
            for branch in range(1, factor):
                free.append(
                    _Train(
                        current.stream,
                        current.period * factor,
                        current.offset + branch * current.period,
                    )
                )
            current = _Train(current.stream, current.period * factor, current.offset)
        assignment[current] = segment
    return free, assignment


def pagoda_capacity(n_streams: int) -> int:
    """Segments the greedy pagoda packer fits into ``n_streams`` streams.

    >>> pagoda_capacity(1)
    1
    >>> pagoda_capacity(2)
    3
    >>> pagoda_capacity(3)
    9
    """
    if n_streams < 1:
        raise ConfigurationError(f"need >= 1 stream, got {n_streams}")
    _, assignment = _pack(n_streams, max_segments=None)
    return len(assignment)


def pagoda_streams_for_segments(n_segments: int) -> int:
    """Fewest streams whose pagoda capacity reaches ``n_segments``."""
    if n_segments < 1:
        raise ConfigurationError(f"need >= 1 segment, got {n_segments}")
    streams = 1
    while pagoda_capacity(streams) < n_segments:
        streams += 1
    return streams


def pagoda_map(n_streams: int, n_segments: Optional[int] = None) -> StaticMap:
    """Build the NPB segment-to-stream map.

    Parameters
    ----------
    n_streams:
        Stream count ``k``.
    n_segments:
        Segments to place (defaults to the full capacity).  Unused trains
        become idle slots (marker 0) — the allocated bandwidth is still
        ``k`` streams, as in the paper's flat NPB curve.

    Examples
    --------
    >>> print(pagoda_map(3).render(6))
    Stream 1  S1 S1 S1 S1 S1 S1
    Stream 2  S2 S4 S2 S5 S2 S4
    Stream 3  S3 S6 S8 S3 S7 S9
    """
    capacity = pagoda_capacity(n_streams)
    if n_segments is None:
        n_segments = capacity
    if n_segments > capacity:
        raise ConfigurationError(
            f"{n_streams} streams fit {capacity} segments, not {n_segments}"
        )
    free, assignment = _pack(n_streams, max_segments=n_segments)
    used_streams = 1 + max(train.stream for train in assignment)
    # Per-stream pattern length: lcm of that stream's train periods.
    lengths = [1] * used_streams
    for train in list(assignment) + list(free):
        if train.stream < used_streams:
            lengths[train.stream] = (
                lengths[train.stream]
                * train.period
                // gcd(lengths[train.stream], train.period)
            )
    patterns: List[List[int]] = [[IDLE] * lengths[s] for s in range(used_streams)]
    for train, segment in assignment.items():
        for slot in range(train.offset, lengths[train.stream], train.period):
            if patterns[train.stream][slot] != IDLE:
                raise SchedulingError("pagoda trains collided; packer bug")
            patterns[train.stream][slot] = segment
    return StaticMap(patterns=patterns, n_segments=n_segments)


class NewPagodaBroadcasting(StaticBroadcastProtocol):
    """NPB as a fixed slotted broadcast schedule.

    Parameters
    ----------
    n_streams:
        Stream count; defaults to the fewest streams fitting ``n_segments``.
    n_segments:
        Segment count; defaults to the full capacity of ``n_streams``.

    Examples
    --------
    >>> npb = NewPagodaBroadcasting(n_streams=3)
    >>> npb.n_segments
    9
    """

    def __init__(
        self, n_streams: Optional[int] = None, n_segments: Optional[int] = None
    ):
        if n_streams is None and n_segments is None:
            raise ConfigurationError("give n_streams and/or n_segments")
        if n_streams is None:
            n_streams = pagoda_streams_for_segments(n_segments)
        super().__init__(pagoda_map(n_streams, n_segments))
        self.n_allocated_streams = n_streams

    def slot_load(self, slot: int) -> int:
        """Allocated bandwidth: all ``k`` streams, idle trains included."""
        return self.n_allocated_streams
