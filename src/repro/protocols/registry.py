"""Name → protocol factory registry.

The CLI and sweep harness refer to protocols by the names the paper uses;
this registry builds configured instances from an experiment context
(segment count, video duration, expected arrival rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Union

from ..core.adaptive import AdaptiveDHBProtocol, default_slack_ladder
from ..core.dhb import DHBProtocol
from ..errors import ConfigurationError
from ..sim.continuous import ReactiveModel
from ..sim.slotted import SlottedModel
from .batching import BatchingProtocol
from .catching import SelectiveCatchingProtocol
from .dnpb import DynamicPagodaProtocol
from .dsb import DynamicSkyscraperProtocol
from .fb import FastBroadcasting
from .hmsm import HMSMProtocol
from .npb import NewPagodaBroadcasting
from .patching import PatchingProtocol
from .sb import SkyscraperBroadcasting
from .stream_tapping import StreamTappingProtocol
from .ud import UniversalDistributionProtocol

AnyProtocol = Union[SlottedModel, ReactiveModel]


@dataclass(frozen=True)
class ProtocolContext:
    """Everything a factory may need to configure a protocol.

    Attributes
    ----------
    n_segments:
        Segment count for the slotted protocols (99 in Figures 7/8).
    duration:
        Video length ``D`` in seconds.
    rate_per_hour:
        Expected Poisson arrival rate (reactive protocols tune their
        windows/channel counts to it, as their papers prescribe).
    """

    n_segments: int
    duration: float
    rate_per_hour: float

    def __post_init__(self):
        if self.n_segments < 1:
            raise ConfigurationError("n_segments must be >= 1")
        if self.duration <= 0:
            raise ConfigurationError("duration must be > 0")
        if self.rate_per_hour < 0:
            raise ConfigurationError("rate_per_hour must be >= 0")


_FACTORIES: Dict[str, Callable[[ProtocolContext], AnyProtocol]] = {
    "dhb": lambda ctx: DHBProtocol(n_segments=ctx.n_segments),
    "adaptive-dhb": lambda ctx: AdaptiveDHBProtocol(
        n_segments=ctx.n_segments,
        slack_ladder=default_slack_ladder(ctx.n_segments),
    ),
    "ud": lambda ctx: UniversalDistributionProtocol(n_segments=ctx.n_segments),
    "dnpb": lambda ctx: DynamicPagodaProtocol(n_segments=ctx.n_segments),
    "dsb": lambda ctx: DynamicSkyscraperProtocol(n_segments=ctx.n_segments),
    "fb": lambda ctx: FastBroadcasting(n_segments=ctx.n_segments),
    "hmsm": lambda ctx: HMSMProtocol(duration=ctx.duration),
    "npb": lambda ctx: NewPagodaBroadcasting(n_segments=ctx.n_segments),
    "sb": lambda ctx: SkyscraperBroadcasting(n_segments=ctx.n_segments),
    "stream-tapping": lambda ctx: StreamTappingProtocol(
        duration=ctx.duration, expected_rate_per_hour=ctx.rate_per_hour
    ),
    "patching": lambda ctx: PatchingProtocol(
        duration=ctx.duration, expected_rate_per_hour=max(ctx.rate_per_hour, 1e-9)
    ),
    "batching": lambda ctx: BatchingProtocol(duration=ctx.duration),
    "catching": lambda ctx: SelectiveCatchingProtocol(
        duration=ctx.duration, expected_rate_per_hour=max(ctx.rate_per_hour, 1e-9)
    ),
}

#: Protocols driven by the slotted simulator.
SLOTTED_NAMES = frozenset(
    {"dhb", "adaptive-dhb", "ud", "dnpb", "dsb", "fb", "npb", "sb"}
)
#: Protocols driven by the continuous-time simulator.
REACTIVE_NAMES = frozenset(
    {"stream-tapping", "patching", "batching", "catching", "hmsm"}
)


def available_protocols() -> List[str]:
    """Sorted names accepted by :func:`build_protocol`."""
    return sorted(_FACTORIES)


def build_protocol(name: str, context: ProtocolContext) -> AnyProtocol:
    """Instantiate the protocol called ``name`` for ``context``.

    >>> ctx = ProtocolContext(n_segments=9, duration=7200.0, rate_per_hour=10.0)
    >>> build_protocol("npb", ctx).n_segments
    9
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; choose from {available_protocols()}"
        ) from None
    return factory(context)


def is_slotted(name: str) -> bool:
    """Whether ``name`` runs on the slotted simulator."""
    if name not in _FACTORIES:
        raise ConfigurationError(f"unknown protocol {name!r}")
    return name in SLOTTED_NAMES
