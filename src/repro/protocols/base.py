"""Shared machinery for the fixed (proactive) broadcasting protocols.

A fixed broadcasting protocol is completely described by a **static map**:
for each data stream, a periodic pattern of segment numbers.  FB, NPB and SB
differ only in that map (the paper's Figures 1–3), so they share
:class:`StaticBroadcastProtocol`, which

* answers the slotted-simulation interface (the server bandwidth of a fixed
  protocol is simply its stream count — "their bandwidth requirements are
  not affected by the request arrival rate"), and
* exposes the map itself, so tests can verify the delivery guarantee and the
  experiment harness can print the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigurationError, SchedulingError
from ..sim.slotted import SlottedModel


@dataclass(frozen=True)
class StaticMap:
    """A fixed segment-to-stream map.

    Attributes
    ----------
    patterns:
        ``patterns[s]`` is the repeating segment pattern of stream ``s``
        (0-based streams); stream ``s`` transmits
        ``patterns[s][slot % len(patterns[s])]`` during ``slot``.
    n_segments:
        Total number of video segments covered by the map.
    """

    patterns: List[List[int]]
    n_segments: int

    @property
    def n_streams(self) -> int:
        """Number of data streams the map occupies."""
        return len(self.patterns)

    def segment_at(self, stream: int, slot: int) -> int:
        """Segment broadcast by 0-based ``stream`` during ``slot``."""
        pattern = self.patterns[stream]
        return pattern[slot % len(pattern)]

    def segments_in_slot(self, slot: int) -> List[int]:
        """All segments broadcast during ``slot``, one per stream."""
        return [self.segment_at(stream, slot) for stream in range(self.n_streams)]

    def period_of(self, segment: int) -> int:
        """Broadcast period of ``segment``: gap between consecutive instances.

        Raises :class:`~repro.errors.SchedulingError` when the segment's
        occurrences are not evenly spaced within its stream pattern (every
        protocol reproduced here uses evenly spaced instances).
        """
        for pattern in self.patterns:
            hits = [idx for idx, seg in enumerate(pattern) if seg == segment]
            if not hits:
                continue
            length = len(pattern)
            gaps = {
                (hits[(k + 1) % len(hits)] - hits[k]) % length or length
                for k in range(len(hits))
            }
            if len(gaps) != 1:
                raise SchedulingError(
                    f"segment S{segment} is unevenly spaced in its stream"
                )
            return gaps.pop()
        raise SchedulingError(f"segment S{segment} missing from the map")

    def render(self, n_slots: int = 6) -> str:
        """ASCII rendering in the style of the paper's Figures 1–3.

        >>> simple = StaticMap(patterns=[[1], [2, 3]], n_segments=3)
        >>> print(simple.render(4))
        Stream 1  S1 S1 S1 S1
        Stream 2  S2 S3 S2 S3
        """
        width = len(f"S{self.n_segments}")
        lines = []
        for stream in range(self.n_streams):
            cells = " ".join(
                f"S{self.segment_at(stream, slot)}".ljust(width)
                for slot in range(n_slots)
            )
            lines.append(f"Stream {stream + 1}  {cells.rstrip()}")
        return "\n".join(lines)


def verify_static_map(static_map: StaticMap, exhaustive_arrivals: int = 0) -> None:
    """Check the delivery guarantee of a fixed map.

    A client arriving during slot ``i`` must find every segment ``S_j``
    broadcast at least once during ``[i+1, i+j]``.  Because every protocol
    here spaces a segment's occurrences evenly (:meth:`StaticMap.period_of`
    enforces it), the guarantee is *exactly* equivalent to
    ``period_of(S_j) <= j`` for every segment — any window of ``j``
    consecutive slots then contains an occurrence.  That check is O(map
    size), so it stays fast even for maps whose pattern hyper-period is
    astronomically large (the six-stream pagoda map mixes train periods like
    49, 56 and 91).

    Parameters
    ----------
    exhaustive_arrivals:
        Additionally replay this many concrete arrival slots with a sliding
        window — a redundant cross-check used by the test suite on small
        maps (0 skips it).

    Raises
    ------
    SchedulingError
        On the first violated segment or (arrival slot, segment) pair.
    """
    seen_segments: Dict[int, bool] = {
        j: False for j in range(1, static_map.n_segments + 1)
    }
    for pattern in static_map.patterns:
        for segment in pattern:
            if segment in seen_segments:
                seen_segments[segment] = True
    missing = [j for j, seen in seen_segments.items() if not seen]
    if missing:
        raise SchedulingError(f"map never broadcasts segments {missing}")
    for segment in range(1, static_map.n_segments + 1):
        period = static_map.period_of(segment)
        if period > segment:
            raise SchedulingError(
                f"S{segment} is broadcast every {period} slots, beyond its "
                f"deadline window of {segment}"
            )
    for arrival in range(exhaustive_arrivals):
        pending = set(range(1, static_map.n_segments + 1))
        for offset in range(1, static_map.n_segments + 1):
            slot = arrival + offset
            for segment in static_map.segments_in_slot(slot):
                pending.discard(segment)
            # Segment j's deadline is relative slot j.
            if offset in pending:
                raise SchedulingError(
                    f"arrival in slot {arrival}: S{offset} not broadcast by "
                    f"relative slot {offset}"
                )


class StaticBroadcastProtocol(SlottedModel):
    """A fixed broadcasting protocol driven by a :class:`StaticMap`.

    Requests never change the schedule; the per-slot bandwidth is always the
    stream count.  Subclasses (FB, NPB, SB) construct the map.
    """

    def __init__(self, static_map: StaticMap):
        if static_map.n_streams < 1:
            raise ConfigurationError("a broadcast protocol needs >= 1 stream")
        self.map = static_map
        self.requests_admitted = 0

    @property
    def n_segments(self) -> int:
        """Number of video segments."""
        return self.map.n_segments

    @property
    def n_streams(self) -> int:
        """Number of permanently allocated data streams."""
        return self.map.n_streams

    def handle_request(self, slot: int) -> None:
        """Requests are served by the fixed schedule; nothing to do."""
        self.requests_admitted += 1
        if self.metrics is not None:
            self.metrics.counter("protocol.requests").inc()

    def handle_batch(self, slot: int, count: int) -> None:
        """Fixed schedules ignore requests entirely: O(1) per batch."""
        if count <= 0:
            return
        self.requests_admitted += count
        if self.metrics is not None:
            self.metrics.counter("protocol.requests").inc(count)

    def slot_load(self, slot: int) -> int:
        """Fixed protocols keep every stream busy in every slot."""
        return self.map.n_streams

    def slot_instances(self, slot: int) -> List[int]:
        """The map's segments for ``slot`` (fixed protocols always transmit)."""
        return self.map.segments_in_slot(slot)

    def release_before(self, slot: int) -> None:
        """Stateless; nothing to release."""
