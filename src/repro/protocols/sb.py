"""Skyscraper Broadcasting (Hua & Sheu 1997) — the paper's Figure 3.

SB trades server bandwidth for a hard client constraint: a set-top box never
receives more than **two** streams at once.  Stream ``i`` cyclically
broadcasts a group of ``W[i]`` consecutive segments, where ``W`` is the
"skyscraper" width series::

    1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52, ...
    W[i] = W[i-1]            for even-positioned repeats
    W[i] = 2*W[i-1] + 1  /  2*W[i-1] + 2  alternating otherwise

(the classic recurrence; each width also never exceeds the index of the
group's first segment, which is what keeps delivery on time).  Because the
groups are narrower than FB's doubling, "SB will always require more server
bandwidth than NPB and FB to guarantee the same maximum waiting time d".
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError
from .base import StaticBroadcastProtocol, StaticMap


def skyscraper_widths(n_streams: int, width_cap: Optional[int] = None) -> List[int]:
    """The SB width series ``W[1..k]``.

    The classic series is 1, 2, 2, 5, 5, 12, 12, 25, 25, 52, 52, ... —
    Hua & Sheu's recurrence: odd positions (beyond 1) repeat the previous
    width, position ``i ≡ 0 (mod 4)`` doubles-plus-one, and position
    ``i ≡ 2 (mod 4)`` (beyond 2) doubles-plus-two.  ``width_cap`` implements
    the original paper's optional cap that bounds client buffer space.

    >>> skyscraper_widths(6)
    [1, 2, 2, 5, 5, 12]
    """
    if n_streams < 1:
        raise ConfigurationError(f"need >= 1 stream, got {n_streams}")
    widths = [1]
    while len(widths) < n_streams:
        i = len(widths) + 1  # 1-based index of the next width
        if i in (2, 3):
            widths.append(2)
        elif i % 2 == 1:
            widths.append(widths[-1])
        elif i % 4 == 0:
            widths.append(2 * widths[-1] + 1)
        else:  # i % 4 == 2
            widths.append(2 * widths[-1] + 2)
    if width_cap is not None:
        if width_cap < 1:
            raise ConfigurationError(f"width_cap must be >= 1, got {width_cap}")
        widths = [min(w, width_cap) for w in widths]
    return widths[:n_streams]


def sb_segments_for_streams(n_streams: int, width_cap: Optional[int] = None) -> int:
    """Total segments ``k`` SB streams carry: the sum of the widths.

    >>> sb_segments_for_streams(3)
    5
    """
    return sum(skyscraper_widths(n_streams, width_cap))


def sb_streams_for_segments(n_segments: int, width_cap: Optional[int] = None) -> int:
    """Fewest SB streams covering ``n_segments``."""
    if n_segments < 1:
        raise ConfigurationError(f"need >= 1 segment, got {n_segments}")
    streams = 1
    while sb_segments_for_streams(streams, width_cap) < n_segments:
        streams += 1
    return streams


def sb_map(n_streams: int, width_cap: Optional[int] = None) -> StaticMap:
    """The SB segment-to-stream map.

    >>> print(sb_map(3).render(4))
    Stream 1  S1 S1 S1 S1
    Stream 2  S2 S3 S2 S3
    Stream 3  S4 S5 S4 S5
    """
    widths = skyscraper_widths(n_streams, width_cap)
    patterns: List[List[int]] = []
    first = 1
    for width in widths:
        patterns.append(list(range(first, first + width)))
        first += width
    return StaticMap(patterns=patterns, n_segments=first - 1)


class SkyscraperBroadcasting(StaticBroadcastProtocol):
    """SB as a fixed slotted broadcast schedule.

    Parameters
    ----------
    n_streams:
        Stream count; or derive from ``n_segments``.
    n_segments:
        Minimum segment count to cover (the realised count is the full
        capacity of the chosen stream count).
    width_cap:
        Optional cap on group widths (bounds the client buffer).

    Examples
    --------
    >>> sb = SkyscraperBroadcasting(n_streams=3)
    >>> sb.n_segments
    5

    The signature SB property — at most two concurrent receptions:

    >>> sb.max_client_streams()
    2
    """

    def __init__(
        self,
        n_streams: Optional[int] = None,
        n_segments: Optional[int] = None,
        width_cap: Optional[int] = None,
    ):
        if n_streams is None and n_segments is None:
            raise ConfigurationError("give n_streams and/or n_segments")
        if n_streams is None:
            n_streams = sb_streams_for_segments(n_segments, width_cap)
        super().__init__(sb_map(n_streams, width_cap))
        self.widths = skyscraper_widths(n_streams, width_cap)

    def max_client_streams(self, n_arrival_slots: int = 64) -> int:
        """Peak concurrent receptions over clients of many arrival slots.

        A client downloads group ``g`` from the first group-aligned
        broadcast at or after the moment group ``g-1`` finishes; with the
        skyscraper widths this pipeline never needs more than two concurrent
        streams (the property SB is designed around).
        """
        peak = 1
        for arrival in range(n_arrival_slots):
            intervals = self._client_download_intervals(arrival)
            events = []
            for start, end in intervals:
                events.append((start, 1))
                events.append((end, -1))
            events.sort(key=lambda e: (e[0], e[1]))
            level = 0
            for _, delta in events:
                level += delta
                peak = max(peak, level)
        return peak

    def _client_download_intervals(self, arrival_slot: int):
        """(start, end) download slots per group for one client (half-open).

        The client joins each group's *latest* broadcast cycle that still
        meets the playout deadline: group ``g`` (first segment ``f_g``,
        width ``W_g``) is consumed live if its cycle starting at slot
        ``floor((a + f_g) / W_g) * W_g`` is used, because segment
        ``f_g + m`` then arrives during slot ``start + m <= a + f_g + m`` —
        exactly when (or before) it is played.  Since ``W_g <= f_g`` the
        start always falls after the arrival slot.  Downloading as late as
        possible is what keeps at most two loaders busy.
        """
        intervals = []
        group_first_segment = 1
        for width in self.widths:
            start = ((arrival_slot + group_first_segment) // width) * width
            intervals.append((start, start + width))
            group_first_segment += width
        return intervals
