"""Dynamic NPB — the design Section 3 tried first and rejected.

"We first experimented with a dynamic version of the NPB protocol.  As we
expected, it bested the UD protocol at moderate to high access rates because
its bandwidth requirements never exceeded those of NPB.  Unfortunately, its
performance lagged behind that of both UD and stream tapping whenever there
were less than 40 to 60 requests per hour."

**Reproduction note.**  Our reconstruction shares at *occurrence*
granularity (each map occurrence transmitted iff some client needs it —
exactly how UD is described), and at that granularity the published
objection does not reproduce: NPB's per-segment periods hug the deadlines,
so a marked occurrence stays shareable for *longer* than under FB timing and
occurrence-level dynamic NPB dominates UD at every rate (the test suite pins
this).  The paper's version therefore almost certainly shared at a coarser
granularity (e.g. activating whole NPB streams on demand).  We keep the
occurrence-level protocol as the honest ablation arm and record the
discrepancy in EXPERIMENTS.md; DHB's remaining advantages over it are that
it needs no precomputed map and generalises to per-segment periods
(compressed video).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from .npb import pagoda_map, pagoda_streams_for_segments
from .on_demand import OnDemandMapProtocol


class DynamicPagodaProtocol(OnDemandMapProtocol):
    """On-demand transmission over the NPB (pagoda) map.

    Parameters
    ----------
    n_segments:
        Segment count; the pagoda substrate uses the fewest streams that
        carry it.
    n_streams:
        Alternatively, a stream count (full pagoda capacity).

    Examples
    --------
    >>> dnpb = DynamicPagodaProtocol(n_streams=3)
    >>> dnpb.n_segments
    9
    """

    def __init__(
        self, n_segments: Optional[int] = None, n_streams: Optional[int] = None
    ):
        if n_segments is None and n_streams is None:
            raise ConfigurationError("give n_segments and/or n_streams")
        if n_streams is None:
            n_streams = pagoda_streams_for_segments(n_segments)
        super().__init__(pagoda_map(n_streams, n_segments))
