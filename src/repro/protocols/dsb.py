"""Dynamic Skyscraper Broadcasting (Eager & Vernon 1998).

"Eager and Vernon's dynamic skyscraper broadcasting (DSB) is a reactive
protocol based upon the SB protocol.  Since it abides by the same
restriction on client bandwidth as the original SB protocol, it also
requires a higher server bandwidth than the UD protocol."

Model: the skyscraper timing is kept — stream ``g`` carries its group of
``W[g]`` consecutive segments in cycles aligned to multiples of ``W[g]`` —
but a cycle's slots are transmitted only when some admitted client consumes
them.  A client arriving during slot ``a`` uses, for each group, the
*latest* cycle that still meets its playout deadlines (exactly the SB client
schedule of :class:`repro.protocols.sb.SkyscraperBroadcasting`, which is
what preserves the two-concurrent-streams client property).  Marking is
idempotent, so overlapping clients share cycles; at saturation every cycle
runs and DSB reverts to SB's full stream count — which exceeds UD's, as the
paper notes, because the skyscraper widths pack fewer segments per stream.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..errors import ConfigurationError
from ..sim.slotted import SlottedModel
from .sb import sb_map, sb_streams_for_segments, skyscraper_widths


class DynamicSkyscraperProtocol(SlottedModel):
    """On-demand transmission of skyscraper cycles.

    Parameters
    ----------
    n_segments:
        Minimum segment count to cover (rounded up to the width series'
        capacity), or give ``n_streams``.
    n_streams:
        Stream count (full capacity of the widths).
    width_cap:
        Optional skyscraper width cap (bounds the client buffer).

    Examples
    --------
    >>> dsb = DynamicSkyscraperProtocol(n_streams=3)
    >>> dsb.handle_request(slot=0)
    >>> [dsb.slot_load(s) for s in range(1, 6)]   # one marked cycle per group
    [1, 1, 1, 1, 1]
    """

    def __init__(
        self,
        n_segments: Optional[int] = None,
        n_streams: Optional[int] = None,
        width_cap: Optional[int] = None,
    ):
        if n_segments is None and n_streams is None:
            raise ConfigurationError("give n_segments and/or n_streams")
        if n_streams is None:
            n_streams = sb_streams_for_segments(n_segments, width_cap)
        self.widths = skyscraper_widths(n_streams, width_cap)
        self.map = sb_map(n_streams, width_cap)
        # Per stream: set of marked cycle start slots.
        self._marked_cycles: Dict[int, Set[int]] = {
            g: set() for g in range(len(self.widths))
        }
        self._released_before = 0
        self.requests_admitted = 0

    @property
    def n_segments(self) -> int:
        """Total segments covered by the widths."""
        return self.map.n_segments

    @property
    def n_streams(self) -> int:
        """Stream count (DSB's saturation bandwidth)."""
        return len(self.widths)

    def handle_request(self, slot: int) -> None:
        """Mark, per group, the client's latest feasible broadcast cycle."""
        self.requests_admitted += 1
        first_segment = 1
        for group, width in enumerate(self.widths):
            cycle_start = ((slot + first_segment) // width) * width
            self._marked_cycles[group].add(cycle_start)
            first_segment += width

    def slot_load(self, slot: int) -> int:
        """Streams transmitting during ``slot`` (marked cycles only)."""
        load = 0
        for group, width in enumerate(self.widths):
            cycle_start = (slot // width) * width
            if cycle_start in self._marked_cycles[group]:
                load += 1
        return load

    def release_before(self, slot: int) -> None:
        """Drop cycles that ended before ``slot``."""
        if slot <= self._released_before:
            return
        for group, width in enumerate(self.widths):
            keep = {s for s in self._marked_cycles[group] if s + width > slot}
            self._marked_cycles[group] = keep
        self._released_before = slot
