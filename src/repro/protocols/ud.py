"""The Universal Distribution protocol (Pâris, Carter & Long 2000).

UD is "a dynamic broadcasting protocol based upon the FB protocol" — FB's
segment-to-stream timing, with every occurrence transmitted only on demand.
At low request rates it matches the best reactive protocols; past roughly
two hundred requests per hour every FB channel occurrence is needed by some
client and UD's bandwidth saturates at FB's stream count (its flat ceiling
in Figures 7 and 8, one stream above DHB's harmonic plateau for comparable
segment counts).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from .fb import fb_map, fb_streams_for_segments
from .on_demand import OnDemandMapProtocol


class UniversalDistributionProtocol(OnDemandMapProtocol):
    """UD: on-demand Fast Broadcasting.

    Parameters
    ----------
    n_segments:
        Segment count (99 in Figures 7 and 8); the FB substrate uses the
        fewest streams that carry it, truncating the last stream's cycle.
    n_streams:
        Alternatively, a stream count (full FB capacity).

    Examples
    --------
    >>> ud = UniversalDistributionProtocol(n_segments=99)
    >>> ud.n_streams
    7
    >>> ud.handle_request(slot=0)
    >>> ud.slot_load(1) > 0
    True
    """

    def __init__(
        self, n_segments: Optional[int] = None, n_streams: Optional[int] = None
    ):
        if n_segments is None and n_streams is None:
            raise ConfigurationError("give n_segments and/or n_streams")
        if n_streams is None:
            n_streams = fb_streams_for_segments(n_segments)
        super().__init__(fb_map(n_streams, n_segments))
