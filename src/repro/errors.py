"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  Subclasses are grouped by
the subsystem that raises them; each one carries a human-readable message and,
where useful, structured attributes for programmatic handling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A protocol, video, or experiment was configured with invalid parameters.

    Raised eagerly at construction time so that misconfiguration never
    silently produces a wrong schedule or a wrong measurement.
    """


class SchedulingError(ReproError):
    """A scheduler violated (or would violate) a delivery guarantee.

    The slotted schedulers raise this when an internal invariant is broken,
    e.g. a segment could not be placed within its deadline window.  Under the
    published DHB algorithm this cannot happen (the window always contains at
    least one feasible slot); seeing this error indicates a bug or an
    inconsistent custom period vector.
    """


class DeadlineMissedError(SchedulingError):
    """A client reception plan would miss a playout deadline.

    Attributes
    ----------
    request_slot:
        Slot during which the offending request arrived.
    segment:
        1-based index of the segment whose deadline would be missed.
    deadline_slot:
        Last slot in which the segment could have been received on time.
    """

    def __init__(self, request_slot: int, segment: int, deadline_slot: int):
        self.request_slot = request_slot
        self.segment = segment
        self.deadline_slot = deadline_slot
        super().__init__(
            f"request arriving in slot {request_slot} would miss segment "
            f"S{segment}: no transmission scheduled by slot {deadline_slot}"
        )


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistent state.

    Examples: an event scheduled in the past, or a simulation driven past its
    configured horizon.
    """


class WorkloadError(ReproError):
    """An arrival process or request stream was asked for something invalid."""


class ClusterError(ReproError):
    """A cluster topology, routing policy, or fault schedule is inconsistent.

    Raised when a catalog placement leaves a title with no replica, a fault
    window references an unknown server, or degraded-mode failover is asked
    of a protocol that cannot reschedule lost segment instances.
    """


class ServeError(ReproError):
    """The live serving layer hit a protocol or transport violation.

    Raised by :mod:`repro.serve` on malformed wire frames, oversized
    payloads, handshake violations, or a load-generation gate failure
    (dropped sessions, tail-latency bound exceeded).  Infrastructure
    hiccups on individual client connections are *not* errors — the
    daemon absorbs them and counts them in its metrics.
    """


class VideoModelError(ReproError):
    """A video model or trace is malformed (negative sizes, empty trace, ...)."""


class SmoothingError(ReproError):
    """A smoothing computation is infeasible for the requested parameters.

    Raised e.g. when a transmission rate below the video's long-run average is
    requested, which can never sustain playout.
    """
