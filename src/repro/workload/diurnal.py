"""Diurnal (time-of-day) demand profiles.

The paper's introduction observes that "the frequency of requests for any
given video is likely to vary widely with the time of the day: child-oriented
fare will always be in higher demand during the day and early evening hours
than at night; conversely, videos appealing to older viewers are likely to
follow an opposite pattern" — and argues no conventional protocol handles
both regimes.  These profiles realise that scenario for the
:class:`~repro.workload.arrivals.NonHomogeneousPoisson` process, so the
dynamic protocols can be exercised across their whole operating range within
a single run.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import WorkloadError
from ..units import HOUR


class DiurnalProfile:
    """A 24-hour periodic rate profile defined by hourly control points.

    Parameters
    ----------
    hourly_rates:
        24 values, ``hourly_rates[h]`` being the arrival rate (per hour)
        during hour-of-day ``h``.  The profile linearly interpolates between
        hour midpoints and wraps around midnight.
    """

    def __init__(self, hourly_rates: Sequence[float]):
        if len(hourly_rates) != 24:
            raise WorkloadError(f"need 24 hourly rates, got {len(hourly_rates)}")
        if any(r < 0 for r in hourly_rates):
            raise WorkloadError("hourly rates must be >= 0")
        self.hourly_rates = [float(r) for r in hourly_rates]

    @property
    def max_rate_per_hour(self) -> float:
        """Upper bound on the instantaneous rate (used for thinning)."""
        return max(self.hourly_rates)

    @property
    def mean_rate_per_hour(self) -> float:
        """Average rate over a day."""
        return sum(self.hourly_rates) / 24.0

    def rate_at(self, time_seconds: float) -> float:
        """Instantaneous rate (per hour) at absolute ``time_seconds``.

        Linear interpolation between the midpoints of consecutive hours,
        periodic with a 24-hour day.

        >>> profile = DiurnalProfile([10.0] * 24)
        >>> profile.rate_at(12345.0)
        10.0
        """
        day_seconds = 24 * HOUR
        t = math.fmod(time_seconds, day_seconds)
        if t < 0:
            t += day_seconds
        hour_float = t / HOUR - 0.5  # hour midpoints carry the control values
        lower = math.floor(hour_float)
        frac = hour_float - lower
        r0 = self.hourly_rates[int(lower) % 24]
        r1 = self.hourly_rates[int(lower + 1) % 24]
        return r0 + frac * (r1 - r0)


def child_daytime_profile(peak_rate_per_hour: float = 100.0) -> DiurnalProfile:
    """Demand profile for child-oriented fare: daytime/early-evening peak.

    Peaks between 08:00 and 19:00, nearly idle overnight.
    """
    if peak_rate_per_hour <= 0:
        raise WorkloadError("peak rate must be > 0")
    shape = [
        0.02, 0.02, 0.02, 0.02, 0.03, 0.05,  # 00-05: asleep
        0.15, 0.40, 0.70, 0.85, 0.90, 0.95,  # 06-11: morning ramp
        1.00, 0.95, 0.90, 0.90, 0.95, 1.00,  # 12-17: daytime plateau
        0.90, 0.60, 0.30, 0.12, 0.05, 0.03,  # 18-23: bedtime fall
    ]
    return DiurnalProfile([peak_rate_per_hour * s for s in shape])


def adult_evening_profile(peak_rate_per_hour: float = 100.0) -> DiurnalProfile:
    """Demand profile for adult-oriented fare: late-evening peak."""
    if peak_rate_per_hour <= 0:
        raise WorkloadError("peak rate must be > 0")
    shape = [
        0.55, 0.35, 0.18, 0.08, 0.04, 0.03,  # 00-05: tapering night owls
        0.03, 0.04, 0.05, 0.06, 0.08, 0.10,  # 06-11: work hours
        0.12, 0.12, 0.14, 0.18, 0.25, 0.35,  # 12-17: afternoon build
        0.50, 0.70, 0.90, 1.00, 0.95, 0.75,  # 18-23: prime time
    ]
    return DiurnalProfile([peak_rate_per_hour * s for s in shape])
