"""Flash-crowd (premiere) arrival model.

A new release draws a surge of requests that decays over hours — the
sharpest stress on any distribution protocol and the regime where fixed
broadcasting (NPB) shines briefly before turning into waste.  The model is
a non-homogeneous Poisson process with an exponentially decaying rate
riding on a steady base::

    lambda(t) = base + peak * exp(-t / decay)

which composes directly with
:class:`repro.workload.arrivals.NonHomogeneousPoisson`.
"""

from __future__ import annotations

import math

from ..errors import WorkloadError
from .arrivals import NonHomogeneousPoisson


class FlashCrowd(NonHomogeneousPoisson):
    """Premiere surge: exponentially decaying request rate.

    Parameters
    ----------
    peak_rate_per_hour:
        Extra rate at the premiere instant (t = 0).
    decay_hours:
        e-folding time of the surge, in hours.
    base_rate_per_hour:
        Steady-state rate the title settles to.
    start_hours:
        When the premiere happens, in hours from the run start (before it
        only the base rate applies).

    Examples
    --------
    >>> crowd = FlashCrowd(peak_rate_per_hour=900.0, decay_hours=2.0,
    ...                    base_rate_per_hour=10.0)
    >>> round(crowd.rate_at(0.0))
    910
    >>> round(crowd.rate_at(2 * 3600.0))
    341
    """

    def __init__(
        self,
        peak_rate_per_hour: float,
        decay_hours: float,
        base_rate_per_hour: float = 0.0,
        start_hours: float = 0.0,
    ):
        if peak_rate_per_hour < 0 or base_rate_per_hour < 0:
            raise WorkloadError("rates must be >= 0")
        if peak_rate_per_hour + base_rate_per_hour <= 0:
            raise WorkloadError("the crowd must have a positive rate somewhere")
        if decay_hours <= 0:
            raise WorkloadError(f"decay_hours must be > 0, got {decay_hours}")
        if start_hours < 0:
            raise WorkloadError(f"start_hours must be >= 0, got {start_hours}")
        self.peak_rate_per_hour = float(peak_rate_per_hour)
        self.decay_hours = float(decay_hours)
        self.base_rate_per_hour = float(base_rate_per_hour)
        self.start_hours = float(start_hours)
        super().__init__(
            rate_fn=self.rate_at,
            max_rate_per_hour=base_rate_per_hour + peak_rate_per_hour,
        )

    def rate_at(self, time_seconds: float) -> float:
        """Instantaneous rate (per hour) at ``time_seconds`` into the run."""
        since_release = time_seconds - self.start_hours * 3600.0
        if since_release < 0:
            return self.base_rate_per_hour
        decay = math.exp(-since_release / (self.decay_hours * 3600.0))
        return self.base_rate_per_hour + self.peak_rate_per_hour * decay

    def expected_requests(self, horizon_seconds: float) -> float:
        """Mean number of arrivals in ``[0, horizon_seconds)``.

        >>> crowd = FlashCrowd(100.0, 1.0, base_rate_per_hour=0.0)
        >>> round(crowd.expected_requests(1e9))   # total surge = peak * decay
        100
        """
        if horizon_seconds < 0:
            raise WorkloadError("horizon must be >= 0")
        tau = self.decay_hours * 3600.0
        surge_window = horizon_seconds - self.start_hours * 3600.0
        surge = 0.0
        if surge_window > 0:
            surge = self.peak_rate_per_hour / 3600.0 * tau * (
                1.0 - math.exp(-surge_window / tau)
            )
        return surge + self.base_rate_per_hour / 3600.0 * horizon_seconds
