"""Request arrival processes.

All processes generate sorted arrival times in seconds over ``[0, horizon)``.
They draw from a caller-supplied :class:`numpy.random.Generator`, which the
experiment layer obtains from :class:`repro.sim.rng.RandomStreams` — the same
seed therefore reproduces the same workload for every protocol in a sweep
(common random numbers, the variance-reduction discipline the comparisons
rely on).
"""

from __future__ import annotations

import abc
import math
from typing import Callable, List, Sequence

import numpy as np

from ..errors import WorkloadError
from ..units import HOUR


class ArrivalProcess(abc.ABC):
    """Base class for arrival-time generators."""

    @abc.abstractmethod
    def generate(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        """Return sorted arrival times (seconds) in ``[0, horizon)``."""

    @staticmethod
    def _check_horizon(horizon: float) -> None:
        if horizon <= 0:
            raise WorkloadError(f"horizon must be > 0, got {horizon}")


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process — the paper's workload model.

    Parameters
    ----------
    rate_per_hour:
        Request arrival rate λ, in arrivals per hour (the unit of the x-axes
        of Figures 7–9).

    Examples
    --------
    >>> import numpy as np
    >>> process = PoissonArrivals(rate_per_hour=60.0)
    >>> times = process.generate(3600.0, np.random.default_rng(0))
    >>> bool(np.all(np.diff(times) >= 0))
    True
    """

    def __init__(self, rate_per_hour: float):
        if rate_per_hour < 0:
            raise WorkloadError(f"rate must be >= 0, got {rate_per_hour}")
        self.rate_per_hour = float(rate_per_hour)

    @property
    def rate_per_second(self) -> float:
        """λ expressed per second."""
        return self.rate_per_hour / HOUR

    def generate(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        self._check_horizon(horizon)
        lam = self.rate_per_second
        if lam == 0:
            return np.empty(0)
        expected = lam * horizon
        # Draw in chunks of exponential gaps until the horizon is crossed.
        times: List[np.ndarray] = []
        total = 0.0
        remaining = horizon
        while remaining > 0:
            chunk = max(int(lam * remaining * 1.1) + 16, 16)
            gaps = rng.exponential(1.0 / lam, size=chunk)
            cumulative = total + np.cumsum(gaps)
            inside = cumulative[cumulative < horizon]
            times.append(inside)
            if len(inside) < chunk:
                break
            total = float(cumulative[-1])
            remaining = horizon - total
        if not times:
            return np.empty(0)
        result = np.concatenate(times)
        if expected > 0 and len(result) == 0 and expected > 50:
            raise WorkloadError("Poisson generation produced no arrivals unexpectedly")
        return result


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals — useful for worst-case and anchor tests.

    The paper's bandwidth-peak argument ("slot 120! will contain one
    transmission of every segment") assumes at least one arrival per slot;
    this process realises exactly that workload.
    """

    def __init__(self, interval: float, offset: float = 0.0):
        if interval <= 0:
            raise WorkloadError(f"interval must be > 0, got {interval}")
        if offset < 0:
            raise WorkloadError(f"offset must be >= 0, got {offset}")
        self.interval = float(interval)
        self.offset = float(offset)

    def generate(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        self._check_horizon(horizon)
        return np.arange(self.offset, horizon, self.interval, dtype=float)


class TraceArrivals(ArrivalProcess):
    """Replays a fixed list of arrival times (e.g. a recorded trace)."""

    def __init__(self, times: Sequence[float]):
        array = np.asarray(sorted(float(t) for t in times))
        if len(array) and array[0] < 0:
            raise WorkloadError("trace contains negative arrival times")
        self.times = array

    def generate(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        self._check_horizon(horizon)
        return self.times[self.times < horizon]


class NonHomogeneousPoisson(ArrivalProcess):
    """Poisson process with a time-varying rate λ(t), by thinning.

    Models the introduction's motivating scenario: demand for a given video
    varies widely with the time of day.

    Parameters
    ----------
    rate_fn:
        Callable mapping time (seconds) to instantaneous rate (per hour).
    max_rate_per_hour:
        A bound with ``rate_fn(t) <= max_rate_per_hour`` for all ``t``;
        violations raise :class:`~repro.errors.WorkloadError` when observed.
    """

    def __init__(self, rate_fn: Callable[[float], float], max_rate_per_hour: float):
        if max_rate_per_hour <= 0:
            raise WorkloadError(f"max rate must be > 0, got {max_rate_per_hour}")
        self.rate_fn = rate_fn
        self.max_rate_per_hour = float(max_rate_per_hour)

    def generate(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        self._check_horizon(horizon)
        lam_max = self.max_rate_per_hour / HOUR
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / lam_max))
            if t >= horizon:
                break
            rate = self.rate_fn(t)
            if rate < 0 or rate > self.max_rate_per_hour * (1 + 1e-9):
                raise WorkloadError(
                    f"rate_fn({t}) = {rate} outside [0, {self.max_rate_per_hour}]"
                )
            if rng.random() < rate / self.max_rate_per_hour:
                times.append(t)
        return np.asarray(times)


class MMPPArrivals(ArrivalProcess):
    """Markov-modulated Poisson process (bursty demand).

    A two-state (or n-state) modulating chain switches the instantaneous
    Poisson rate; useful for stress-testing the dynamic protocols with
    correlated request bursts that a plain Poisson process cannot produce.

    Parameters
    ----------
    rates_per_hour:
        Arrival rate in each modulating state.
    mean_sojourn:
        Mean sojourn time (seconds) in each state (exponentially distributed).
    """

    def __init__(self, rates_per_hour: Sequence[float], mean_sojourn: Sequence[float]):
        if len(rates_per_hour) != len(mean_sojourn) or not rates_per_hour:
            raise WorkloadError("rates and sojourn times must be equal, non-empty")
        if any(r < 0 for r in rates_per_hour):
            raise WorkloadError("rates must be >= 0")
        if any(s <= 0 for s in mean_sojourn):
            raise WorkloadError("mean sojourn times must be > 0")
        self.rates_per_hour = [float(r) for r in rates_per_hour]
        self.mean_sojourn = [float(s) for s in mean_sojourn]

    def generate(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        self._check_horizon(horizon)
        times: List[float] = []
        state = int(rng.integers(0, len(self.rates_per_hour)))
        t = 0.0
        while t < horizon:
            sojourn = float(rng.exponential(self.mean_sojourn[state]))
            end = min(t + sojourn, horizon)
            lam = self.rates_per_hour[state] / HOUR
            if lam > 0:
                u = t
                while True:
                    u += float(rng.exponential(1.0 / lam))
                    if u >= end:
                        break
                    times.append(u)
            t = end
            state = (state + int(rng.integers(1, len(self.rates_per_hour)))) % len(
                self.rates_per_hour
            ) if len(self.rates_per_hour) > 1 else state
        return np.asarray(times)


class SuperposedArrivals(ArrivalProcess):
    """Superposition of independent arrival processes.

    The components are generated sequentially from the *same* generator (so
    a single seeded stream reproduces the whole composite) and merged into
    one sorted trace.  Superposing independent Poisson-family processes
    yields another valid arrival process whose rate is the sum of the
    component rates — the standard way to build "diurnal baseline plus an
    evening flash crowd" days.
    """

    def __init__(self, processes: Sequence[ArrivalProcess]):
        parts = list(processes)
        if not parts:
            raise WorkloadError("superposition needs at least one process")
        for part in parts:
            if not isinstance(part, ArrivalProcess):
                raise WorkloadError(
                    f"superposition components must be ArrivalProcess, "
                    f"got {type(part).__name__}"
                )
        self.processes = parts

    def generate(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        self._check_horizon(horizon)
        return merge_arrivals(
            *[process.generate(horizon, rng) for process in self.processes]
        )


def merge_arrivals(*streams: np.ndarray) -> np.ndarray:
    """Merge several sorted arrival-time arrays into one sorted array."""
    if not streams:
        return np.empty(0)
    merged = np.concatenate([np.asarray(s, dtype=float) for s in streams])
    merged.sort(kind="mergesort")
    return merged


def expected_count(process: ArrivalProcess, horizon: float) -> float:
    """Expected number of arrivals for processes with a known mean rate."""
    if isinstance(process, PoissonArrivals):
        return process.rate_per_second * horizon
    if isinstance(process, DeterministicArrivals):
        return max(0.0, math.floor((horizon - process.offset) / process.interval) + 1)
    raise WorkloadError(f"no closed-form count for {type(process).__name__}")
