"""Workload generation: arrival processes, request streams, popularity models.

The paper's evaluation assumes Poisson request arrivals for a single video
(Section 3: "requests for a particular video were distributed according to a
Poisson law").  Its introduction, however, motivates the whole design with
*time-varying* demand — child-oriented fare peaking in daytime, adult fare at
night — so this package also ships a non-homogeneous Poisson process with
diurnal rate profiles, flash-crowd and event-ring surge models, MMPP bursts,
and a Zipf catalog popularity model for multi-video studies.

:class:`WorkloadSpec` (see :mod:`repro.workload.spec`) is the declarative,
digest-keyed form of any of these — the value that sweep configs, runtime
task payloads, scenarios, and the CLI carry where a scalar rate used to be.
"""

from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    MMPPArrivals,
    NonHomogeneousPoisson,
    PoissonArrivals,
    SuperposedArrivals,
    TraceArrivals,
)
from .diurnal import DiurnalProfile, adult_evening_profile, child_daytime_profile
from .flash import FlashCrowd
from .popularity import ZipfCatalog
from .requests import Request, requests_from_times
from .spatial import EventRings
from .spec import (
    WORKLOAD_GRAMMAR,
    WorkloadSpec,
    as_workload,
    parse_workload,
    workload_or_none,
)

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "DiurnalProfile",
    "EventRings",
    "FlashCrowd",
    "MMPPArrivals",
    "NonHomogeneousPoisson",
    "PoissonArrivals",
    "Request",
    "SuperposedArrivals",
    "TraceArrivals",
    "WORKLOAD_GRAMMAR",
    "WorkloadSpec",
    "ZipfCatalog",
    "adult_evening_profile",
    "as_workload",
    "child_daytime_profile",
    "parse_workload",
    "requests_from_times",
    "workload_or_none",
]
