"""Workload generation: arrival processes, request streams, popularity models.

The paper's evaluation assumes Poisson request arrivals for a single video
(Section 3: "requests for a particular video were distributed according to a
Poisson law").  Its introduction, however, motivates the whole design with
*time-varying* demand — child-oriented fare peaking in daytime, adult fare at
night — so this package also ships a non-homogeneous Poisson process with
diurnal rate profiles and a Zipf catalog popularity model for multi-video
studies.
"""

from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    MMPPArrivals,
    NonHomogeneousPoisson,
    PoissonArrivals,
    TraceArrivals,
)
from .diurnal import DiurnalProfile, adult_evening_profile, child_daytime_profile
from .flash import FlashCrowd
from .popularity import ZipfCatalog
from .requests import Request, requests_from_times

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "DiurnalProfile",
    "FlashCrowd",
    "MMPPArrivals",
    "NonHomogeneousPoisson",
    "PoissonArrivals",
    "Request",
    "TraceArrivals",
    "ZipfCatalog",
    "adult_evening_profile",
    "child_daytime_profile",
    "requests_from_times",
]
