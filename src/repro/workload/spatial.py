"""Spatio-temporally correlated demand: the event-ring model.

A localized event (a breaking-news story, a regional premiere, the
fire-alarm scenario of LoRaWAN event-traffic simulators) does not raise
demand everywhere at once: viewers nearest the event react first, and the
reaction front spreads outward through concentric *rings*, each ring
reacting later and more weakly than the one before it.  The aggregate
request rate seen by a VOD server is then a superposition of delayed,
attenuated surge pulses::

    lambda(t) = base + sum_r  peak * atten^r * exp(-(t - t_r) / tau)
                              for t >= t_r,  t_r = start + r * ring_delay

which composes directly with
:class:`repro.workload.arrivals.NonHomogeneousPoisson` — each ring is a
:class:`repro.workload.flash.FlashCrowd` shifted in time, and the sum is
still a valid NHPP intensity.  The interesting property for broadcasting
protocols is the *staircase ramp*: unlike a single flash crowd (worst at
t = 0, monotonically decaying), the ring model keeps re-exciting the rate
as each ring ignites, so a static protocol tuned to the first surge is
stressed again several times.
"""

from __future__ import annotations

import math
from typing import List

from ..errors import WorkloadError
from ..units import HOUR
from .arrivals import NonHomogeneousPoisson


class EventRings(NonHomogeneousPoisson):
    """Concentric-ring event demand (fire-event style correlated surges).

    Parameters
    ----------
    peak_rate_per_hour:
        Extra rate contributed by ring 0 at its ignition instant.
    n_rings:
        Number of rings (ring 0 ignites at ``start``, ring ``r`` at
        ``start + r * ring_delay_hours``).
    ring_delay_hours:
        Propagation delay between consecutive rings, in hours.
    attenuation:
        Per-ring amplitude factor in ``(0, 1]``; ring ``r`` peaks at
        ``peak * attenuation**r``.
    decay_hours:
        e-folding time of each ring's surge, in hours.
    base_rate_per_hour:
        Steady background rate.
    start_hours:
        When ring 0 ignites, in hours from the run start.

    Examples
    --------
    >>> rings = EventRings(peak_rate_per_hour=600.0, n_rings=3,
    ...                    ring_delay_hours=0.5, attenuation=0.5,
    ...                    decay_hours=1.0)
    >>> round(rings.rate_at(0.0))
    600
    >>> rings.rate_at(1800.0) > rings.rate_at(1799.0)  # ring 1 ignites
    True
    """

    def __init__(
        self,
        peak_rate_per_hour: float,
        n_rings: int,
        ring_delay_hours: float,
        attenuation: float,
        decay_hours: float,
        base_rate_per_hour: float = 0.0,
        start_hours: float = 0.0,
    ):
        if peak_rate_per_hour <= 0:
            raise WorkloadError(f"peak rate must be > 0, got {peak_rate_per_hour}")
        if n_rings < 1:
            raise WorkloadError(f"need >= 1 ring, got {n_rings}")
        if ring_delay_hours <= 0:
            raise WorkloadError(
                f"ring_delay_hours must be > 0, got {ring_delay_hours}"
            )
        if not 0.0 < attenuation <= 1.0:
            raise WorkloadError(
                f"attenuation must be in (0, 1], got {attenuation}"
            )
        if decay_hours <= 0:
            raise WorkloadError(f"decay_hours must be > 0, got {decay_hours}")
        if base_rate_per_hour < 0:
            raise WorkloadError("base rate must be >= 0")
        if start_hours < 0:
            raise WorkloadError(f"start_hours must be >= 0, got {start_hours}")
        self.peak_rate_per_hour = float(peak_rate_per_hour)
        self.n_rings = int(n_rings)
        self.ring_delay_hours = float(ring_delay_hours)
        self.attenuation = float(attenuation)
        self.decay_hours = float(decay_hours)
        self.base_rate_per_hour = float(base_rate_per_hour)
        self.start_hours = float(start_hours)
        super().__init__(rate_fn=self.rate_at, max_rate_per_hour=self._max_rate())

    def ignition_seconds(self) -> List[float]:
        """When each ring ignites, in seconds from the run start."""
        return [
            (self.start_hours + r * self.ring_delay_hours) * HOUR
            for r in range(self.n_rings)
        ]

    def rate_at(self, time_seconds: float) -> float:
        """Instantaneous rate (per hour): base plus every ignited ring."""
        tau = self.decay_hours * HOUR
        rate = self.base_rate_per_hour
        amplitude = self.peak_rate_per_hour
        for ignition in self.ignition_seconds():
            if time_seconds >= ignition:
                rate += amplitude * math.exp(-(time_seconds - ignition) / tau)
            amplitude *= self.attenuation
        return rate

    def _max_rate(self) -> float:
        # Between ignitions the superposed pulses only decay, so the maximum
        # is attained at one of the ignition instants.
        return max(self.rate_at(t) for t in self.ignition_seconds())

    def expected_requests(self, horizon_seconds: float) -> float:
        """Mean number of arrivals in ``[0, horizon_seconds)`` (closed form)."""
        if horizon_seconds < 0:
            raise WorkloadError("horizon must be >= 0")
        tau = self.decay_hours * HOUR
        total = self.base_rate_per_hour / HOUR * horizon_seconds
        amplitude = self.peak_rate_per_hour
        for ignition in self.ignition_seconds():
            if horizon_seconds > ignition:
                total += (
                    amplitude
                    / HOUR
                    * tau
                    * (1.0 - math.exp(-(horizon_seconds - ignition) / tau))
                )
            amplitude *= self.attenuation
        return total
