"""Catalog popularity models.

VOD request studies conventionally model per-video popularity with a Zipf
distribution: the *i*-th most popular of ``n`` videos attracts a fraction
proportional to ``1 / i**theta`` of the requests.  The paper's figures are
per-video, but its motivation — some videos are in heavy demand, most are
not — is exactly a Zipf catalog, so multi-video examples and tests use this
model to split an aggregate arrival rate across titles.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import WorkloadError


class ZipfCatalog:
    """Zipf(θ) popularity over a catalog of ``n_videos`` titles.

    Parameters
    ----------
    n_videos:
        Catalog size.
    theta:
        Zipf skew; 1.0 is the classic video-rental fit, 0.0 is uniform.

    Examples
    --------
    >>> catalog = ZipfCatalog(n_videos=3, theta=0.0)
    >>> [round(p, 3) for p in catalog.probabilities]
    [0.333, 0.333, 0.333]
    """

    def __init__(self, n_videos: int, theta: float = 1.0):
        if n_videos < 1:
            raise WorkloadError(f"catalog needs >= 1 video, got {n_videos}")
        if theta < 0:
            raise WorkloadError(f"theta must be >= 0, got {theta}")
        self.n_videos = int(n_videos)
        self.theta = float(theta)
        weights = np.array([1.0 / (rank**theta) for rank in range(1, n_videos + 1)])
        self._probabilities = weights / weights.sum()

    @property
    def probabilities(self) -> List[float]:
        """Per-video request probabilities, most popular first."""
        return [float(p) for p in self._probabilities]

    def rate_for(self, video_rank: int, total_rate_per_hour: float) -> float:
        """Arrival rate (per hour) attracted by the video of ``video_rank``.

        Ranks are 0-based with 0 the most popular title.
        """
        if not 0 <= video_rank < self.n_videos:
            raise WorkloadError(
                f"rank {video_rank} outside catalog of {self.n_videos}"
            )
        if total_rate_per_hour < 0:
            raise WorkloadError("total rate must be >= 0")
        return float(self._probabilities[video_rank]) * total_rate_per_hour

    def assign(self, n_requests: int, rng: np.random.Generator) -> np.ndarray:
        """Draw a video rank for each of ``n_requests`` requests."""
        if n_requests < 0:
            raise WorkloadError("n_requests must be >= 0")
        return rng.choice(self.n_videos, size=n_requests, p=self._probabilities)

    def resample(self, drift: float, rng: np.random.Generator) -> "ZipfCatalog":
        """A drifted copy of this catalog: popularity wanders, seeded.

        Each title's current share is multiplied by ``exp(drift * z)`` with
        ``z ~ N(0, 1)`` drawn from ``rng``, then renormalised — a geometric
        random walk on the popularity simplex.  ``drift = 0`` reproduces the
        current shares exactly (one batch of ``n_videos`` normals is still
        consumed, so phase-wise drift plans stay stream-aligned).  The
        returned catalog keeps ``n_videos`` and the base ``theta`` but its
        :attr:`probabilities` are the drifted shares; chaining ``resample``
        calls models a catalog whose demand mix moves over time, which is
        what edge buffer re-allocation reacts to.

        Determinism: same current shares, same ``drift``, same seeded
        generator state ⇒ identical drifted shares.
        """
        if drift < 0:
            raise WorkloadError(f"drift must be >= 0, got {drift}")
        noise = rng.standard_normal(self.n_videos)
        weights = self._probabilities * np.exp(drift * noise)
        drifted = ZipfCatalog(self.n_videos, self.theta)
        drifted._probabilities = weights / weights.sum()
        return drifted
