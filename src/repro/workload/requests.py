"""Request objects and request-stream helpers.

A :class:`Request` ties an arrival time to a video identifier.  Single-video
experiments (all of the paper's figures) only need arrival times; the request
abstraction exists for the multi-video studies built on
:class:`~repro.workload.popularity.ZipfCatalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Iterable, Iterator, List, Sequence

from ..errors import WorkloadError

_REQUEST_IDS = count()


@dataclass(frozen=True)
class Request:
    """A customer request for one video.

    Attributes
    ----------
    time:
        Arrival time in seconds.
    video_id:
        Identifier of the requested video (0 for single-video experiments).
    request_id:
        Unique, monotonically increasing identifier.
    """

    time: float
    video_id: int = 0
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))

    def __post_init__(self):
        if self.time < 0:
            raise WorkloadError(f"request time must be >= 0, got {self.time}")
        if self.video_id < 0:
            raise WorkloadError(f"video_id must be >= 0, got {self.video_id}")


def requests_from_times(times: Sequence[float], video_id: int = 0) -> List[Request]:
    """Wrap sorted arrival ``times`` into :class:`Request` objects.

    >>> [r.time for r in requests_from_times([1.0, 2.0])]
    [1.0, 2.0]
    """
    previous = -1.0
    requests: List[Request] = []
    for t in times:
        if t < previous:
            raise WorkloadError("arrival times must be sorted")
        previous = t
        requests.append(Request(time=float(t), video_id=video_id))
    return requests


def interleave(requests: Iterable[Request]) -> Iterator[Request]:
    """Yield requests in time order, validating monotonicity."""
    previous = -1.0
    for request in sorted(requests, key=lambda r: (r.time, r.request_id)):
        if request.time < previous:
            raise WorkloadError("request stream went backwards in time")
        previous = request.time
        yield request
