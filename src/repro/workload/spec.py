"""Declarative, digest-keyed workload specifications.

A :class:`WorkloadSpec` names an arrival process *by value*: a frozen,
hashable, picklable description that every layer of the stack (sweep
configs, runtime task payloads, cluster scenarios, the load generator,
the CLI) can carry where a scalar ``rate_per_hour`` used to be hardwired.
The spec — not a live :class:`~repro.workload.arrivals.ArrivalProcess`
object — is what travels across process and socket boundaries, and its
canonical SHA-256 :meth:`~WorkloadSpec.digest` is what keys the arrival
trace cache and checkpoint journal: the same spec yields the same digest
in every interpreter, so cache hits and checkpoint resumes survive
re-parsing, pickling, and multi-host dispatch.

The human-facing form is a compact spec string (``--workload`` on the
CLI), parsed by :func:`parse_workload`::

    300                               # constant Poisson, 300 req/h
    diurnal:child,peak=300            # 24h day/night profile
    flash:peak=900,decay=1.5,start=20 # premiere surge at hour 20
    mmpp:rates=30|300,sojourn=1800|600
    ring:peak=600,rings=3,delay=0.5,atten=0.5,decay=1
    trace:arrivals.txt                # recorded arrival seconds
    diurnal:child,peak=300+flash:peak=900,decay=1.5,start=20   # superpose

Malformed strings raise :class:`~repro.errors.ConfigurationError` whose
message embeds the full grammar, so a CLI typo produces a usage hint, not
a traceback.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..units import HOUR
from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    SuperposedArrivals,
    TraceArrivals,
)
from .diurnal import adult_evening_profile, child_daytime_profile
from .flash import FlashCrowd
from .spatial import EventRings

#: Reference horizon used to summarise transient workloads (flash crowds,
#: event rings) with a single mean rate — one broadcast day.
REFERENCE_DAY_HOURS = 24.0

#: Version tag mixed into every digest; bump only on a deliberate,
#: documented change to the canonical encoding (it invalidates caches).
_DIGEST_VERSION = "repro-workload:1"

WORKLOAD_GRAMMAR = """\
workload spec grammar (superpose parts with '+'):
  RATE                                   constant Poisson at RATE req/hour
  poisson:RATE                           same, explicit
  deterministic:interval=SEC[,offset=SEC]
                                         evenly spaced arrivals
  diurnal:PROFILE,peak=RATE              24h profile; PROFILE: child | adult
  flash:peak=RATE,decay=H[,base=RATE][,start=H]
                                         premiere surge decaying over H hours
  mmpp:rates=R|R|..,sojourn=S|S|..       Markov-modulated Poisson
                                         (rates req/hour, sojourns seconds)
  ring:peak=RATE,rings=N,delay=H,atten=F,decay=H[,base=RATE][,start=H]
                                         spatio-temporal event rings
                                         (fire-event model; atten in (0,1])
  trace:PATH                             replay arrival seconds, one per line
example: 'diurnal:child,peak=300+flash:peak=900,decay=1.5,start=20'"""

_DIURNAL_PROFILES = ("child", "adult")
_KINDS = (
    "poisson",
    "deterministic",
    "diurnal",
    "flash",
    "mmpp",
    "ring",
    "trace",
    "superpose",
)


def _bad_spec(text: str, why: str) -> ConfigurationError:
    return ConfigurationError(
        f"invalid workload spec {text!r}: {why}\n\n{WORKLOAD_GRAMMAR}"
    )


def _format_number(value: float) -> str:
    return f"{value:g}"


def _canonical(value: Any) -> str:
    """Deterministic, type-tagged encoding used for :meth:`WorkloadSpec.digest`.

    Standalone on purpose: :mod:`repro.runtime.seeds` imports this module, so
    reusing :func:`repro.runtime.checkpoint.spec_digest` here would create an
    import cycle.  The encoding distinguishes types (``1`` vs ``1.0`` vs
    ``"1"``) so distinct specs can never collide structurally.
    """
    if isinstance(value, WorkloadSpec):
        return f"w({json.dumps(value.kind)},{_canonical(value.params)})"
    if isinstance(value, bool):
        return f"b:{int(value)}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, str):
        return f"s:{json.dumps(value)}"
    if isinstance(value, tuple):
        return "(" + ",".join(_canonical(item) for item in value) + ")"
    raise ConfigurationError(
        f"workload spec parameters must be numbers, strings, or tuples; "
        f"got {type(value).__name__}"
    )


@dataclass(frozen=True)
class WorkloadSpec:
    """A frozen, digestable description of an arrival process.

    ``params`` is a tuple of ``(name, value)`` pairs in the canonical order
    produced by the classmethod constructors; values are plain numbers,
    strings, tuples, or nested specs, so instances hash, pickle, and digest
    stably across processes.  Use the classmethods (or
    :func:`parse_workload` / :func:`as_workload`) rather than the raw
    constructor.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...]

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; expected one of "
                f"{', '.join(_KINDS)}"
            )
        if not isinstance(self.params, tuple) or any(
            not (isinstance(pair, tuple) and len(pair) == 2 and isinstance(pair[0], str))
            for pair in self.params
        ):
            raise ConfigurationError(
                "WorkloadSpec.params must be a tuple of (name, value) pairs"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def poisson(cls, rate_per_hour: float) -> "WorkloadSpec":
        rate = float(rate_per_hour)
        if rate <= 0:
            raise ConfigurationError(f"poisson rate must be > 0, got {rate}")
        return cls("poisson", (("rate_per_hour", rate),))

    @classmethod
    def deterministic(cls, interval: float, offset: float = 0.0) -> "WorkloadSpec":
        DeterministicArrivals(interval, offset)  # validate eagerly
        return cls(
            "deterministic",
            (("interval", float(interval)), ("offset", float(offset))),
        )

    @classmethod
    def diurnal(cls, profile: str, peak_rate_per_hour: float) -> "WorkloadSpec":
        if profile not in _DIURNAL_PROFILES:
            raise ConfigurationError(
                f"unknown diurnal profile {profile!r}; expected one of "
                f"{', '.join(_DIURNAL_PROFILES)}"
            )
        peak = float(peak_rate_per_hour)
        if peak <= 0:
            raise ConfigurationError(f"diurnal peak must be > 0, got {peak}")
        return cls("diurnal", (("profile", profile), ("peak_rate_per_hour", peak)))

    @classmethod
    def flash(
        cls,
        peak_rate_per_hour: float,
        decay_hours: float,
        base_rate_per_hour: float = 0.0,
        start_hours: float = 0.0,
    ) -> "WorkloadSpec":
        FlashCrowd(peak_rate_per_hour, decay_hours, base_rate_per_hour, start_hours)
        return cls(
            "flash",
            (
                ("peak_rate_per_hour", float(peak_rate_per_hour)),
                ("decay_hours", float(decay_hours)),
                ("base_rate_per_hour", float(base_rate_per_hour)),
                ("start_hours", float(start_hours)),
            ),
        )

    @classmethod
    def mmpp(
        cls, rates_per_hour: Sequence[float], mean_sojourn: Sequence[float]
    ) -> "WorkloadSpec":
        MMPPArrivals(rates_per_hour, mean_sojourn)
        return cls(
            "mmpp",
            (
                ("rates_per_hour", tuple(float(r) for r in rates_per_hour)),
                ("mean_sojourn", tuple(float(s) for s in mean_sojourn)),
            ),
        )

    @classmethod
    def ring(
        cls,
        peak_rate_per_hour: float,
        n_rings: int,
        ring_delay_hours: float,
        attenuation: float,
        decay_hours: float,
        base_rate_per_hour: float = 0.0,
        start_hours: float = 0.0,
    ) -> "WorkloadSpec":
        EventRings(
            peak_rate_per_hour,
            n_rings,
            ring_delay_hours,
            attenuation,
            decay_hours,
            base_rate_per_hour,
            start_hours,
        )
        return cls(
            "ring",
            (
                ("peak_rate_per_hour", float(peak_rate_per_hour)),
                ("n_rings", int(n_rings)),
                ("ring_delay_hours", float(ring_delay_hours)),
                ("attenuation", float(attenuation)),
                ("decay_hours", float(decay_hours)),
                ("base_rate_per_hour", float(base_rate_per_hour)),
                ("start_hours", float(start_hours)),
            ),
        )

    @classmethod
    def trace(cls, times: Sequence[float]) -> "WorkloadSpec":
        """A replayed trace, stored *by value* so the spec (and its digest)
        is self-contained — workers never need the original file."""
        process = TraceArrivals(times)
        if not len(process.times):
            raise ConfigurationError("trace workload must contain at least one arrival")
        return cls("trace", (("times", tuple(float(t) for t in process.times)),))

    @classmethod
    def superpose(cls, parts: Sequence["WorkloadSpec"]) -> "WorkloadSpec":
        flattened = []
        for part in parts:
            if not isinstance(part, WorkloadSpec):
                raise ConfigurationError(
                    f"superpose parts must be WorkloadSpec, got {type(part).__name__}"
                )
            if part.kind == "superpose":
                flattened.extend(part._get("parts"))
            else:
                flattened.append(part)
        if len(flattened) < 2:
            raise ConfigurationError("superpose needs at least two parts")
        return cls("superpose", (("parts", tuple(flattened)),))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def _get(self, name: str) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        raise ConfigurationError(f"workload spec {self.kind!r} has no param {name!r}")

    def process(self) -> ArrivalProcess:
        """Materialise the described :class:`ArrivalProcess`."""
        if self.kind == "poisson":
            return PoissonArrivals(self._get("rate_per_hour"))
        if self.kind == "deterministic":
            return DeterministicArrivals(self._get("interval"), self._get("offset"))
        if self.kind == "diurnal":
            from .arrivals import NonHomogeneousPoisson

            profile = self._diurnal_profile()
            return NonHomogeneousPoisson(
                rate_fn=profile.rate_at,
                max_rate_per_hour=profile.max_rate_per_hour,
            )
        if self.kind == "flash":
            return FlashCrowd(
                self._get("peak_rate_per_hour"),
                self._get("decay_hours"),
                self._get("base_rate_per_hour"),
                self._get("start_hours"),
            )
        if self.kind == "mmpp":
            return MMPPArrivals(self._get("rates_per_hour"), self._get("mean_sojourn"))
        if self.kind == "ring":
            return EventRings(
                self._get("peak_rate_per_hour"),
                self._get("n_rings"),
                self._get("ring_delay_hours"),
                self._get("attenuation"),
                self._get("decay_hours"),
                self._get("base_rate_per_hour"),
                self._get("start_hours"),
            )
        if self.kind == "trace":
            return TraceArrivals(self._get("times"))
        return SuperposedArrivals([part.process() for part in self._get("parts")])

    def _diurnal_profile(self):
        peak = self._get("peak_rate_per_hour")
        if self._get("profile") == "child":
            return child_daytime_profile(peak)
        return adult_evening_profile(peak)

    @property
    def mean_rate_per_hour(self) -> float:
        """Nominal mean rate, used for horizon sizing and series labelling.

        Transient kinds (flash, ring) are averaged over
        :data:`REFERENCE_DAY_HOURS`; traces over their own span.
        """
        if self.kind == "poisson":
            return self._get("rate_per_hour")
        if self.kind == "deterministic":
            return HOUR / self._get("interval")
        if self.kind == "diurnal":
            return self._diurnal_profile().mean_rate_per_hour
        if self.kind in ("flash", "ring"):
            horizon = REFERENCE_DAY_HOURS * HOUR
            return self.process().expected_requests(horizon) / REFERENCE_DAY_HOURS
        if self.kind == "mmpp":
            rates = self._get("rates_per_hour")
            sojourn = self._get("mean_sojourn")
            return sum(r * s for r, s in zip(rates, sojourn)) / sum(sojourn)
        if self.kind == "trace":
            times = self._get("times")
            span_hours = times[-1] / HOUR if times[-1] > 0 else 0.0
            return len(times) / span_hours if span_hours > 0 else float(len(times))
        return sum(part.mean_rate_per_hour for part in self._get("parts"))

    def label(self) -> str:
        """Compact human-readable form (round-trippable except ``trace``)."""
        if self.kind == "poisson":
            return f"poisson:{_format_number(self._get('rate_per_hour'))}"
        if self.kind == "deterministic":
            text = f"deterministic:interval={_format_number(self._get('interval'))}"
            if self._get("offset"):
                text += f",offset={_format_number(self._get('offset'))}"
            return text
        if self.kind == "diurnal":
            return (
                f"diurnal:{self._get('profile')},"
                f"peak={_format_number(self._get('peak_rate_per_hour'))}"
            )
        if self.kind == "flash":
            text = (
                f"flash:peak={_format_number(self._get('peak_rate_per_hour'))},"
                f"decay={_format_number(self._get('decay_hours'))}"
            )
            if self._get("base_rate_per_hour"):
                text += f",base={_format_number(self._get('base_rate_per_hour'))}"
            if self._get("start_hours"):
                text += f",start={_format_number(self._get('start_hours'))}"
            return text
        if self.kind == "mmpp":
            rates = "|".join(_format_number(r) for r in self._get("rates_per_hour"))
            sojourn = "|".join(_format_number(s) for s in self._get("mean_sojourn"))
            return f"mmpp:rates={rates},sojourn={sojourn}"
        if self.kind == "ring":
            text = (
                f"ring:peak={_format_number(self._get('peak_rate_per_hour'))},"
                f"rings={self._get('n_rings')},"
                f"delay={_format_number(self._get('ring_delay_hours'))},"
                f"atten={_format_number(self._get('attenuation'))},"
                f"decay={_format_number(self._get('decay_hours'))}"
            )
            if self._get("base_rate_per_hour"):
                text += f",base={_format_number(self._get('base_rate_per_hour'))}"
            if self._get("start_hours"):
                text += f",start={_format_number(self._get('start_hours'))}"
            return text
        if self.kind == "trace":
            return f"trace:{len(self._get('times'))}pts"
        return "+".join(part.label() for part in self._get("parts"))

    def digest(self) -> str:
        """Canonical SHA-256 digest of the spec (stable across processes)."""
        payload = f"{_DIGEST_VERSION}:{_canonical(self)}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (tuples become lists; nested specs recurse)."""

        def _plain(value: Any) -> Any:
            if isinstance(value, WorkloadSpec):
                return value.to_dict()
            if isinstance(value, tuple):
                return [_plain(item) for item in value]
            return value

        return {
            "kind": self.kind,
            "params": {name: _plain(value) for name, value in self.params},
        }


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------


def _parse_float(text: str, field: str, source: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise _bad_spec(source, f"{field} must be a number, got {text!r}") from None


def _parse_pairs(
    body: str,
    source: str,
    *,
    required: Sequence[str],
    optional: Sequence[str] = (),
) -> Dict[str, str]:
    pairs: Dict[str, str] = {}
    for token in body.split(","):
        token = token.strip()
        if not token:
            raise _bad_spec(source, "empty parameter")
        if "=" not in token:
            raise _bad_spec(source, f"expected key=value, got {token!r}")
        key, _, value = token.partition("=")
        key = key.strip()
        if key not in (*required, *optional):
            raise _bad_spec(
                source,
                f"unknown parameter {key!r} (accepted: "
                f"{', '.join((*required, *optional))})",
            )
        if key in pairs:
            raise _bad_spec(source, f"duplicate parameter {key!r}")
        pairs[key] = value.strip()
    for key in required:
        if key not in pairs:
            raise _bad_spec(source, f"missing required parameter {key!r}")
    return pairs


def _parse_single(text: str) -> WorkloadSpec:
    spec_text = text.strip()
    if not spec_text:
        raise _bad_spec(text, "empty spec")
    if ":" not in spec_text:
        try:
            rate = float(spec_text)
        except ValueError:
            raise _bad_spec(
                spec_text, "expected a number or kind:params"
            ) from None
        if rate <= 0:
            raise _bad_spec(spec_text, f"rate must be > 0, got {rate}")
        return WorkloadSpec.poisson(rate)

    kind, _, body = spec_text.partition(":")
    kind = kind.strip().lower()
    body = body.strip()

    try:
        if kind == "poisson":
            pairs = (
                _parse_pairs(body, spec_text, required=("rate",))
                if "=" in body
                else {"rate": body}
            )
            rate = _parse_float(pairs["rate"], "rate", spec_text)
            if rate <= 0:
                raise _bad_spec(spec_text, f"rate must be > 0, got {rate}")
            return WorkloadSpec.poisson(rate)

        if kind == "deterministic":
            pairs = _parse_pairs(
                body, spec_text, required=("interval",), optional=("offset",)
            )
            return WorkloadSpec.deterministic(
                _parse_float(pairs["interval"], "interval", spec_text),
                _parse_float(pairs.get("offset", "0"), "offset", spec_text),
            )

        if kind == "diurnal":
            profile, _, rest = body.partition(",")
            profile = profile.strip().lower()
            if profile not in _DIURNAL_PROFILES:
                raise _bad_spec(
                    spec_text,
                    f"diurnal profile must be one of {', '.join(_DIURNAL_PROFILES)}; "
                    f"got {profile!r}",
                )
            pairs = _parse_pairs(rest, spec_text, required=("peak",))
            return WorkloadSpec.diurnal(
                profile, _parse_float(pairs["peak"], "peak", spec_text)
            )

        if kind == "flash":
            pairs = _parse_pairs(
                body,
                spec_text,
                required=("peak", "decay"),
                optional=("base", "start"),
            )
            return WorkloadSpec.flash(
                _parse_float(pairs["peak"], "peak", spec_text),
                _parse_float(pairs["decay"], "decay", spec_text),
                _parse_float(pairs.get("base", "0"), "base", spec_text),
                _parse_float(pairs.get("start", "0"), "start", spec_text),
            )

        if kind == "mmpp":
            pairs = _parse_pairs(body, spec_text, required=("rates", "sojourn"))
            rates = [
                _parse_float(item, "rates", spec_text)
                for item in pairs["rates"].split("|")
            ]
            sojourn = [
                _parse_float(item, "sojourn", spec_text)
                for item in pairs["sojourn"].split("|")
            ]
            return WorkloadSpec.mmpp(rates, sojourn)

        if kind == "ring":
            pairs = _parse_pairs(
                body,
                spec_text,
                required=("peak", "rings", "delay", "atten", "decay"),
                optional=("base", "start"),
            )
            try:
                n_rings = int(pairs["rings"])
            except ValueError:
                raise _bad_spec(
                    spec_text, f"rings must be an integer, got {pairs['rings']!r}"
                ) from None
            return WorkloadSpec.ring(
                _parse_float(pairs["peak"], "peak", spec_text),
                n_rings,
                _parse_float(pairs["delay"], "delay", spec_text),
                _parse_float(pairs["atten"], "atten", spec_text),
                _parse_float(pairs["decay"], "decay", spec_text),
                _parse_float(pairs.get("base", "0"), "base", spec_text),
                _parse_float(pairs.get("start", "0"), "start", spec_text),
            )

        if kind == "trace":
            if not body:
                raise _bad_spec(spec_text, "trace needs a file path")
            return _load_trace(body, spec_text)
    except ConfigurationError:
        raise
    except Exception as exc:  # WorkloadError from eager validation, etc.
        raise _bad_spec(spec_text, str(exc)) from exc

    raise _bad_spec(
        spec_text,
        f"unknown workload kind {kind!r}",
    )


def _load_trace(path: str, source: str) -> WorkloadSpec:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise _bad_spec(source, f"cannot read trace file: {exc}") from exc
    times = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            times.append(float(stripped))
        except ValueError:
            raise _bad_spec(
                source,
                f"trace file {path}:{lineno}: expected one arrival time "
                f"(seconds) per line, got {stripped!r}",
            ) from None
    if not times:
        raise _bad_spec(source, f"trace file {path} contains no arrival times")
    return WorkloadSpec.trace(times)


def parse_workload(text: str) -> WorkloadSpec:
    """Parse a workload spec string (see :data:`WORKLOAD_GRAMMAR`).

    >>> parse_workload("300").kind
    'poisson'
    >>> parse_workload("diurnal:child,peak=300+flash:peak=900,decay=1.5").kind
    'superpose'
    """
    if not isinstance(text, str):
        raise ConfigurationError(
            f"workload spec must be a string, got {type(text).__name__}"
        )
    parts = [part for part in text.split("+")]
    if any(not part.strip() for part in parts):
        raise _bad_spec(text, "empty superposition component")
    specs = [_parse_single(part) for part in parts]
    if len(specs) == 1:
        return specs[0]
    return WorkloadSpec.superpose(specs)


WorkloadLike = Union[float, int, str, WorkloadSpec, ArrivalProcess]


def as_workload(value: WorkloadLike) -> WorkloadSpec:
    """Coerce a rate, spec string, spec, or known process into a spec.

    Arbitrary :class:`ArrivalProcess` subclasses cannot be digested (their
    behaviour is opaque), so only the library's named process types are
    accepted; anything else should be wrapped in a :class:`WorkloadSpec`
    by the caller.
    """
    if isinstance(value, WorkloadSpec):
        return value
    if isinstance(value, bool):
        raise ConfigurationError("workload cannot be a bool")
    if isinstance(value, (int, float)):
        return WorkloadSpec.poisson(float(value))
    if isinstance(value, str):
        return parse_workload(value)
    if isinstance(value, PoissonArrivals):
        return WorkloadSpec.poisson(value.rate_per_hour)
    if isinstance(value, DeterministicArrivals):
        return WorkloadSpec.deterministic(value.interval, value.offset)
    if isinstance(value, EventRings):  # before FlashCrowd: both are NHPP
        return WorkloadSpec.ring(
            value.peak_rate_per_hour,
            value.n_rings,
            value.ring_delay_hours,
            value.attenuation,
            value.decay_hours,
            value.base_rate_per_hour,
            value.start_hours,
        )
    if isinstance(value, FlashCrowd):
        return WorkloadSpec.flash(
            value.peak_rate_per_hour,
            value.decay_hours,
            value.base_rate_per_hour,
            value.start_hours,
        )
    if isinstance(value, MMPPArrivals):
        return WorkloadSpec.mmpp(value.rates_per_hour, value.mean_sojourn)
    if isinstance(value, TraceArrivals):
        return WorkloadSpec.trace(value.times)
    if isinstance(value, ArrivalProcess):
        raise ConfigurationError(
            f"cannot derive a canonical workload digest for "
            f"{type(value).__name__}; pass a WorkloadSpec (or a spec string) "
            f"instead so caches and checkpoints stay keyed by value"
        )
    raise ConfigurationError(
        f"cannot interpret {type(value).__name__} as a workload; expected a "
        f"rate, a spec string, a WorkloadSpec, or a named ArrivalProcess"
    )


def workload_or_none(value: Optional[WorkloadLike]) -> Optional[WorkloadSpec]:
    """Like :func:`as_workload` but passes ``None`` through."""
    return None if value is None else as_workload(value)
