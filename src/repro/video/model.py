"""Base video abstractions.

The broadcasting protocols only ever need two things from a video: its
duration and how many bytes each moment of playout consumes.  For the
constant-bit-rate experiments (Figures 7 and 8) the consumption rate is a
pure scale factor, so :class:`CBRVideo` defaults to ``rate = 1.0`` and all
bandwidths read directly in "multiples of the consumption rate ``b``" — the
exact unit of those figures.
"""

from __future__ import annotations

import abc

from ..errors import VideoModelError
from ..units import TWO_HOURS


class Video(abc.ABC):
    """A video a VOD server can distribute."""

    @property
    @abc.abstractmethod
    def duration(self) -> float:
        """Playback duration ``D`` in seconds."""

    @property
    @abc.abstractmethod
    def total_bytes(self) -> float:
        """Total payload size in bytes (abstract units for CBR)."""

    @abc.abstractmethod
    def cumulative_bytes(self, playout_time: float) -> float:
        """Bytes consumed by playout after ``playout_time`` seconds.

        Monotone non-decreasing, 0 at ``playout_time <= 0`` and
        :attr:`total_bytes` at ``playout_time >= duration``.
        """

    @property
    def average_bandwidth(self) -> float:
        """Long-run consumption rate in bytes/second."""
        return self.total_bytes / self.duration


class CBRVideo(Video):
    """Constant-bit-rate video: ``rate`` bytes consumed per second.

    Parameters
    ----------
    duration:
        Playback duration in seconds (default: the canonical two-hour video
        of the paper's evaluation).
    rate:
        Consumption rate ``b`` in bytes/second; defaults to 1.0 so that
        bandwidths are reported in multiples of ``b``.

    Examples
    --------
    >>> video = CBRVideo(duration=7200.0)
    >>> video.cumulative_bytes(3600.0)
    3600.0
    """

    def __init__(self, duration: float = TWO_HOURS, rate: float = 1.0):
        if duration <= 0:
            raise VideoModelError(f"duration must be > 0, got {duration}")
        if rate <= 0:
            raise VideoModelError(f"rate must be > 0, got {rate}")
        self._duration = float(duration)
        self._rate = float(rate)

    @property
    def duration(self) -> float:
        return self._duration

    @property
    def rate(self) -> float:
        """Consumption rate ``b`` in bytes/second."""
        return self._rate

    @property
    def total_bytes(self) -> float:
        return self._duration * self._rate

    def cumulative_bytes(self, playout_time: float) -> float:
        clamped = min(max(playout_time, 0.0), self._duration)
        return clamped * self._rate

    def __repr__(self) -> str:
        return f"CBRVideo(duration={self._duration}, rate={self._rate})"
