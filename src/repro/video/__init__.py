"""Video models.

* :mod:`repro.video.model` — constant-bit-rate videos (the Figures 7/8 world,
  where bandwidth is measured in multiples of the consumption rate ``b``).
* :mod:`repro.video.vbr` — variable-bit-rate videos as per-second byte
  traces, with the statistics Section 4 of the paper quotes (average
  bandwidth, maximum bandwidth over one second).
* :mod:`repro.video.mpeg` — a seeded synthetic MPEG-style VBR trace
  generator (GOP structure + scene-level modulation).
* :mod:`repro.video.matrix` — a generated trace *calibrated* to the paper's
  published statistics for the DVD of *The Matrix* (8170 s, average
  636 KB/s, 1-second peak 951 KB/s).  See DESIGN.md, substitutions.
* :mod:`repro.video.segmentation` — equal-duration segmentation and
  per-segment bandwidth analysis (the DHB-a/b inputs).
"""

from .matrix import MATRIX_AVG_KBPS, MATRIX_DURATION, MATRIX_PEAK_KBPS, matrix_like_video
from .model import CBRVideo, Video
from .mpeg import MPEGConfig, generate_mpeg_trace
from .segmentation import SegmentedVideo, segment_video
from .vbr import VBRVideo

__all__ = [
    "CBRVideo",
    "MATRIX_AVG_KBPS",
    "MATRIX_DURATION",
    "MATRIX_PEAK_KBPS",
    "MPEGConfig",
    "SegmentedVideo",
    "VBRVideo",
    "Video",
    "generate_mpeg_trace",
    "matrix_like_video",
    "segment_video",
]
