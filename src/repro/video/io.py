"""Trace persistence: save/load per-second byte traces.

Lets users substitute their own measured VBR traces (e.g. a real DVD rip)
for the synthetic one — the "apply our DHB protocol to other videos" avenue
of the paper's future work.  The format is deliberately trivial: one byte
count per line, with ``#``-prefixed header comments.
"""

from __future__ import annotations

import pathlib
from typing import List, Union

import numpy as np

from ..errors import VideoModelError
from .vbr import VBRVideo

PathLike = Union[str, pathlib.Path]


def save_trace(video: VBRVideo, path: PathLike) -> None:
    """Write ``video``'s per-second trace to ``path``.

    >>> import tempfile, os
    >>> video = VBRVideo([10.0, 20.0], name="demo")
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     target = os.path.join(tmp, "demo.trace")
    ...     save_trace(video, target)
    ...     load_trace(target).total_bytes
    30.0
    """
    path = pathlib.Path(path)
    lines: List[str] = [
        f"# name: {video.name}",
        f"# duration_seconds: {int(video.duration)}",
        "# format: one bytes-per-second value per line",
    ]
    lines.extend(f"{value:.6f}" for value in video.bytes_per_second)
    path.write_text("\n".join(lines) + "\n")


def load_trace(path: PathLike, name: str = "") -> VBRVideo:
    """Read a per-second trace written by :func:`save_trace`.

    Header comments are optional; any ``#`` line is skipped.  Raises
    :class:`~repro.errors.VideoModelError` on malformed content.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise VideoModelError(f"trace file {path} does not exist")
    parsed_name = name
    values: List[float] = []
    for line_number, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if not parsed_name and line[1:].strip().startswith("name:"):
                parsed_name = line.split("name:", 1)[1].strip()
            continue
        try:
            values.append(float(line))
        except ValueError:
            raise VideoModelError(
                f"{path}:{line_number}: not a number: {line!r}"
            ) from None
    if not values:
        raise VideoModelError(f"trace file {path} holds no samples")
    return VBRVideo(np.asarray(values), name=parsed_name or path.stem)
