"""Variable-bit-rate videos as per-second byte traces.

Section 4 of the paper characterises a compressed video by exactly two
statistics of its byte schedule — the average bandwidth and the maximum
bandwidth over a period of one second — and by the per-segment byte totals
that derive from it.  A per-second byte trace captures everything those
computations need, so :class:`VBRVideo` stores one.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import VideoModelError
from .model import Video


class VBRVideo(Video):
    """A VBR video backed by a per-second byte trace.

    Parameters
    ----------
    bytes_per_second:
        ``bytes_per_second[k]`` is the number of bytes consumed by playout
        during second ``[k, k+1)``.  The video's duration is the trace
        length.
    name:
        Optional label used in reports.

    Examples
    --------
    >>> video = VBRVideo([100.0, 300.0, 200.0])
    >>> video.duration
    3.0
    >>> video.peak_bandwidth()
    300.0
    >>> video.cumulative_bytes(1.5)
    250.0
    """

    def __init__(self, bytes_per_second: Sequence[float], name: str = "vbr"):
        trace = np.asarray(bytes_per_second, dtype=float)
        if trace.ndim != 1 or len(trace) == 0:
            raise VideoModelError("trace must be a non-empty 1-D sequence")
        if np.any(trace < 0):
            raise VideoModelError("trace contains negative byte counts")
        if float(trace.sum()) <= 0:
            raise VideoModelError("trace carries no data")
        self._trace = trace
        self._cumulative = np.concatenate(([0.0], np.cumsum(trace)))
        self.name = name

    @property
    def bytes_per_second(self) -> np.ndarray:
        """The underlying per-second byte trace (read-only view)."""
        view = self._trace.view()
        view.flags.writeable = False
        return view

    @property
    def duration(self) -> float:
        return float(len(self._trace))

    @property
    def total_bytes(self) -> float:
        return float(self._cumulative[-1])

    def peak_bandwidth(self, window_seconds: int = 1) -> float:
        """Maximum bytes/second over any window of ``window_seconds``.

        ``window_seconds=1`` is the paper's "maximum bandwidth over a period
        of one second".
        """
        if window_seconds < 1 or window_seconds > len(self._trace):
            raise VideoModelError(
                f"window must be in [1, {len(self._trace)}], got {window_seconds}"
            )
        sums = self._cumulative[window_seconds:] - self._cumulative[:-window_seconds]
        return float(sums.max()) / window_seconds

    def cumulative_bytes(self, playout_time: float) -> float:
        """Bytes consumed by ``playout_time``, linear within each second."""
        t = min(max(playout_time, 0.0), self.duration)
        whole = int(math.floor(t))
        base = float(self._cumulative[whole])
        if whole >= len(self._trace):
            return base
        return base + (t - whole) * float(self._trace[whole])

    def playout_time_for_bytes(self, byte_offset: float) -> float:
        """Inverse of :meth:`cumulative_bytes`: when is byte ``byte_offset`` needed.

        Returns the earliest playout time at which cumulative consumption
        reaches ``byte_offset``.  Clamps to ``[0, duration]``.
        """
        if byte_offset <= 0:
            return 0.0
        if byte_offset >= self.total_bytes:
            return self.duration
        idx = int(np.searchsorted(self._cumulative, byte_offset, side="left")) - 1
        idx = max(idx, 0)
        within = byte_offset - float(self._cumulative[idx])
        rate = float(self._trace[idx])
        if rate <= 0:
            # The byte is first consumed at the start of the next busy second.
            while idx < len(self._trace) and self._trace[idx] <= 0:
                idx += 1
            return float(idx)
        return idx + within / rate

    def scaled(self, factor: float, name: str = "") -> "VBRVideo":
        """Return a copy with every byte count multiplied by ``factor``."""
        if factor <= 0:
            raise VideoModelError(f"scale factor must be > 0, got {factor}")
        return VBRVideo(self._trace * factor, name=name or f"{self.name}*{factor}")

    def __repr__(self) -> str:
        return (
            f"VBRVideo(name={self.name!r}, duration={self.duration:.0f}s, "
            f"avg={self.average_bandwidth:.1f} B/s, peak={self.peak_bandwidth():.1f} B/s)"
        )
