"""Synthetic MPEG-style VBR trace generation.

We cannot ship the DVD trace the paper analysed, so we synthesise one with
the structure real MPEG video exhibits (and that the paper's references [1]
Beran et al. and [9] Garrett & Willinger document):

* a periodic **GOP structure** — large I frames, medium P frames, small B
  frames, repeating e.g. ``IBBPBBPBBPBB`` at 24 frames/second;
* **scene-level modulation** — frame sizes within a scene share an activity
  level; scene changes redraw that level from a lognormal distribution and
  scene lengths are themselves random, which produces the slowly decaying
  autocorrelation (long-range-dependence-like behaviour) measured in real
  traces;
* **frame-level noise** — multiplicative lognormal jitter per frame.

The generator is fully determined by a :class:`numpy.random.Generator`, so a
given seed always yields byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import VideoModelError
from .vbr import VBRVideo


@dataclass(frozen=True)
class MPEGConfig:
    """Parameters of the synthetic MPEG trace generator.

    Frame-size means are expressed in bytes; the defaults approximate a DVD
    MPEG-2 encode at a mean rate in the 600–700 KB/s range before
    calibration.

    Attributes
    ----------
    fps:
        Frames per second (24 for film material).
    gop_pattern:
        Frame-type sequence of one group of pictures.
    i_mean, p_mean, b_mean:
        Mean frame sizes (bytes) for I, P and B frames at activity 1.0.
    frame_jitter_sigma:
        Sigma of the per-frame lognormal jitter.
    scene_sigma:
        Sigma of the lognormal scene-activity multiplier.
    scene_mean_length:
        Mean scene length in seconds (geometrically distributed).
    act_envelope:
        Slow, deterministic pacing multipliers applied over equal-length
        "acts" of the film (linearly interpolated).  Real features are not
        rate-stationary — action-heavy acts run well above the mean for many
        minutes — and this nonstationarity is exactly what makes work-ahead
        smoothing (DHB-c/d) profitable: the binding prefix of the cumulative
        consumption curve sits mid-film above the long-run average.  The
        default profile opens *quiet* (titles and establishing scenes run
        far below the mean bit rate — this is what lets the paper's second
        segment be broadcast only "every three slots"), peaks in the second
        act, and tails off.
    """

    fps: int = 24
    gop_pattern: str = "IBBPBBPBBPBB"
    i_mean: float = 60_000.0
    p_mean: float = 28_000.0
    b_mean: float = 12_000.0
    frame_jitter_sigma: float = 0.15
    scene_sigma: float = 0.12
    scene_mean_length: float = 8.0
    act_envelope: Tuple[float, ...] = (0.40, 1.15, 1.25, 1.08, 0.95, 0.70)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.VideoModelError` on bad parameters."""
        if self.fps < 1:
            raise VideoModelError(f"fps must be >= 1, got {self.fps}")
        if not self.gop_pattern or set(self.gop_pattern) - set("IPB"):
            raise VideoModelError(f"bad GOP pattern {self.gop_pattern!r}")
        if "I" not in self.gop_pattern:
            raise VideoModelError("GOP pattern needs at least one I frame")
        for label, value in (
            ("i_mean", self.i_mean),
            ("p_mean", self.p_mean),
            ("b_mean", self.b_mean),
        ):
            if value <= 0:
                raise VideoModelError(f"{label} must be > 0, got {value}")
        if self.frame_jitter_sigma < 0 or self.scene_sigma < 0:
            raise VideoModelError("sigmas must be >= 0")
        if self.scene_mean_length <= 0:
            raise VideoModelError("scene_mean_length must be > 0")
        if not self.act_envelope or any(a <= 0 for a in self.act_envelope):
            raise VideoModelError("act_envelope needs positive multipliers")

    @property
    def mean_frame_size(self) -> float:
        """Expected frame size (bytes) at activity 1.0, averaged over the GOP."""
        sizes = {"I": self.i_mean, "P": self.p_mean, "B": self.b_mean}
        return sum(sizes[c] for c in self.gop_pattern) / len(self.gop_pattern)

    @property
    def mean_rate(self) -> float:
        """Expected bytes/second at activity 1.0 (ignoring jitter inflation)."""
        return self.mean_frame_size * self.fps


def generate_mpeg_trace(
    duration_seconds: int,
    rng: np.random.Generator,
    config: MPEGConfig = MPEGConfig(),
    name: str = "synthetic-mpeg",
) -> VBRVideo:
    """Generate a seeded synthetic MPEG VBR video of ``duration_seconds``.

    Returns a :class:`~repro.video.vbr.VBRVideo` whose per-second byte counts
    aggregate the synthetic frame sizes.

    Examples
    --------
    >>> import numpy as np
    >>> video = generate_mpeg_trace(60, np.random.default_rng(7))
    >>> video.duration
    60.0
    """
    config.validate()
    if duration_seconds < 1:
        raise VideoModelError(f"duration must be >= 1 s, got {duration_seconds}")

    n_frames = duration_seconds * config.fps
    type_means = {"I": config.i_mean, "P": config.p_mean, "B": config.b_mean}
    pattern = np.array([type_means[c] for c in config.gop_pattern])
    base_sizes = np.resize(pattern, n_frames)

    # Scene-level activity: piecewise-constant lognormal multiplier with
    # geometrically distributed scene lengths (in whole seconds).
    activity = np.empty(n_frames)
    frame = 0
    while frame < n_frames:
        scene_seconds = int(rng.geometric(1.0 / config.scene_mean_length))
        scene_frames = min(scene_seconds * config.fps, n_frames - frame)
        # Mean-one lognormal: exp(N(-sigma^2/2, sigma)).
        level = float(
            rng.lognormal(-config.scene_sigma**2 / 2.0, config.scene_sigma)
        )
        activity[frame : frame + scene_frames] = level
        frame += scene_frames

    jitter = rng.lognormal(
        -config.frame_jitter_sigma**2 / 2.0, config.frame_jitter_sigma, size=n_frames
    )
    # Act-level pacing: interpolate the envelope over the film's run time.
    act_points = np.asarray(config.act_envelope, dtype=float)
    frame_positions = np.linspace(0.0, len(act_points) - 1.0, n_frames)
    envelope = np.interp(frame_positions, np.arange(len(act_points)), act_points)
    frame_sizes = base_sizes * activity * jitter * envelope

    per_second = frame_sizes.reshape(duration_seconds, config.fps).sum(axis=1)
    return VBRVideo(per_second, name=name)
