"""Equal-duration segmentation and per-segment bandwidth analysis.

Every protocol in the paper partitions the video into ``n`` segments of
equal duration ``d = D / n``.  For compressed video, Section 4 additionally
needs the *byte total of each segment* (solution DHB-b sets the stream
bandwidth to the maximum per-segment average) — this module computes those.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..errors import VideoModelError
from .model import Video


@dataclass(frozen=True)
class SegmentedVideo:
    """A video partitioned into equal-duration segments.

    Attributes
    ----------
    video:
        The underlying video.
    n_segments:
        Number of segments ``n``.
    segment_duration:
        Segment duration ``d`` in seconds.
    segment_bytes:
        ``segment_bytes[j]`` is the byte total of segment ``S_{j+1}``
        (0-based list, 1-based segment naming as in the paper).
    """

    video: Video
    n_segments: int
    segment_duration: float
    segment_bytes: List[float]

    @property
    def max_segment_bytes(self) -> float:
        """Largest per-segment byte total."""
        return max(self.segment_bytes)

    @property
    def max_segment_rate(self) -> float:
        """Maximum of the per-segment average bandwidths (bytes/second).

        This is the stream bandwidth of the paper's solution DHB-b: every
        segment must be fully downloadable within one slot, so each stream
        must carry the heaviest segment in ``d`` seconds.
        """
        return self.max_segment_bytes / self.segment_duration

    def segment_rate(self, segment: int) -> float:
        """Average bandwidth of 1-based ``segment`` in bytes/second."""
        if not 1 <= segment <= self.n_segments:
            raise VideoModelError(
                f"segment {segment} outside 1..{self.n_segments}"
            )
        return self.segment_bytes[segment - 1] / self.segment_duration


def segments_for_wait(duration: float, max_wait: float) -> int:
    """Number of equal segments needed to cap the waiting time at ``max_wait``.

    The maximum waiting time of a slotted protocol equals the segment
    duration, so ``n = ceil(D / max_wait)``.  For the paper's video:

    >>> segments_for_wait(8170.0, 60.0)
    137
    """
    if duration <= 0 or max_wait <= 0:
        raise VideoModelError("duration and max_wait must be > 0")
    return int(math.ceil(duration / max_wait - 1e-12))


def segment_video(video: Video, n_segments: int) -> SegmentedVideo:
    """Partition ``video`` into ``n_segments`` equal-duration segments.

    Byte totals are computed from the video's cumulative-consumption curve,
    so fractional-second segment boundaries are handled exactly (segment
    durations need not align with trace seconds).

    Examples
    --------
    >>> from .model import CBRVideo
    >>> seg = segment_video(CBRVideo(duration=100.0, rate=2.0), 4)
    >>> seg.segment_duration
    25.0
    >>> seg.segment_bytes
    [50.0, 50.0, 50.0, 50.0]
    """
    if n_segments < 1:
        raise VideoModelError(f"need >= 1 segment, got {n_segments}")
    d = video.duration / n_segments
    boundaries = [video.cumulative_bytes(j * d) for j in range(n_segments + 1)]
    segment_bytes = [boundaries[j + 1] - boundaries[j] for j in range(n_segments)]
    if any(b < -1e-9 for b in segment_bytes):
        raise VideoModelError("cumulative byte curve is not monotone")
    return SegmentedVideo(
        video=video,
        n_segments=n_segments,
        segment_duration=d,
        segment_bytes=[max(b, 0.0) for b in segment_bytes],
    )
