"""A synthetic stand-in for the paper's *The Matrix* DVD trace.

Section 4 analyses a DVD MPEG encode of *The Matrix* and quotes three
statistics:

* duration **8170 seconds** (2 h 16 min 10 s),
* **average** bandwidth **636 KB/s**,
* **maximum bandwidth over one second**: **951 KB/s**.

We cannot redistribute that trace, so :func:`matrix_like_video` generates a
synthetic MPEG trace (:mod:`repro.video.mpeg`) and *calibrates* it with an
affine transform so that its mean and 1-second peak match the published
numbers exactly (to within floating-point rounding).  Every downstream
computation of Section 4 — segment byte totals, the DHB-a/b/c/d rates and
periods — consumes only the per-second byte schedule, so the substitution
exercises the identical code paths (see DESIGN.md §3).
"""

from __future__ import annotations

import numpy as np

from ..errors import VideoModelError
from ..units import KILOBYTE
from .mpeg import MPEGConfig, generate_mpeg_trace
from .vbr import VBRVideo

#: Duration of the paper's trace in seconds (2 h 16 min 10 s).
MATRIX_DURATION = 8170
#: Average bandwidth quoted by the paper, KB/s.
MATRIX_AVG_KBPS = 636.0
#: Maximum 1-second bandwidth quoted by the paper, KB/s.
MATRIX_PEAK_KBPS = 951.0

#: Default seed: any fixed value works; this one yields a well-behaved trace
#: (strictly positive after calibration, realistic peak-to-mean ratio).
DEFAULT_SEED = 20010401  # ICDCS 2001, April.


def calibrate_trace(
    trace: np.ndarray, target_mean: float, target_peak: float
) -> np.ndarray:
    """Affinely map ``trace`` so its mean and max hit the targets exactly.

    The transform ``y = a + s * x`` with ``s = (peak - mean)/(max(x) -
    mean(x))`` preserves the *shape* of the trace (all autocorrelation and
    burst structure) while pinning the two statistics the paper reports.

    Raises
    ------
    VideoModelError
        If the transform would produce non-positive byte counts (the source
        trace was too bursty downward for the requested statistics).
    """
    if target_peak <= target_mean:
        raise VideoModelError(
            f"peak ({target_peak}) must exceed mean ({target_mean})"
        )
    source_mean = float(trace.mean())
    source_peak = float(trace.max())
    if source_peak <= source_mean:
        raise VideoModelError("source trace is constant; cannot calibrate")
    scale = (target_peak - target_mean) / (source_peak - source_mean)
    offset = target_mean - scale * source_mean
    calibrated = offset + scale * trace
    if float(calibrated.min()) <= 0:
        raise VideoModelError(
            "calibration produced non-positive rates; use a less bursty source"
        )
    return calibrated


def matrix_like_video(seed: int = DEFAULT_SEED) -> VBRVideo:
    """Build the calibrated Matrix-like VBR video used by Figure 9.

    Examples
    --------
    >>> video = matrix_like_video()
    >>> video.duration
    8170.0
    >>> round(video.average_bandwidth / 1024.0)
    636
    >>> round(video.peak_bandwidth() / 1024.0)
    951
    """
    rng = np.random.default_rng(seed)
    raw = generate_mpeg_trace(MATRIX_DURATION, rng, MPEGConfig(), name="matrix-raw")
    calibrated = calibrate_trace(
        np.asarray(raw.bytes_per_second),
        target_mean=MATRIX_AVG_KBPS * KILOBYTE,
        target_peak=MATRIX_PEAK_KBPS * KILOBYTE,
    )
    return VBRVideo(calibrated, name="matrix-like")
