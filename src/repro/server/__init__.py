"""VOD server resource model: channel pools, admission, blocking.

The protocols in :mod:`repro.protocols` measure how much bandwidth a policy
*wants*; a real server has a finite channel pool and must block or queue
what does not fit.  This subpackage supplies that substrate:

* :mod:`repro.server.channels` — a channel pool with allocation accounting,
  plus a plain unicast VOD protocol (one dedicated stream per customer, no
  sharing — the cost baseline the paper's introduction laments) with
  blocking, validated against the Erlang-B formula.
* :mod:`repro.server.provisioning` — catalog-level capacity planning:
  aggregate per-slot load across many titles, overflow-probability
  quantiles, statistical-multiplexing gains.
"""

from .channels import ChannelPool, UnicastVODServer
from .provisioning import ProvisioningResult, provision_catalog

__all__ = [
    "ChannelPool",
    "ProvisioningResult",
    "UnicastVODServer",
    "provision_catalog",
]
