"""Server capacity provisioning over a multi-video catalog.

The paper measures per-video bandwidth; an operator provisions a *server*:
how many channels cover a whole catalog's aggregate demand, and to what
overflow probability?  This module runs one slotted protocol instance per
title over a shared timeline, sums the per-slot loads, and reduces the
aggregate to provisioning numbers (mean, quantiles, capacity for a target
overflow probability).

Statistical multiplexing is the payoff being quantified: DHB titles peak at
different times, so the capacity for a 10⁻³ overflow is far below the sum
of per-title peaks — while a fixed protocol's aggregate is exactly
``titles × allocation`` forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Union

import numpy as np

from ..errors import ConfigurationError
from ..sim.rng import RandomStreams
from ..sim.slotted import SlottedModel, SlottedSimulation
from ..workload.arrivals import ArrivalProcess, PoissonArrivals
from ..workload.spec import WorkloadSpec

#: What one catalog title's demand may be specified as.
TitleWorkload = Union[float, int, WorkloadSpec, ArrivalProcess]


@dataclass(frozen=True)
class ProvisioningResult:
    """Aggregate load statistics for a catalog simulation.

    Attributes
    ----------
    aggregate:
        Per-slot total stream counts across all titles (post-warmup).
    per_title_means:
        Mean streams per title.
    """

    aggregate: np.ndarray
    per_title_means: List[float]

    @property
    def mean_streams(self) -> float:
        """Average aggregate server load in streams."""
        return float(self.aggregate.mean())

    @property
    def peak_streams(self) -> int:
        """Largest observed aggregate load."""
        return int(self.aggregate.max())

    def quantile(self, q: float) -> float:
        """The ``q`` quantile of the aggregate load (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1], got {q}")
        return float(np.quantile(self.aggregate, q))

    def capacity_for_overflow(self, overflow_probability: float) -> int:
        """Smallest channel count whose overflow fraction is below target.

        "Overflow" means a slot whose aggregate demand exceeds the capacity
        (in a deployment those transmissions would be delayed or dropped).

        >>> import numpy as np
        >>> result = ProvisioningResult(np.array([1, 1, 1, 5]), [2.0])
        >>> result.capacity_for_overflow(0.5)
        1
        >>> result.capacity_for_overflow(0.1)
        5
        """
        if not 0.0 < overflow_probability < 1.0:
            raise ConfigurationError(
                f"overflow probability must be in (0, 1), got {overflow_probability}"
            )
        sorted_loads = np.sort(self.aggregate)
        index = int(np.ceil(len(sorted_loads) * (1.0 - overflow_probability))) - 1
        index = min(max(index, 0), len(sorted_loads) - 1)
        return int(sorted_loads[index])

    @property
    def sum_of_title_peaks_bound(self) -> float:
        """Sum of per-title means — a lower reference for multiplexing gain."""
        return float(sum(self.per_title_means))


def _title_process(workload: TitleWorkload, title: int) -> ArrivalProcess:
    if isinstance(workload, bool):
        raise ConfigurationError(f"title {title}: workload cannot be a bool")
    if isinstance(workload, (int, float)):
        if workload < 0:
            raise ConfigurationError(f"title {title}: rate must be >= 0")
        return PoissonArrivals(float(workload))
    if isinstance(workload, WorkloadSpec):
        return workload.process()
    if isinstance(workload, ArrivalProcess):
        return workload
    raise ConfigurationError(
        f"title {title}: expected a rate, WorkloadSpec, or ArrivalProcess, "
        f"got {type(workload).__name__}"
    )


def provision_catalog_processes(
    protocol_factory: Callable[[int], SlottedModel],
    workloads: Sequence[TitleWorkload],
    slot_duration: float,
    horizon_slots: int,
    warmup_slots: int = 0,
    seed: int = 2001,
) -> ProvisioningResult:
    """Simulate one protocol instance per title and aggregate the loads.

    Parameters
    ----------
    protocol_factory:
        ``protocol_factory(title_index)`` returns a fresh slotted protocol.
    workloads:
        One demand model per title: a Poisson rate (req/hour), a
        :class:`~repro.workload.spec.WorkloadSpec`, or any
        :class:`~repro.workload.arrivals.ArrivalProcess` (e.g. a flash
        crowd on the new release riding on Poisson back-catalog titles).
    slot_duration, horizon_slots, warmup_slots:
        Shared timeline parameters.
    seed:
        Workload seed; title ``i`` draws from the ``title-{i}`` stream
        regardless of its process type, so swapping one title's model
        leaves every other title's arrivals untouched.
    """
    if not workloads:
        raise ConfigurationError("need at least one title")
    processes = [
        _title_process(workload, title) for title, workload in enumerate(workloads)
    ]
    streams = RandomStreams(seed)
    aggregate = np.zeros(horizon_slots - warmup_slots, dtype=np.int64)
    per_title_means: List[float] = []
    for title, process in enumerate(processes):
        protocol = protocol_factory(title)
        sim = SlottedSimulation(
            protocol,
            slot_duration,
            horizon_slots,
            warmup_slots=warmup_slots,
            keep_series=True,
        )
        times = process.generate(
            horizon_slots * slot_duration, streams.get(f"title-{title}")
        )
        result = sim.run(times)
        aggregate += np.asarray(result.series, dtype=np.int64)
        per_title_means.append(result.mean_streams)
    return ProvisioningResult(aggregate=aggregate, per_title_means=per_title_means)


def provision_catalog(
    protocol_factory: Callable[[int], SlottedModel],
    rates_per_hour: Sequence[float],
    slot_duration: float,
    horizon_slots: int,
    warmup_slots: int = 0,
    seed: int = 2001,
) -> ProvisioningResult:
    """Poisson-rates convenience wrapper over :func:`provision_catalog_processes`.

    Kept as the stable signature for callers that think in a rate vector
    (e.g. a Zipf split); bit-for-bit identical to the pre-refactor
    behaviour for the same ``(rates, seed)``.
    """
    if any(rate < 0 for rate in rates_per_hour):
        raise ConfigurationError("rates must be >= 0")
    return provision_catalog_processes(
        protocol_factory,
        [float(rate) for rate in rates_per_hour],
        slot_duration,
        horizon_slots,
        warmup_slots=warmup_slots,
        seed=seed,
    )
