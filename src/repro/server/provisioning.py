"""Server capacity provisioning over a multi-video catalog.

The paper measures per-video bandwidth; an operator provisions a *server*:
how many channels cover a whole catalog's aggregate demand, and to what
overflow probability?  This module runs one slotted protocol instance per
title over a shared timeline, sums the per-slot loads, and reduces the
aggregate to provisioning numbers (mean, quantiles, capacity for a target
overflow probability).

Statistical multiplexing is the payoff being quantified: DHB titles peak at
different times, so the capacity for a 10⁻³ overflow is far below the sum
of per-title peaks — while a fixed protocol's aggregate is exactly
``titles × allocation`` forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sim.rng import RandomStreams
from ..sim.slotted import SlottedModel, SlottedSimulation
from ..workload.arrivals import PoissonArrivals


@dataclass(frozen=True)
class ProvisioningResult:
    """Aggregate load statistics for a catalog simulation.

    Attributes
    ----------
    aggregate:
        Per-slot total stream counts across all titles (post-warmup).
    per_title_means:
        Mean streams per title.
    """

    aggregate: np.ndarray
    per_title_means: List[float]

    @property
    def mean_streams(self) -> float:
        """Average aggregate server load in streams."""
        return float(self.aggregate.mean())

    @property
    def peak_streams(self) -> int:
        """Largest observed aggregate load."""
        return int(self.aggregate.max())

    def quantile(self, q: float) -> float:
        """The ``q`` quantile of the aggregate load (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1], got {q}")
        return float(np.quantile(self.aggregate, q))

    def capacity_for_overflow(self, overflow_probability: float) -> int:
        """Smallest channel count whose overflow fraction is below target.

        "Overflow" means a slot whose aggregate demand exceeds the capacity
        (in a deployment those transmissions would be delayed or dropped).

        >>> import numpy as np
        >>> result = ProvisioningResult(np.array([1, 1, 1, 5]), [2.0])
        >>> result.capacity_for_overflow(0.5)
        1
        >>> result.capacity_for_overflow(0.1)
        5
        """
        if not 0.0 < overflow_probability < 1.0:
            raise ConfigurationError(
                f"overflow probability must be in (0, 1), got {overflow_probability}"
            )
        sorted_loads = np.sort(self.aggregate)
        index = int(np.ceil(len(sorted_loads) * (1.0 - overflow_probability))) - 1
        index = min(max(index, 0), len(sorted_loads) - 1)
        return int(sorted_loads[index])

    @property
    def sum_of_title_peaks_bound(self) -> float:
        """Sum of per-title means — a lower reference for multiplexing gain."""
        return float(sum(self.per_title_means))


def provision_catalog(
    protocol_factory: Callable[[int], SlottedModel],
    rates_per_hour: Sequence[float],
    slot_duration: float,
    horizon_slots: int,
    warmup_slots: int = 0,
    seed: int = 2001,
) -> ProvisioningResult:
    """Simulate one protocol instance per title and aggregate the loads.

    Parameters
    ----------
    protocol_factory:
        ``protocol_factory(title_index)`` returns a fresh slotted protocol.
    rates_per_hour:
        Per-title Poisson arrival rates (e.g. a Zipf split).
    slot_duration, horizon_slots, warmup_slots:
        Shared timeline parameters.
    seed:
        Workload seed; each title draws an independent stream.
    """
    if not rates_per_hour:
        raise ConfigurationError("need at least one title")
    if any(rate < 0 for rate in rates_per_hour):
        raise ConfigurationError("rates must be >= 0")
    streams = RandomStreams(seed)
    aggregate = np.zeros(horizon_slots - warmup_slots, dtype=np.int64)
    per_title_means: List[float] = []
    for title, rate in enumerate(rates_per_hour):
        protocol = protocol_factory(title)
        sim = SlottedSimulation(
            protocol,
            slot_duration,
            horizon_slots,
            warmup_slots=warmup_slots,
            keep_series=True,
        )
        times = PoissonArrivals(rate).generate(
            horizon_slots * slot_duration, streams.get(f"title-{title}")
        )
        result = sim.run(times)
        aggregate += np.asarray(result.series, dtype=np.int64)
        per_title_means.append(result.mean_streams)
    return ProvisioningResult(aggregate=aggregate, per_title_means=per_title_means)
