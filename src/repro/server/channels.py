"""Channel pools and blocking-mode unicast VOD.

The paper's opening problem statement: "the major reason behind the high
cost of VOD is the extremely high bandwidths it requires to service
individual customer requests" — i.e. unicast, one channel per customer for
the whole video.  :class:`UnicastVODServer` models exactly that over a
finite :class:`ChannelPool`: requests that find no free channel are blocked
(classic loss system).  Because holding times equal the video length and
arrivals are Poisson, the blocking probability has the Erlang-B closed form
(:func:`erlang_b`), which the test suite uses to validate the simulator.
"""

from __future__ import annotations

import heapq
from typing import List

from ..errors import ConfigurationError
from ..sim.continuous import BusyInterval, ReactiveModel
from ..units import TWO_HOURS


def erlang_b(offered_load: float, n_channels: int) -> float:
    """Erlang-B blocking probability for ``offered_load`` Erlangs.

    Uses the numerically stable recurrence
    ``B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1))``.

    >>> erlang_b(0.0, 4)
    0.0
    >>> round(erlang_b(2.0, 2), 4)
    0.4
    """
    if offered_load < 0:
        raise ConfigurationError(f"offered load must be >= 0, got {offered_load}")
    if n_channels < 1:
        raise ConfigurationError(f"need >= 1 channel, got {n_channels}")
    blocking = 1.0
    for k in range(1, n_channels + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return blocking


class ChannelPool:
    """A pool of ``capacity`` identical video channels.

    Tracks allocations over time; releases are driven by the caller's clock
    (allocations carry an end time, freed lazily).

    Examples
    --------
    >>> pool = ChannelPool(capacity=2)
    >>> pool.allocate(now=0.0, until=10.0)
    True
    >>> pool.allocate(now=1.0, until=5.0)
    True
    >>> pool.allocate(now=2.0, until=3.0)   # full
    False
    >>> pool.allocate(now=6.0, until=9.0)   # one released at t=5
    True
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ends: List[float] = []  # heap of busy-until times
        self.allocations = 0
        self.rejections = 0

    def _reap(self, now: float) -> None:
        while self._ends and self._ends[0] <= now:
            heapq.heappop(self._ends)

    def busy(self, now: float) -> int:
        """Channels currently held."""
        self._reap(now)
        return len(self._ends)

    def free(self, now: float) -> int:
        """Channels currently available."""
        return self.capacity - self.busy(now)

    def allocate(self, now: float, until: float) -> bool:
        """Try to hold one channel during ``[now, until)``."""
        if until < now:
            raise ConfigurationError(f"release {until} before allocation {now}")
        self._reap(now)
        if len(self._ends) >= self.capacity:
            self.rejections += 1
            return False
        heapq.heappush(self._ends, until)
        self.allocations += 1
        return True


class UnicastVODServer(ReactiveModel):
    """One dedicated channel per admitted customer; no sharing; blocking.

    Parameters
    ----------
    n_channels:
        Pool size.
    duration:
        Video length ``D`` (= channel holding time) in seconds.

    Examples
    --------
    >>> server = UnicastVODServer(n_channels=1, duration=10.0)
    >>> server.handle_request(0.0)
    [(0.0, 10.0)]
    >>> server.handle_request(5.0)   # blocked
    []
    >>> server.blocking_ratio
    0.5
    """

    def __init__(self, n_channels: int, duration: float = TWO_HOURS):
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        self.pool = ChannelPool(n_channels)
        self.duration = float(duration)
        self.admitted = 0
        self.blocked = 0

    def handle_request(self, time: float) -> List[BusyInterval]:
        """Admit onto a free channel or block."""
        if self.pool.allocate(time, time + self.duration):
            self.admitted += 1
            return [(time, time + self.duration)]
        self.blocked += 1
        return []

    @property
    def blocking_ratio(self) -> float:
        """Fraction of requests blocked so far."""
        total = self.admitted + self.blocked
        return self.blocked / total if total else 0.0

    def expected_blocking(self, rate_per_second: float) -> float:
        """Erlang-B prediction for Poisson arrivals at ``rate_per_second``."""
        return erlang_b(rate_per_second * self.duration, self.pool.capacity)
