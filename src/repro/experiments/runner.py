"""The protocol-agnostic measurement loop.

One point = one protocol instance simulated over one seeded Poisson arrival
trace.  Slotted and reactive protocols run on their respective drivers but
report the same :class:`~repro.analysis.metrics.BandwidthPoint`, so figure
modules and the CLI treat them uniformly.  At a given rate, every protocol
sees the *same* arrival trace (common random numbers).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.metrics import BandwidthPoint, ProtocolSeries
from ..errors import ConfigurationError
from ..obs.manifest import RunManifest
from ..obs.registry import MetricsRegistry
from ..obs.trace import Observation, TraceSink
from ..runtime import Engine, RunSpec, observed_run
from ..runtime.cache import clear_cache
from ..runtime.seeds import arrival_trace, replication_seed
from ..sim.continuous import ContinuousSimulation, ReactiveModel
from ..sim.slotted import SlottedModel, SlottedSimulation
from ..workload.spec import WorkloadSpec
from .config import SweepConfig

AnyProtocol = Union[SlottedModel, ReactiveModel]
ProtocolFactory = Callable[[float], AnyProtocol]

#: One cell of a sweep grid: a stationary rate or a workload spec.
SweepPoint = Union[float, WorkloadSpec]


def clear_trace_cache() -> None:
    """Drop every memoised arrival trace (tests and memory-sensitive callers).

    Alias of :func:`repro.runtime.clear_cache`, kept for the pre-runtime
    call sites.
    """
    clear_cache()


def arrivals_for_rate(
    config: SweepConfig, rate_per_hour: float
) -> np.ndarray:
    """The seeded arrival trace every protocol shares at ``rate_per_hour``.

    Deterministic in ``(config.seed, rate_per_hour, horizon)`` and memoised
    on exactly that key in the runtime's bounded shared cache
    (:mod:`repro.runtime.cache`), so repeated calls — one per protocol in a
    sweep — return the same (read-only) array without regenerating it.
    """
    return arrival_trace(
        config.seed, rate_per_hour, config.horizon_hours(rate_per_hour)
    )


def arrivals_for_point(config: SweepConfig, point: SweepPoint) -> np.ndarray:
    """The seeded arrival trace for one sweep point (rate or workload).

    Float points delegate to :func:`arrivals_for_rate` unchanged (legacy
    cache key); workload points are keyed by their canonical digest, with
    the horizon sized from the workload's mean rate.
    """
    if isinstance(point, WorkloadSpec):
        return arrival_trace(config.seed, point, config.horizon_hours_for(point))
    return arrivals_for_rate(config, float(point))


def measure_protocol(
    protocol: AnyProtocol,
    config: SweepConfig,
    rate_per_hour: float,
    arrival_times: Optional[Sequence[float]] = None,
    stream_bandwidth: float = 1.0,
    slot_duration: Optional[float] = None,
    byte_weighted: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[TraceSink] = None,
    trace_context: Optional[Dict] = None,
    columnar: bool = True,
) -> BandwidthPoint:
    """Simulate one protocol at one rate and reduce to a bandwidth point.

    Parameters
    ----------
    protocol:
        A fresh slotted or reactive protocol instance.
    config:
        The sweep parameters (horizon/warmup policy, slot duration).
    rate_per_hour:
        The nominal Poisson rate (recorded on the point; also used to size
        the horizon when ``arrival_times`` is omitted).
    arrival_times:
        Optional pre-generated arrivals (for common random numbers).
    stream_bandwidth:
        Bytes/second carried by one stream; bandwidths are scaled by it
        (leave 1.0 to report in streams, as Figures 7/8 do).
    slot_duration:
        Override the slot length (defaults to ``config.slot_duration``).
        The compressed-video experiment pins it to the waiting-time target
        while segment counts vary across DHB variants.
    byte_weighted:
        Report the protocol's per-slot *weighted* load divided by the slot
        length — i.e. transmitted bytes/second when the protocol carries
        per-segment byte weights (Figure 9 accounting).  Only valid for
        slotted protocols; ``stream_bandwidth`` is ignored.
    metrics:
        Optional metrics registry threaded into the simulation driver and
        bound to the protocol (admission/stream counters, slot-load
        histogram, run timers).
    trace:
        Optional per-slot trace sink (slotted protocols only; reactive
        protocols have no slot structure to trace).
    trace_context:
        Extra fields copied into every trace record (protocol label,
        rate, ...).
    columnar:
        Allow the slotted driver's columnar hot path (pre-bucketed
        batched admission; bit-for-bit identical results).  It engages
        only for numpy arrival arrays with no trace sink attached;
        ``False`` forces the scalar per-request loop (equivalence tests
        and the bench baseline use it).
    """
    if rate_per_hour <= 0:
        raise ConfigurationError("rate must be > 0")
    if arrival_times is None:
        arrival_times = arrivals_for_rate(config, rate_per_hour)
    horizon_seconds = config.horizon_hours(rate_per_hour) * 3600.0
    if metrics is not None:
        metrics.counter("measure.points").inc()

    if isinstance(protocol, SlottedModel):
        d = slot_duration if slot_duration is not None else config.slot_duration
        horizon_slots = int(horizon_seconds / d)
        warmup_slots = int(horizon_slots * config.warmup_fraction)
        result = SlottedSimulation(
            protocol,
            d,
            horizon_slots,
            warmup_slots,
            metrics=metrics,
            trace=trace,
            trace_context=trace_context,
            columnar=columnar,
        ).run(arrival_times)
        if byte_weighted:
            return BandwidthPoint(
                rate_per_hour=rate_per_hour,
                mean_bandwidth=result.mean_weight / d,
                max_bandwidth=result.max_weight / d,
                mean_wait=result.mean_wait,
                n_requests=result.n_requests,
            )
        return BandwidthPoint(
            rate_per_hour=rate_per_hour,
            mean_bandwidth=result.mean_streams * stream_bandwidth,
            max_bandwidth=result.max_streams * stream_bandwidth,
            mean_wait=result.mean_wait,
            n_requests=result.n_requests,
        )
    if byte_weighted:
        raise ConfigurationError("byte-weighted accounting needs a slotted protocol")
    if isinstance(protocol, ReactiveModel):
        warmup = horizon_seconds * config.warmup_fraction
        result = ContinuousSimulation(
            protocol, horizon_seconds, warmup, metrics=metrics
        ).run(arrival_times)
        return BandwidthPoint(
            rate_per_hour=rate_per_hour,
            mean_bandwidth=result.mean_streams * stream_bandwidth,
            max_bandwidth=result.max_streams * stream_bandwidth,
            mean_wait=result.mean_wait,
            n_requests=result.n_requests,
        )
    raise ConfigurationError(
        f"protocol {type(protocol).__name__} is neither slotted nor reactive"
    )


def measure_sweep_point(
    name: str,
    label: str,
    point: SweepPoint,
    config: SweepConfig,
    observation: Optional[Observation] = None,
) -> BandwidthPoint:
    """Measure one sweep grid cell — the ``"sweep-point"`` task handler.

    ``point`` is a stationary rate (req/hour) or a
    :class:`~repro.workload.spec.WorkloadSpec`; workload points size
    horizons and protocol contexts from their mean rate and draw their
    arrivals from the digest-keyed trace cache.  Builds a fresh registry
    protocol for ``(name, point)`` under the shared seeded arrival trace
    and reduces it to one :class:`~repro.analysis.metrics.BandwidthPoint`.
    This is the unit of work :func:`sweep_protocols` fans across the
    runtime Engine.  Arrival traces are numpy arrays, so slotted points
    take the columnar hot path automatically whenever no per-slot trace
    sink is attached.
    """
    from ..protocols.registry import ProtocolContext, build_protocol

    rate_per_hour = SweepConfig.nominal_rate(point)
    context = ProtocolContext(
        n_segments=config.n_segments,
        duration=config.duration,
        rate_per_hour=rate_per_hour,
    )
    protocol = build_protocol(name, context)
    metrics = observation.metrics if observation is not None else None
    trace = observation.trace if observation is not None else None
    trace_context = {"protocol": label, "rate_per_hour": rate_per_hour}
    if isinstance(point, WorkloadSpec):
        trace_context["workload"] = point.label()
    return measure_protocol(
        protocol,
        config,
        rate_per_hour,
        arrival_times=arrivals_for_point(config, point),
        metrics=metrics,
        trace=trace,
        trace_context=trace_context,
    )


def sweep_factory(
    label: str,
    factory: ProtocolFactory,
    config: SweepConfig,
    stream_bandwidth: float = 1.0,
) -> ProtocolSeries:
    """Sweep one protocol factory over every configured rate.

    ``factory(rate_per_hour)`` must return a *fresh* protocol; reactive
    protocols typically tune their windows to the rate.
    """
    series = ProtocolSeries(protocol=label)
    for rate in config.rates_per_hour:
        protocol = factory(rate)
        point = measure_protocol(
            protocol,
            config,
            rate,
            arrival_times=arrivals_for_rate(config, rate),
            stream_bandwidth=stream_bandwidth,
        )
        series.add(point)
    return series


@dataclass(frozen=True)
class ReplicatedPoint:
    """A bandwidth measurement replicated over independent seeds.

    Attributes
    ----------
    rate_per_hour:
        The operating point.
    mean:
        Grand mean of the replications' mean bandwidths.
    half_width:
        Normal-theory 95 % confidence half-width across replications.
    replications:
        The individual replication means.
    """

    rate_per_hour: float
    mean: float
    half_width: float
    replications: Tuple[float, ...]

    @property
    def interval(self) -> Tuple[float, float]:
        """The (low, high) confidence interval."""
        return (self.mean - self.half_width, self.mean + self.half_width)


def replicate_measurement(
    factory: ProtocolFactory,
    config: SweepConfig,
    rate_per_hour: float,
    n_replications: int = 5,
) -> ReplicatedPoint:
    """Replicate one measurement over independent seeds.

    Every replication gets a fresh protocol from ``factory`` and an arrival
    trace from a distinct derived seed; the result carries a confidence
    interval so sweep-level ordering claims can be checked against noise.

    >>> from ..core.dhb import DHBProtocol
    >>> cfg = SweepConfig().quick(rates_per_hour=(30.0,), base_hours=3.0,
    ...                           min_requests=20)
    >>> point = replicate_measurement(
    ...     lambda rate: DHBProtocol(n_segments=cfg.n_segments), cfg, 30.0,
    ...     n_replications=3)
    >>> len(point.replications)
    3
    >>> point.half_width >= 0.0
    True
    """
    if n_replications < 2:
        raise ConfigurationError("need >= 2 replications for an interval")
    means: List[float] = []
    for replication in range(n_replications):
        replication_config = config.replace(
            seed=replication_seed(config.seed, replication)
        )
        point = measure_protocol(
            factory(rate_per_hour),
            replication_config,
            rate_per_hour,
            arrival_times=arrivals_for_rate(replication_config, rate_per_hour),
        )
        means.append(point.mean_bandwidth)
    grand = sum(means) / n_replications
    variance = sum((m - grand) ** 2 for m in means) / (n_replications - 1)
    half_width = 1.96 * (variance / n_replications) ** 0.5
    return ReplicatedPoint(
        rate_per_hour=rate_per_hour,
        mean=grand,
        half_width=half_width,
        replications=tuple(means),
    )


def sweep_grid(
    names: Sequence[str],
    config: SweepConfig,
    labels: Optional[Sequence[str]] = None,
) -> List[RunSpec]:
    """The sweep's (protocol × point) grid as runtime specs, in sweep order.

    Points are rates or workload specs (see
    :meth:`~repro.experiments.config.SweepConfig.sweep_points`); either way
    the cell value rides in the payload verbatim, so float-rate payloads —
    and their checkpoint digests — are bit-identical to pre-workload runs.
    """
    if labels is None:
        labels = list(names)
    if len(labels) != len(names):
        raise ConfigurationError("labels must parallel names")
    return [
        RunSpec("sweep-point", (name, label, point, config), label=label)
        for name, label in zip(names, labels)
        for point in config.sweep_points()
    ]


def assemble_series(
    labels: Sequence[str],
    rates: Sequence[SweepPoint],
    measured: Sequence[BandwidthPoint],
) -> List[ProtocolSeries]:
    """Fold a flat grid of measured points back into per-protocol series."""
    n_rates = len(rates)
    all_series: List[ProtocolSeries] = []
    for position, label in enumerate(labels):
        series = ProtocolSeries(protocol=label)
        for point in measured[position * n_rates : (position + 1) * n_rates]:
            series.add(point)
        all_series.append(series)
    return all_series


def sweep_protocols(
    names: Sequence[str],
    config: SweepConfig,
    labels: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
    observation: Optional[Observation] = None,
    engine: Optional[Engine] = None,
) -> List[ProtocolSeries]:
    """Sweep several registry protocols under common random numbers.

    The (protocol × rate) grid is flattened into independent
    ``"sweep-point"`` specs, executed through the runtime Engine (possibly
    out of order, across processes), and reassembled into one
    :class:`~repro.analysis.metrics.ProtocolSeries` per protocol in the
    caller's order.

    Parameters
    ----------
    names:
        Registry names (see
        :func:`repro.protocols.registry.available_protocols`).
    config:
        Sweep parameters.
    labels:
        Optional display labels, parallel to ``names``.
    n_jobs:
        Worker processes for the sweep grid; ``None`` defers to the
        ``REPRO_SWEEP_JOBS`` environment variable, defaulting to serial.
        Parallel runs reproduce the serial series bit-for-bit (see
        :mod:`repro.runtime.engine`).  Ignored when ``engine`` is given.
    observation:
        Optional :class:`~repro.obs.trace.Observation`.  Worker registries
        are merged into ``observation.metrics`` in task order, and per-slot
        records are re-emitted to ``observation.trace``, so parallel runs
        report exactly the serial metrics too.
    engine:
        An existing :class:`~repro.runtime.engine.Engine` to run on
        (entry points that execute several studies share one).  The
        engine selects the execution backend — serial, process pool, or
        socket workers (:mod:`repro.runtime.backends`) — and, when built
        with a :class:`~repro.runtime.CheckpointStore`, journals each
        completed grid cell so an interrupted sweep resumes without
        re-simulating finished cells.
    """
    if labels is None:
        labels = list(names)
    if engine is None:
        engine = Engine(n_jobs=n_jobs)
    specs = sweep_grid(names, config, labels)
    measured = engine.run_values(specs, observation=observation)
    return assemble_series(labels, config.sweep_points(), measured)


@dataclass
class SweepRun:
    """A sweep's series plus the run record the observability layer kept.

    Every observed sweep carries its own :class:`~repro.obs.manifest.RunManifest`
    (what ran, under which software, at what cost) and the merged
    :class:`~repro.obs.registry.MetricsRegistry` of all workers.
    """

    series: List[ProtocolSeries] = field(default_factory=list)
    manifest: Optional[RunManifest] = None
    metrics: Optional[MetricsRegistry] = None

    def metrics_document(self) -> Dict:
        """The JSON document written by ``--metrics-out``: manifest + metrics."""
        return {
            "schema": 1,
            "manifest": self.manifest.to_dict() if self.manifest else None,
            "metrics": self.metrics.to_dict() if self.metrics else {},
        }


def observed_sweep(
    names: Sequence[str],
    config: SweepConfig,
    labels: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = None,
    trace: Optional[TraceSink] = None,
    experiment: str = "sweep",
) -> SweepRun:
    """Run :func:`sweep_protocols` under full observability.

    Opens the runtime's standard observability session
    (:func:`repro.runtime.observed_run`): a fresh registry plus the
    optional trace sink threaded through every measured point, and a
    completed manifest attached to the result.

    >>> run = observed_sweep(["npb"], SweepConfig().quick(
    ...     rates_per_hour=(30.0,), base_hours=2.0, min_requests=10))
    >>> run.manifest.experiment
    'sweep'
    >>> run.metrics.counter("measure.points").value
    1
    """
    if labels is None:
        labels = list(names)
    with observed_run(
        experiment,
        protocols=labels,
        params=asdict(config),
        seed=config.seed,
        trace=trace,
    ) as observed:
        series = sweep_protocols(
            names, config, labels, n_jobs=n_jobs, observation=observed.observation
        )
    return SweepRun(
        series=series, manifest=observed.manifest, metrics=observed.metrics
    )
