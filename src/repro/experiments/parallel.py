"""Parallel sweep execution — **deprecated shim** over :mod:`repro.runtime`.

.. deprecated::
    This module predates the unified execution runtime.  The process pool,
    worker-count resolution, and observability merging now live in
    :mod:`repro.runtime` (:class:`~repro.runtime.engine.Engine`,
    :func:`~repro.runtime.config.resolve_n_jobs`); new code should build
    ``RunSpec`` batches and run them through an Engine directly, or call
    :func:`repro.experiments.runner.sweep_protocols`.  The names below are
    kept importable and bit-for-bit compatible with the pre-runtime
    behaviour (same ``REPRO_SWEEP_JOBS`` contract, same task-order merge
    discipline), and the equivalence tests in ``tests/runtime`` pin that.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence

from ..analysis.metrics import BandwidthPoint, ProtocolSeries
from ..obs.trace import Observation
from ..runtime import Engine, RunSpec
from ..runtime.config import N_JOBS_ENV, resolve_n_jobs
from ..runtime.tasks import execute_spec
from .config import SweepConfig

__all__ = [
    "N_JOBS_ENV",
    "ObservedCell",
    "ParallelSweepExecutor",
    "SweepPoint",
    "resolve_n_jobs",
]


class SweepPoint(NamedTuple):
    """One cell of the sweep grid: a registry protocol at one arrival rate."""

    name: str
    label: str
    rate_per_hour: float

    def to_spec(self, config: SweepConfig) -> RunSpec:
        """The runtime spec measuring this point under ``config``."""
        return RunSpec(
            "sweep-point",
            (self.name, self.label, self.rate_per_hour, config),
            label=self.label,
        )


class ObservedCell(NamedTuple):
    """One observed grid cell: the point plus its portable observability state.

    Kept for pre-runtime callers; the runtime's
    :class:`~repro.runtime.spec.RunResult` carries the same fields for any
    task kind.
    """

    point: BandwidthPoint
    metrics: Dict
    trace: List[Dict]


class ParallelSweepExecutor:
    """Fans sweep grid points across the runtime Engine (deprecated).

    A construction-time ``n_jobs`` is resolved once (explicit argument,
    then ``REPRO_SWEEP_JOBS``, then serial) and reused for every batch,
    exactly as before the runtime existed.

    Examples
    --------
    >>> executor = ParallelSweepExecutor(n_jobs=1)
    >>> cfg = SweepConfig().quick(rates_per_hour=(30.0,), base_hours=2.0,
    ...                           min_requests=10)
    >>> [series.protocol for series in executor.sweep(["npb"], cfg)]
    ['npb']
    """

    def __init__(self, n_jobs: Optional[int] = None):
        self.engine = Engine(n_jobs=n_jobs)
        self.n_jobs = self.engine.n_jobs

    def measure_points(
        self,
        points: Sequence[SweepPoint],
        config: SweepConfig,
        observation: Optional[Observation] = None,
    ) -> List[BandwidthPoint]:
        """Measure every grid point, preserving input order.

        Delegates to :meth:`Engine.run`, which keeps the pre-runtime
        contract: parallel results (and merged observability state) are
        bit-for-bit identical to serial ones.
        """
        specs = [point.to_spec(config) for point in points]
        return self.engine.run_values(specs, observation=observation)

    def _measure_cells(
        self, points: Sequence[SweepPoint], config: SweepConfig, want_trace: bool
    ) -> List[ObservedCell]:
        """The observed twin of the grid fan-out (pre-runtime signature)."""
        from ..runtime.pool import run_ordered

        tasks = [(point.to_spec(config), True, want_trace) for point in points]
        results = run_ordered(execute_spec, tasks, self.n_jobs)
        return [
            ObservedCell(point=result.value, metrics=result.metrics, trace=result.trace)
            for result in results
        ]

    def sweep(
        self,
        names: Sequence[str],
        config: SweepConfig,
        labels: Optional[Sequence[str]] = None,
        observation: Optional[Observation] = None,
    ) -> List[ProtocolSeries]:
        """Sweep registry protocols over every configured rate.

        Thin wrapper over :func:`repro.experiments.runner.sweep_protocols`
        running on this executor's Engine.
        """
        from .runner import sweep_protocols

        return sweep_protocols(
            names, config, labels, observation=observation, engine=self.engine
        )
