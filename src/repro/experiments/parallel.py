"""Parallel execution of protocol sweeps.

A figure-style sweep is an embarrassingly parallel grid: every
``(protocol, rate)`` point builds a fresh protocol, replays the seeded
common-random-numbers trace for its rate, and reduces to one
:class:`~repro.analysis.metrics.BandwidthPoint`.  No point reads another's
state, so the grid fans out across a :class:`concurrent.futures.ProcessPoolExecutor`
with **bit-for-bit** the serial results: each worker re-derives the same
seeded trace from ``(config.seed, rate)`` and runs the identical measurement
code, and the parent reassembles points in task order.

Worker count resolution, in priority order:

1. the explicit ``n_jobs`` argument (``-1`` means "all cores"),
2. the ``REPRO_SWEEP_JOBS`` environment variable,
3. serial execution (``n_jobs = 1``).

Serial execution never touches the pool machinery, and any failure to spawn
a pool (restricted environments, missing semaphores) degrades to the serial
path rather than failing the sweep.
"""

from __future__ import annotations

import os
from typing import Dict, List, NamedTuple, Optional, Sequence

from ..analysis.metrics import BandwidthPoint, ProtocolSeries
from ..errors import ConfigurationError
from ..obs.registry import MetricsRegistry
from ..obs.trace import MemoryTraceSink, Observation
from ..protocols.registry import ProtocolContext, build_protocol
from .config import SweepConfig

#: Environment variable consulted when ``n_jobs`` is not given explicitly.
N_JOBS_ENV = "REPRO_SWEEP_JOBS"


class SweepPoint(NamedTuple):
    """One cell of the sweep grid: a registry protocol at one arrival rate."""

    name: str
    label: str
    rate_per_hour: float


def resolve_n_jobs(n_jobs: Optional[int] = None) -> int:
    """Resolve the worker count from the argument or :data:`N_JOBS_ENV`.

    ``None`` falls through to the environment variable, then to ``1``
    (serial).  Negative values mean "all available cores".
    """
    if n_jobs is None:
        raw = os.environ.get(N_JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{N_JOBS_ENV}={raw!r} is not an integer"
            ) from None
    if n_jobs == 0:
        raise ConfigurationError("n_jobs must be >= 1 or negative (all cores)")
    if n_jobs < 0:
        return os.cpu_count() or 1
    return n_jobs


def _measure_point(point: SweepPoint, config: SweepConfig) -> BandwidthPoint:
    """Measure one grid cell (top-level so worker processes can unpickle it)."""
    from .runner import arrivals_for_rate, measure_protocol

    context = ProtocolContext(
        n_segments=config.n_segments,
        duration=config.duration,
        rate_per_hour=point.rate_per_hour,
    )
    protocol = build_protocol(point.name, context)
    return measure_protocol(
        protocol,
        config,
        point.rate_per_hour,
        arrival_times=arrivals_for_rate(config, point.rate_per_hour),
    )


class ObservedCell(NamedTuple):
    """One observed grid cell: the point plus its portable observability state.

    ``metrics`` is a :meth:`~repro.obs.registry.MetricsRegistry.to_dict`
    snapshot and ``trace`` a list of plain record dicts — both picklable and
    JSON-safe, so cells cross process boundaries unchanged and the parent
    can merge them deterministically in task order.
    """

    point: BandwidthPoint
    metrics: Dict
    trace: List[Dict]


def _measure_point_observed(
    point: SweepPoint, config: SweepConfig, want_trace: bool
) -> ObservedCell:
    """Measure one grid cell under a fresh, cell-local registry/sink."""
    from .runner import arrivals_for_rate, measure_protocol

    context = ProtocolContext(
        n_segments=config.n_segments,
        duration=config.duration,
        rate_per_hour=point.rate_per_hour,
    )
    protocol = build_protocol(point.name, context)
    registry = MetricsRegistry()
    sink = MemoryTraceSink() if want_trace else None
    bandwidth_point = measure_protocol(
        protocol,
        config,
        point.rate_per_hour,
        arrival_times=arrivals_for_rate(config, point.rate_per_hour),
        metrics=registry,
        trace=sink,
        trace_context={"protocol": point.label, "rate_per_hour": point.rate_per_hour},
    )
    return ObservedCell(
        point=bandwidth_point,
        metrics=registry.to_dict(),
        trace=sink.records if sink is not None else [],
    )


class ParallelSweepExecutor:
    """Fans sweep grid points across a process pool.

    Parameters
    ----------
    n_jobs:
        Worker processes; see :func:`resolve_n_jobs` for ``None`` / negative
        semantics.  ``1`` runs everything in-process (no pool, no pickling).

    Examples
    --------
    >>> executor = ParallelSweepExecutor(n_jobs=1)
    >>> cfg = SweepConfig().quick(rates_per_hour=(30.0,), base_hours=2.0,
    ...                           min_requests=10)
    >>> [series.protocol for series in executor.sweep(["npb"], cfg)]
    ['npb']
    """

    def __init__(self, n_jobs: Optional[int] = None):
        self.n_jobs = resolve_n_jobs(n_jobs)

    def measure_points(
        self,
        points: Sequence[SweepPoint],
        config: SweepConfig,
        observation: Optional[Observation] = None,
    ) -> List[BandwidthPoint]:
        """Measure every grid point, preserving input order.

        The parallel path produces exactly the serial path's numbers: the
        per-point computation is deterministic in ``(point, config)`` and
        carries no cross-point state.  With an ``observation``, every cell
        runs under its own registry (and in-memory trace buffer when the
        observation has a sink); the parent merges registries and re-emits
        trace records **in task order**, so the merged observability state
        is identical however the cells were scheduled.
        """
        if observation is not None:
            cells = self._measure_cells(points, config, observation.trace is not None)
            for cell in cells:
                observation.metrics.merge_dict(cell.metrics)
                if observation.trace is not None:
                    for record in cell.trace:
                        observation.trace.emit(record)
            return [cell.point for cell in cells]
        if self.n_jobs == 1 or len(points) <= 1:
            return [_measure_point(point, config) for point in points]
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.n_jobs, len(points))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_measure_point, point, config) for point in points
                ]
                return [future.result() for future in futures]
        except (OSError, PermissionError):
            # Pools need fork/spawn and semaphores; fall back to serial in
            # environments that forbid them rather than failing the sweep.
            return [_measure_point(point, config) for point in points]

    def _measure_cells(
        self, points: Sequence[SweepPoint], config: SweepConfig, want_trace: bool
    ) -> List[ObservedCell]:
        """The observed twin of the grid fan-out (same pool semantics)."""
        if self.n_jobs == 1 or len(points) <= 1:
            return [
                _measure_point_observed(point, config, want_trace) for point in points
            ]
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.n_jobs, len(points))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_measure_point_observed, point, config, want_trace)
                    for point in points
                ]
                return [future.result() for future in futures]
        except (OSError, PermissionError):
            return [
                _measure_point_observed(point, config, want_trace) for point in points
            ]

    def sweep(
        self,
        names: Sequence[str],
        config: SweepConfig,
        labels: Optional[Sequence[str]] = None,
        observation: Optional[Observation] = None,
    ) -> List[ProtocolSeries]:
        """Sweep registry protocols over every configured rate.

        The (protocol × rate) grid is flattened into independent points,
        measured (possibly out of order, across processes), and reassembled
        into one :class:`~repro.analysis.metrics.ProtocolSeries` per
        protocol in the caller's order.  ``observation`` threads a metrics
        registry (and optional trace sink) through every cell; see
        :meth:`measure_points`.
        """
        if labels is None:
            labels = list(names)
        if len(labels) != len(names):
            raise ConfigurationError("labels must parallel names")
        points = [
            SweepPoint(name, label, rate)
            for name, label in zip(names, labels)
            for rate in config.rates_per_hour
        ]
        measured = self.measure_points(points, config, observation=observation)
        n_rates = len(config.rates_per_hour)
        all_series: List[ProtocolSeries] = []
        for position, label in enumerate(labels):
            series = ProtocolSeries(protocol=label)
            for bandwidth_point in measured[position * n_rates : (position + 1) * n_rates]:
                series.add(bandwidth_point)
            all_series.append(series)
        return all_series
