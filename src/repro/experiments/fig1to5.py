"""Figures 1–5: the protocol-illustration schedules, reproduced verbatim.

These figures are deterministic, so the reproduction is exact:

* Figure 1 — the first three streams of Fast Broadcasting;
* Figure 2 — the first three streams of New Pagoda Broadcasting;
* Figure 3 — the first three streams of Skyscraper Broadcasting;
* Figure 4 — the DHB transmission schedule created by a request arriving
  into an idle system during slot 1 (six segments);
* Figure 5 — the combined schedules after a second request during slot 3.

The test suite asserts every rendering against the strings printed in the
paper.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.dhb import DHBProtocol
from ..errors import ConfigurationError
from ..protocols.fb import fb_map
from ..protocols.npb import pagoda_map
from ..protocols.sb import sb_map


def render_dhb_schedule(requests_at_slots: List[int], n_segments: int = 6) -> str:
    """Render DHB's slot-by-slot schedule in the style of Figures 4/5.

    Instances scheduled in the same slot are stacked onto numbered streams,
    earliest-scheduled instance on the lowest stream — which reproduces the
    paper's two-row layout for the two-request example.

    >>> print(render_dhb_schedule([1]))
    Slot        1   2   3   4   5   6   7
    1st Stream      S1  S2  S3  S4  S5  S6
    """
    if not requests_at_slots:
        raise ConfigurationError("need at least one request slot")
    protocol = DHBProtocol(n_segments=n_segments, track_clients=True)
    for slot in sorted(requests_at_slots):
        protocol.handle_request(slot)
    first_slot = min(requests_at_slots)
    last_slot = max(
        slot for plan in protocol.clients for slot in plan.assignments.values()
    )
    per_slot: Dict[int, List[int]] = {
        slot: protocol.schedule.segments_in(slot)
        for slot in range(first_slot, last_slot + 1)
    }
    n_streams = max(len(instances) for instances in per_slot.values())
    ordinal = {1: "1st", 2: "2nd", 3: "3rd"}
    width = max(len(f"S{n_segments}"), 2)
    header = "Slot        " + "  ".join(
        str(slot).ljust(width) for slot in range(first_slot, last_slot + 1)
    )
    lines = [header.rstrip()]
    for stream in range(n_streams):
        label = f"{ordinal.get(stream + 1, f'{stream + 1}th')} Stream"
        cells = []
        for slot in range(first_slot, last_slot + 1):
            instances = per_slot[slot]
            cell = f"S{instances[stream]}" if stream < len(instances) else ""
            cells.append(cell.ljust(width))
        lines.append((label.ljust(12) + "  ".join(cells)).rstrip())
    return "\n".join(lines)


def render_figure(figure: int) -> str:
    """Return the text reproduction of paper figure 1–5.

    >>> print(render_figure(3))
    Figure 3. The first three streams for skyscraper broadcasting
    Stream 1  S1 S1 S1 S1
    Stream 2  S2 S3 S2 S3
    Stream 3  S4 S5 S4 S5
    """
    if figure == 1:
        title = "Figure 1. The first three streams for fast broadcasting"
        return f"{title}\n{fb_map(3).render(4)}"
    if figure == 2:
        title = "Figure 2. The first three streams for the NPB protocol"
        return f"{title}\n{pagoda_map(3).render(6)}"
    if figure == 3:
        title = "Figure 3. The first three streams for skyscraper broadcasting"
        return f"{title}\n{sb_map(3).render(4)}"
    if figure == 4:
        title = (
            "Figure 4. Transmission schedule of an incoming request arriving "
            "into an idle system."
        )
        return f"{title}\n{render_dhb_schedule([1])}"
    if figure == 5:
        title = (
            "Figure 5. Combined transmission schedules of two overlapping "
            "requests for the same video."
        )
        return f"{title}\n{render_dhb_schedule([1, 3])}"
    raise ConfigurationError(f"figure must be 1..5, got {figure}")


def render_all_figures() -> str:
    """All five illustration figures, separated by blank lines."""
    return "\n\n".join(render_figure(figure) for figure in range(1, 6))
