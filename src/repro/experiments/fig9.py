"""Figure 9 — compressed video: UD vs the four DHB implementations.

Paper setup (Section 4): a DVD MPEG encode of *The Matrix* — 8170 s,
average 636 KB/s, 1-second peak 951 KB/s — distributed with a one-minute
maximum waiting time.  We substitute a synthetic trace calibrated to those
exact statistics (:mod:`repro.video.matrix`; see DESIGN.md §3).

Series:

* **UD** — the universal distribution protocol on the same video
  (137 segments, streams at the peak rate);
* **DHB-a** — 137 segments, streams at the 951 KB/s peak;
* **DHB-b** — deterministic waiting time; streams at the maximum
  per-segment average (789 KB/s in the paper);
* **DHB-c** — work-ahead smoothing (129 segments @ 671 KB/s in the paper);
* **DHB-d** — DHB-c plus relaxed minimum segment frequencies.

Published shape (asserted by the bench/tests): at moderate-to-high rates
``UD > DHB-a > DHB-b > DHB-c > DHB-d``; the a→b drop is the largest single
saving ("switching to a deterministic waiting time has the most impact"),
the b→c saving is small, and c→d is the second largest ("followed by
adjusting the minimum segment frequency").
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.metrics import ProtocolSeries
from ..analysis.tables import format_series_table
from ..core.variants import make_all_variants
from ..obs.trace import Observation
from ..protocols.ud import UniversalDistributionProtocol
from ..runtime import Engine, RunSpec
from ..units import MEGABYTE, MINUTE
from ..video.matrix import matrix_like_video
from ..video.segmentation import segments_for_wait
from ..video.vbr import VBRVideo
from .config import SweepConfig
from .runner import arrivals_for_rate, measure_protocol

#: Maximum waiting time of the Section 4 case study: one minute.
FIG9_MAX_WAIT = MINUTE

#: Series names in legend order: UD, then the four DHB implementations.
FIG9_SERIES = ("UD", "DHB-a", "DHB-b", "DHB-c", "DHB-d")


def fig9_config(config: Optional[SweepConfig] = None, video: Optional[VBRVideo] = None):
    """The (config, video) pair of the Figure 9 experiment."""
    if video is None:
        video = matrix_like_video()
    n_segments = segments_for_wait(video.duration, FIG9_MAX_WAIT)
    if config is None:
        config = SweepConfig()
    config = config.replace(duration=video.duration, n_segments=n_segments)
    return config, video


def measure_fig9_series(
    series_name: str,
    config: SweepConfig,
    video: Optional[VBRVideo] = None,
    observation: Optional[Observation] = None,
) -> ProtocolSeries:
    """Measure one Figure-9 series — the ``"fig9-series"`` task handler.

    ``config`` must already carry the video's duration/segment count (see
    :func:`fig9_config`); ``video=None`` rebuilds the deterministic
    Matrix-calibrated trace, which is how specs stay small enough to ship
    to pool workers.  Every rate point builds a fresh protocol, so one
    series is a pure function of ``(series_name, config, video)``.
    """
    if video is None:
        video = matrix_like_video()
    metrics = observation.metrics if observation is not None else None
    trace = observation.trace if observation is not None else None
    series = ProtocolSeries(series_name)
    if series_name == "UD":
        stream_rate = video.peak_bandwidth(window_seconds=1)
        slot_duration = FIG9_MAX_WAIT

        def build_protocol():
            return UniversalDistributionProtocol(n_segments=config.n_segments)

    else:
        variant = make_all_variants(video, FIG9_MAX_WAIT)[series_name]
        stream_rate = variant.stream_rate
        slot_duration = variant.slot_duration
        build_protocol = variant.build_protocol
    for rate in config.rates_per_hour:
        series.add(
            measure_protocol(
                build_protocol(),
                config,
                rate,
                arrival_times=arrivals_for_rate(config, rate),
                stream_bandwidth=stream_rate,
                slot_duration=slot_duration,
                metrics=metrics,
                trace=trace,
                trace_context={"protocol": series_name, "rate_per_hour": rate},
            )
        )
    return series


def run_fig9(
    config: Optional[SweepConfig] = None,
    video: Optional[VBRVideo] = None,
    observation: Optional[Observation] = None,
    engine: Optional[Engine] = None,
) -> List[ProtocolSeries]:
    """Regenerate Figure 9's five series (bandwidths in bytes/second).

    Each series is one ``"fig9-series"`` spec on the runtime Engine, so
    the five series fan out across whatever execution backend the Engine
    resolved (process pool, socket workers) and are resumable when the
    Engine carries a checkpoint store.
    ``observation`` threads the metrics registry and optional per-slot
    trace sink through every measured point; records arrive in task order
    (all of UD's rates, then DHB-a's, ...), merged identically in serial
    and pooled runs.
    """
    config, resolved_video = fig9_config(config, video)
    # A default (None) video stays None in the payload: workers rebuild
    # the deterministic Matrix trace instead of unpickling 8170 samples.
    payload_video = None if video is None else resolved_video
    if engine is None:
        engine = Engine()
    specs = [
        RunSpec("fig9-series", (name, config, payload_video), label=name)
        for name in FIG9_SERIES
    ]
    return engine.run_values(specs, observation=observation)


def report_fig9(series: List[ProtocolSeries]) -> str:
    """Render Figure 9 as the paper's series table (MB/s, mean)."""
    header = (
        "Figure 9. Compared average bandwidth requirements of the UD protocol\n"
        "and four implementations of the DHB protocol.\n"
        "(bandwidth in MB/s; synthetic Matrix-calibrated trace)\n"
    )
    return header + format_series_table(series, value="mean", unit_scale=MEGABYTE)
