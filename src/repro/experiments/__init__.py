"""Experiment harness: one module per paper figure, plus ablations.

* :mod:`repro.experiments.config` / :mod:`repro.experiments.runner` — sweep
  configuration and the protocol-agnostic measurement loop.
* :mod:`repro.experiments.parallel` — process-pool fan-out of sweep grids
  (bit-for-bit identical to the serial path; ``REPRO_SWEEP_JOBS`` control).
* :mod:`repro.experiments.fig1to5` — the protocol-illustration figures
  (deterministic schedule maps, reproduced verbatim).
* :mod:`repro.experiments.fig7` — average bandwidth vs arrival rate
  (stream tapping, UD, DHB, NPB; 99 segments, two-hour video).
* :mod:`repro.experiments.fig8` — maximum bandwidth vs arrival rate
  (UD, DHB, NPB).
* :mod:`repro.experiments.fig9` — compressed video: UD and DHB-a/b/c/d on
  the calibrated Matrix-like VBR trace.
* :mod:`repro.experiments.ablations` — heuristic/sharing/period ablations
  (DESIGN.md §6).
"""

from .config import SweepConfig
from .fig1to5 import render_figure, render_all_figures
from .fig7 import FIG7_PROTOCOLS, run_fig7
from .fig8 import FIG8_PROTOCOLS, run_fig8
from .fig9 import run_fig9
from .parallel import ParallelSweepExecutor
from .runner import measure_protocol, sweep_protocols

__all__ = [
    "FIG7_PROTOCOLS",
    "FIG8_PROTOCOLS",
    "ParallelSweepExecutor",
    "SweepConfig",
    "measure_protocol",
    "render_all_figures",
    "render_figure",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "sweep_protocols",
]
