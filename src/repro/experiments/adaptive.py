"""Adaptive vs. static DHB over a nonstationary day — the retune payoff study.

Static DHB is provisioned once; a real service's demand is not stationary:
it swings through a diurnal cycle and spikes when an event ignites a
flash/ring of correlated requests.  This study replays one seeded
24-hour day — a diurnal profile with an evening event-ring surge
superposed — through two arms:

* **static** — plain :class:`~repro.core.dhb.DHBProtocol`, the paper's
  protocol at its fixed operating point;
* **adaptive** — :class:`~repro.core.adaptive.AdaptiveDHBProtocol`
  retuning its slack dial at epoch boundaries from an EWMA rate estimate.

Both arms admit the *identical* digest-keyed arrival trace
(:func:`repro.runtime.seeds.arrival_trace`), so any bandwidth difference
is the protocol's, not sampling noise.  Both arms operate under the same
advertised deadline guarantee ``W = (1 + max_slack) * d``: the adaptive
arm may defer playback start by up to ``max_slack`` slots (it never
exceeds the ladder's top rung), and the static arm trivially satisfies
the same bound.  "Adaptive holds" therefore means: at the evening peak
the adaptive arm's bandwidth stays strictly below static DHB's, while
every admitted client still receives every segment inside its
admission-time window (the zero-loss retune invariant, property-tested in
``tests/core/test_adaptive.py``).

The two arms are plain Engine tasks (kind ``"adaptive-arm"``), so the
study runs serial, pooled, or on socket workers with bit-identical
results, and checkpoints/resumes like any other spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.adaptive import AdaptiveDHBProtocol, SlackLadder, default_slack_ladder
from ..core.dhb import DHBProtocol
from ..errors import ConfigurationError
from ..obs.trace import Observation
from ..runtime import Engine, RunSpec
from ..runtime.seeds import arrival_trace
from ..sim.slotted import SlottedSimulation
from ..units import HOUR, TWO_HOURS
from ..workload.spec import WorkloadSpec, as_workload


def default_day_workload(quick: bool = False) -> WorkloadSpec:
    """The study's seeded day: diurnal demand + an evening event ring.

    A child-audience diurnal profile carries the baseline swing; at
    19:00 an event "ignites" three attenuating rings of correlated
    demand (:class:`~repro.workload.spatial.EventRings`) — the flash
    crowd landing on top of the evening shoulder, which is exactly where
    a fixed operating point is most wrong.
    """
    scale = 0.5 if quick else 1.0
    return WorkloadSpec.superpose(
        [
            WorkloadSpec.diurnal("child", 120.0 * scale),
            WorkloadSpec.ring(
                peak_rate_per_hour=400.0 * scale,
                n_rings=3,
                ring_delay_hours=0.5,
                attenuation=0.5,
                decay_hours=1.5,
                start_hours=19.0,
            ),
        ]
    )


@dataclass(frozen=True)
class AdaptiveStudyConfig:
    """One day-study configuration, shared verbatim by both arms.

    Frozen and built from plain values so a ``("adaptive-arm", (arm,
    config))`` payload pickles across backends and digests stably for
    checkpointing.

    Attributes
    ----------
    n_segments:
        Segment count of both protocols (the grid; never retuned).
    duration:
        Video length in seconds; the slot is ``duration / n_segments``.
    horizon_hours:
        Length of the simulated day.
    seed:
        Workload seed of the shared arrival trace.
    epoch_slots, alpha:
        Adaptive arm's retune cadence and EWMA smoothing.
    slack_ladder:
        ``(req/slot threshold, slack)`` rungs; ``None`` selects
        :func:`~repro.core.adaptive.default_slack_ladder`.
    workload:
        The day's demand; ``None`` selects :func:`default_day_workload`.
    warmup_fraction:
        Leading fraction of the horizon excluded from measurement (the
        day starts empty at midnight, so 0 is the honest default).
    """

    n_segments: int = 99
    duration: float = TWO_HOURS
    horizon_hours: float = 24.0
    seed: int = 2001
    epoch_slots: int = 16
    alpha: float = 0.2
    slack_ladder: Optional[SlackLadder] = None
    workload: Optional[WorkloadSpec] = None
    warmup_fraction: float = 0.0

    def __post_init__(self):
        if self.n_segments < 1:
            raise ConfigurationError("n_segments must be >= 1")
        if self.duration <= 0:
            raise ConfigurationError("duration must be > 0")
        if self.horizon_hours <= 0:
            raise ConfigurationError("horizon_hours must be > 0")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        if self.slack_ladder is None:
            object.__setattr__(
                self, "slack_ladder", default_slack_ladder(self.n_segments)
            )
        workload = (
            default_day_workload() if self.workload is None else as_workload(self.workload)
        )
        object.__setattr__(self, "workload", workload)

    @property
    def slot_duration(self) -> float:
        """Slot length in seconds."""
        return self.duration / self.n_segments

    @property
    def horizon_slots(self) -> int:
        return int(self.horizon_hours * HOUR / self.slot_duration)

    @property
    def warmup_slots(self) -> int:
        return int(self.horizon_slots * self.warmup_fraction)

    @property
    def max_slack(self) -> int:
        """The ladder's top rung — fixes the shared deadline guarantee."""
        return max(slack for _, slack in self.slack_ladder)

    @property
    def deadline_guarantee_seconds(self) -> float:
        """``W = (1 + max_slack) * d``, advertised identically to both arms."""
        return (1 + self.max_slack) * self.slot_duration

    def quick(self) -> "AdaptiveStudyConfig":
        """A CI-sized variant: same day shape, hundreds of slots."""
        return AdaptiveStudyConfig(
            n_segments=30,
            duration=TWO_HOURS,
            horizon_hours=self.horizon_hours,
            seed=self.seed,
            epoch_slots=8,
            alpha=self.alpha,
            slack_ladder=None,
            workload=default_day_workload(quick=True),
            warmup_fraction=self.warmup_fraction,
        )


@dataclass(frozen=True)
class ArmResult:
    """One arm's day, reduced to comparable numbers.

    ``hourly_peaks[h]`` is the largest post-warmup slot load observed in
    hour ``h`` of the day (``-1.0`` marks hours without measured slots),
    which is what the study's hour-by-hour table renders.
    """

    arm: str
    mean_streams: float
    peak_streams: float
    mean_wait: float
    n_requests: int
    hourly_peaks: Tuple[float, ...]
    retunes: int
    max_slack_used: int
    slot_duration: float

    @property
    def worst_startup_wait_seconds(self) -> float:
        """Largest playback-start deferral this arm actually imposed."""
        return (1 + self.max_slack_used) * self.slot_duration


def _hourly_peaks(
    series: List[int], warmup_slots: int, slot_duration: float, horizon_hours: float
) -> Tuple[float, ...]:
    hours = int(math.ceil(horizon_hours))
    peaks = [-1.0] * hours
    for index, load in enumerate(series):
        hour = int((warmup_slots + index) * slot_duration // HOUR)
        if hour < hours and load > peaks[hour]:
            peaks[hour] = float(load)
    return tuple(peaks)


def run_adaptive_arm(
    arm: str,
    study: AdaptiveStudyConfig,
    observation: Optional[Observation] = None,
) -> ArmResult:
    """Replay the study's day through one arm — the ``"adaptive-arm"`` handler."""
    if arm == "static":
        protocol = DHBProtocol(n_segments=study.n_segments)
    elif arm == "adaptive":
        protocol = AdaptiveDHBProtocol(
            n_segments=study.n_segments,
            slack_ladder=study.slack_ladder,
            epoch_slots=study.epoch_slots,
            alpha=study.alpha,
        )
    else:
        raise ConfigurationError(f"arm must be 'static' or 'adaptive', got {arm!r}")
    times = arrival_trace(study.seed, study.workload, study.horizon_hours)
    metrics = observation.metrics if observation is not None else None
    result = SlottedSimulation(
        protocol,
        study.slot_duration,
        study.horizon_slots,
        warmup_slots=study.warmup_slots,
        keep_series=True,
        metrics=metrics,
    ).run(times)
    adaptive = isinstance(protocol, AdaptiveDHBProtocol)
    return ArmResult(
        arm=arm,
        mean_streams=result.mean_streams,
        peak_streams=float(result.max_streams),
        mean_wait=result.mean_wait,
        n_requests=result.n_requests,
        hourly_peaks=_hourly_peaks(
            result.series, study.warmup_slots, study.slot_duration, study.horizon_hours
        ),
        retunes=len(protocol.retunes) if adaptive else 0,
        max_slack_used=protocol.max_slack_used if adaptive else 0,
        slot_duration=study.slot_duration,
    )


@dataclass(frozen=True)
class AdaptiveStudyResult:
    """Both arms of one day study, plus the configuration that framed them."""

    config: AdaptiveStudyConfig
    static: ArmResult
    adaptive: ArmResult

    @property
    def peak_reduction(self) -> float:
        """Fractional peak-bandwidth reduction of adaptive over static."""
        if self.static.peak_streams <= 0:
            return 0.0
        return 1.0 - self.adaptive.peak_streams / self.static.peak_streams

    @property
    def verified(self) -> bool:
        """The acceptance claim: adaptive peaks strictly below static while
        both arms honor the same ``W = (1 + max_slack) * d`` guarantee."""
        within_guarantee = (
            self.adaptive.worst_startup_wait_seconds
            <= self.config.deadline_guarantee_seconds
        )
        return (
            self.adaptive.peak_streams < self.static.peak_streams and within_guarantee
        )

    def render(self) -> str:
        """Hour-by-hour peak table plus the verdict line."""
        lines = [
            f"Adaptive DHB day study — workload {self.config.workload.label()}",
            f"  n={self.config.n_segments}, slot={self.config.slot_duration:.0f}s, "
            f"epoch={self.config.epoch_slots} slots, "
            f"guarantee W={self.config.deadline_guarantee_seconds:.0f}s",
            "",
            "  hour   static-peak   adaptive-peak",
        ]
        for hour, (s, a) in enumerate(
            zip(self.static.hourly_peaks, self.adaptive.hourly_peaks)
        ):
            if s < 0 and a < 0:
                continue
            lines.append(f"  {hour:4d}   {s:11.0f}   {a:13.0f}")
        lines += [
            "",
            f"  requests: {self.static.n_requests} (identical trace, both arms)",
            f"  day peak: static {self.static.peak_streams:.0f} vs adaptive "
            f"{self.adaptive.peak_streams:.0f} streams "
            f"({100.0 * self.peak_reduction:.1f}% reduction)",
            f"  day mean: static {self.static.mean_streams:.2f} vs adaptive "
            f"{self.adaptive.mean_streams:.2f} streams",
            f"  adaptive retunes: {self.adaptive.retunes}, max slack used "
            f"{self.adaptive.max_slack_used} "
            f"(worst start deferral {self.adaptive.worst_startup_wait_seconds:.0f}s "
            f"<= W {self.config.deadline_guarantee_seconds:.0f}s)",
            f"  verified: {'yes' if self.verified else 'NO'} — adaptive "
            f"{'holds' if self.verified else 'does not hold'} the peak below "
            "static under the shared deadline guarantee",
        ]
        return "\n".join(lines)


def run_adaptive_study(
    config: Optional[AdaptiveStudyConfig] = None,
    quick: bool = False,
    n_jobs: int = 1,
    observation: Optional[Observation] = None,
    engine: Optional[Engine] = None,
) -> AdaptiveStudyResult:
    """Run both arms (as Engine tasks) and assemble the comparison.

    Parameters
    ----------
    config:
        Study configuration; defaults to the full-size day.
    quick:
        Shrink the default config to CI size (ignored when ``config``
        is given — callers who build a config choose its size).
    n_jobs:
        Worker count when no ``engine`` is passed; the two arms are
        independent specs, so 2 workers run the day in one wall-day.
    observation, engine:
        As in :func:`repro.experiments.runner.sweep_protocols`.
    """
    if config is None:
        config = AdaptiveStudyConfig().quick() if quick else AdaptiveStudyConfig()
    specs = [
        RunSpec("adaptive-arm", (arm, config), label=f"adaptive-study:{arm}")
        for arm in ("static", "adaptive")
    ]
    if engine is None:
        engine = Engine(n_jobs=n_jobs)
    static_result, adaptive_result = engine.run_values(specs, observation=observation)
    return AdaptiveStudyResult(
        config=config, static=static_result, adaptive=adaptive_result
    )
