"""Figure 7 — compared *average* bandwidth of stream tapping, UD, DHB, NPB.

Paper setup: a two-hour video, 99 segments for the slotted protocols,
Poisson arrivals from 1 to 1000 requests/hour (log axis), unlimited client
buffer for stream tapping, bandwidth in multiples of the consumption rate.

Published shape (asserted by the bench/tests):

* DHB requires less average bandwidth than all rivals at every rate above
  two requests per hour;
* stream tapping is competitive with DHB at one request per hour but grows
  without bound (it offers zero-delay access);
* NPB is flat — its deterministic schedule ignores the arrival rate;
* DHB stays below NPB at *all* rates, plateauing near the harmonic number
  H(99) ≈ 5.18 < 6 streams.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.metrics import ProtocolSeries
from ..analysis.tables import format_series_table
from ..obs.trace import Observation
from ..runtime import Engine
from .config import SweepConfig
from .runner import sweep_protocols

#: Registry names and display labels, in the paper's legend order.
FIG7_PROTOCOLS = (
    ("stream-tapping", "Stream Tapping/Patching"),
    ("ud", "UD Protocol"),
    ("dhb", "DHB Protocol"),
    ("npb", "New Pagoda Broadcasting"),
)


def run_fig7(
    config: Optional[SweepConfig] = None,
    observation: Optional[Observation] = None,
    engine: Optional[Engine] = None,
) -> List[ProtocolSeries]:
    """Regenerate Figure 7's four series.

    Returns one :class:`~repro.analysis.metrics.ProtocolSeries` per
    protocol, in legend order.  ``observation`` threads a metrics registry
    and optional per-slot trace sink through every measured point;
    ``engine`` runs the grid on an existing runtime Engine, which picks
    the execution backend (serial, process pool, socket workers) and may
    journal completed cells to a :class:`~repro.runtime.CheckpointStore`
    so an interrupted regeneration resumes where it stopped.
    """
    if config is None:
        config = SweepConfig()
    names = [name for name, _ in FIG7_PROTOCOLS]
    labels = [label for _, label in FIG7_PROTOCOLS]
    return sweep_protocols(
        names, config, labels, observation=observation, engine=engine
    )


def report_fig7(series: List[ProtocolSeries]) -> str:
    """Render Figure 7 as the paper's series table (streams, mean)."""
    header = (
        "Figure 7. Compared average bandwidth requirements of stream "
        "tapping,\nNPB, UD and DHB protocols with 99 segments.\n"
        "(bandwidth in multiples of the video consumption rate)\n"
    )
    return header + format_series_table(series, value="mean")
