"""Multi-video catalog experiment.

The paper evaluates per-video behaviour; a server carries a *catalog* whose
titles differ wildly in popularity (the introduction's whole motivation).
This experiment splits an aggregate Poisson request stream across a Zipf
catalog and compares three provisioning policies:

* **NPB everywhere** — a fixed six-stream schedule per title;
* **stream tapping everywhere** — purely reactive per title;
* **DHB everywhere** — the paper's protocol per title;
* **best-per-title** — the cheaper of DHB and tapping for each title (what
  an operator exploiting DHB's flexibility would deploy).

Returns per-title and total provisioned bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.tables import format_simple_table
from ..core.dhb import DHBProtocol
from ..errors import ConfigurationError
from ..obs.trace import Observation
from ..protocols.npb import pagoda_streams_for_segments
from ..protocols.stream_tapping import StreamTappingProtocol
from ..runtime import Engine, RunSpec
from ..workload.popularity import ZipfCatalog
from .config import SweepConfig
from .runner import arrivals_for_rate, measure_protocol


@dataclass(frozen=True)
class CatalogResult:
    """Outcome of one catalog comparison."""

    n_videos: int
    total_rate_per_hour: float
    per_title_rates: List[float]
    dhb_streams: List[float]
    tapping_streams: List[float]
    npb_streams: float

    @property
    def total_dhb(self) -> float:
        """Server bandwidth with DHB on every title."""
        return sum(self.dhb_streams)

    @property
    def total_tapping(self) -> float:
        """Server bandwidth with stream tapping on every title."""
        return sum(self.tapping_streams)

    @property
    def total_npb(self) -> float:
        """Server bandwidth with NPB on every title."""
        return self.npb_streams * self.n_videos

    @property
    def total_best(self) -> float:
        """Cheapest protocol per title."""
        return sum(
            min(dhb, tap) for dhb, tap in zip(self.dhb_streams, self.tapping_streams)
        )

    def render(self) -> str:
        """Plain-text report."""
        rows = []
        for rank in range(self.n_videos):
            rows.append(
                [
                    f"#{rank + 1}",
                    f"{self.per_title_rates[rank]:.1f}",
                    f"{self.dhb_streams[rank]:.2f}",
                    f"{self.tapping_streams[rank]:.2f}",
                    f"{self.npb_streams:.0f}",
                ]
            )
        table = format_simple_table(
            ["title", "req/h", "DHB", "tapping", "NPB"], rows
        )
        summary = (
            f"totals: DHB {self.total_dhb:.1f} | tapping {self.total_tapping:.1f} "
            f"| NPB {self.total_npb:.0f} | best-per-title {self.total_best:.1f} streams"
        )
        return f"{table}\n{summary}"


def measure_catalog_title(
    rank: int,
    rate: float,
    config: SweepConfig,
    observation: Optional[Observation] = None,
) -> Dict[str, float]:
    """Measure one catalog title — the ``"catalog-title"`` task handler.

    Derives the per-title config (``seed + rank`` keeps title streams
    independent but reproducible) and simulates DHB and stream tapping on
    the same seeded arrivals.  Returns plain floats so the value pickles
    cheaply out of pool workers.
    """
    metrics = observation.metrics if observation is not None else None
    trace = observation.trace if observation is not None else None
    per_title = config.replace(rates_per_hour=(rate,), seed=config.seed + rank)
    arrivals = arrivals_for_rate(per_title, rate)
    dhb_point = measure_protocol(
        DHBProtocol(n_segments=config.n_segments),
        per_title,
        rate,
        arrival_times=arrivals,
        metrics=metrics,
        trace=trace,
        trace_context={"protocol": "dhb", "title_rank": rank, "rate_per_hour": rate},
    )
    tapping_point = measure_protocol(
        StreamTappingProtocol(
            duration=config.duration, expected_rate_per_hour=rate
        ),
        per_title,
        rate,
        arrival_times=arrivals,
        metrics=metrics,
        trace=trace,
        trace_context={
            "protocol": "stream-tapping",
            "title_rank": rank,
            "rate_per_hour": rate,
        },
    )
    return {
        "rank": float(rank),
        "rate_per_hour": rate,
        "dhb_mean": dhb_point.mean_bandwidth,
        "tapping_mean": tapping_point.mean_bandwidth,
    }


def run_catalog(
    n_videos: int = 10,
    total_rate_per_hour: float = 300.0,
    theta: float = 1.0,
    config: Optional[SweepConfig] = None,
    observation: Optional[Observation] = None,
    engine: Optional[Engine] = None,
) -> CatalogResult:
    """Run the catalog comparison.

    Each title gets its own seeded Poisson stream at its Zipf share of the
    aggregate rate; DHB and stream tapping are simulated per title (one
    ``"catalog-title"`` Engine task per title, so titles fan out across
    the Engine's execution backend and checkpoint like any other spec),
    NPB's cost is its fixed allocation.
    """
    if n_videos < 1:
        raise ConfigurationError("need >= 1 video")
    if total_rate_per_hour <= 0:
        raise ConfigurationError("total rate must be > 0")
    if config is None:
        config = SweepConfig().quick(base_hours=10.0, min_requests=60)
    if engine is None:
        engine = Engine()
    catalog = ZipfCatalog(n_videos=n_videos, theta=theta)
    npb_streams = float(pagoda_streams_for_segments(config.n_segments))

    rates = [
        max(catalog.rate_for(rank, total_rate_per_hour), 0.1)
        for rank in range(n_videos)
    ]
    specs = [
        RunSpec("catalog-title", (rank, rate, config), label=f"title#{rank + 1}")
        for rank, rate in enumerate(rates)
    ]
    measured = engine.run_values(specs, observation=observation)

    return CatalogResult(
        n_videos=n_videos,
        total_rate_per_hour=total_rate_per_hour,
        per_title_rates=rates,
        dhb_streams=[cell["dhb_mean"] for cell in measured],
        tapping_streams=[cell["tapping_mean"] for cell in measured],
        npb_streams=npb_streams,
    )
