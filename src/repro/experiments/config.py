"""Sweep configuration.

One :class:`SweepConfig` drives every figure: the video, the segment count,
the swept arrival rates, and the steady-state measurement policy (horizon
scaled so low-rate points still see enough requests, warmup fraction
discarded, seeded workloads shared across protocols).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from ..errors import ConfigurationError
from ..workload.spec import WorkloadSpec, as_workload
from ..runtime.config import (
    DEFAULT_BASE_HOURS,
    DEFAULT_MIN_REQUESTS,
    DEFAULT_SEED,
    DEFAULT_WARMUP_FRACTION,
    QUICK_BASE_HOURS,
    QUICK_MIN_REQUESTS,
    QUICK_RATES_PER_HOUR,
)
from ..units import TWO_HOURS

#: The paper's Figures 7–9 sweep request rates from 1 to 1000 per hour on a
#: logarithmic axis; these points cover the same span.
PAPER_RATES: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one figure-style sweep.

    Attributes
    ----------
    duration:
        Video length ``D`` in seconds (two hours in Figures 7/8).
    n_segments:
        Segment count for the slotted protocols (99 in Figures 7/8).
    rates_per_hour:
        The swept Poisson arrival rates.
    base_hours:
        Minimum simulated hours per point (before warmup discarding).
    min_requests:
        Horizons are stretched at low rates so at least this many requests
        are simulated, keeping confidence intervals comparable across the
        sweep.
    warmup_fraction:
        Leading fraction of the horizon excluded from statistics.
    seed:
        Experiment seed; each (protocol-independent) rate gets its own
        derived arrival stream, shared by every protocol at that rate
        (common random numbers).
    workloads:
        Optional nonstationary sweep axis.  When non-empty, the sweep
        iterates over these :class:`~repro.workload.spec.WorkloadSpec`
        points *instead of* ``rates_per_hour`` (entries may be given as
        spec strings or rates; they are normalised to specs).  Each point
        is labelled and horizon-sized by its ``mean_rate_per_hour``, and
        its arrival trace is cached under the spec's canonical digest.
    """

    duration: float = TWO_HOURS
    n_segments: int = 99
    rates_per_hour: Tuple[float, ...] = PAPER_RATES
    base_hours: float = DEFAULT_BASE_HOURS
    min_requests: int = DEFAULT_MIN_REQUESTS
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION
    seed: int = DEFAULT_SEED
    workloads: Tuple[WorkloadSpec, ...] = ()

    def __post_init__(self):
        if self.duration <= 0:
            raise ConfigurationError("duration must be > 0")
        if self.n_segments < 1:
            raise ConfigurationError("n_segments must be >= 1")
        if not self.rates_per_hour:
            raise ConfigurationError("sweep needs at least one rate")
        if any(rate <= 0 for rate in self.rates_per_hour):
            raise ConfigurationError("swept rates must be > 0")
        if self.base_hours <= 0:
            raise ConfigurationError("base_hours must be > 0")
        if self.min_requests < 1:
            raise ConfigurationError("min_requests must be >= 1")
        if not 0 <= self.warmup_fraction < 1:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        object.__setattr__(
            self, "workloads", tuple(as_workload(w) for w in self.workloads)
        )
        for spec in self.workloads:
            if spec.mean_rate_per_hour <= 0:
                raise ConfigurationError(
                    f"workload {spec.label()!r} has non-positive mean rate"
                )

    @property
    def slot_duration(self) -> float:
        """Slot length ``d = D / n`` in seconds."""
        return self.duration / self.n_segments

    def horizon_hours(self, rate_per_hour: float) -> float:
        """Simulated hours for one point (stretched at low rates)."""
        if rate_per_hour <= 0:
            raise ConfigurationError("rate must be > 0")
        return max(self.base_hours, self.min_requests / rate_per_hour)

    def sweep_points(self) -> Tuple[Union[float, WorkloadSpec], ...]:
        """The points this sweep iterates over.

        Floats (the stationary rate axis) unless :attr:`workloads` is set,
        in which case the workload specs themselves.  Downstream code keys
        caches, labels, and payloads off these values directly, so the
        float form stays bit-identical to the pre-workload sweeps.
        """
        return self.workloads if self.workloads else self.rates_per_hour

    @staticmethod
    def nominal_rate(point: Union[float, WorkloadSpec]) -> float:
        """Mean request rate of a sweep point (req/hour)."""
        if isinstance(point, WorkloadSpec):
            return point.mean_rate_per_hour
        return float(point)

    def horizon_hours_for(self, point: Union[float, WorkloadSpec]) -> float:
        """Simulated hours for one sweep point (rate or workload)."""
        return self.horizon_hours(self.nominal_rate(point))

    def quick(self, **overrides) -> "SweepConfig":
        """A cheaper copy for tests: short horizons, few rates.

        Keyword overrides are applied on top of the quick defaults.
        """
        quick_defaults = dict(
            rates_per_hour=QUICK_RATES_PER_HOUR,
            base_hours=QUICK_BASE_HOURS,
            min_requests=QUICK_MIN_REQUESTS,
        )
        quick_defaults.update(overrides)
        return self.replace(**quick_defaults)

    def replace(self, **overrides) -> "SweepConfig":
        """Functional update (dataclasses.replace with validation)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)
