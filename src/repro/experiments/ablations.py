"""Ablations over DHB's design choices (DESIGN.md §6).

Three studies:

* :func:`heuristic_ablation` — swap the slot chooser: the paper's
  least-loaded/latest rule vs always-latest (the naive scheme the "slot
  120!" argument kills), earliest-fit, and random-fit.  The interesting
  output is the *maximum* bandwidth: the heuristic levels load, the naive
  rule piles segments onto common-multiple slots.
* :func:`sharing_ablation` — disable the "already scheduled?" check, which
  turns DHB into per-request scheduling.  Quantifies how much of the saving
  is sharing (at high rates: nearly all of it).
* :func:`peak_demonstration` — the paper's worst case in miniature: with at
  least one request per slot and the always-latest rule, segment periods
  synchronise and slots at common multiples carry large bursts; the
  heuristic caps the peak near the saturation average.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..analysis.metrics import ProtocolSeries
from ..core.dhb import DHBProtocol
from ..core.heuristic import (
    SlotChooser,
    always_latest_chooser,
    earliest_min_load_chooser,
    latest_min_load_chooser,
    make_random_chooser,
    make_slack_chooser,
)
from ..errors import ConfigurationError
from ..obs.trace import Observation
from ..runtime import Engine, RunSpec
from ..sim.rng import RandomStreams
from ..sim.slotted import SlottedSimulation
from ..workload.arrivals import DeterministicArrivals
from .config import SweepConfig
from .runner import arrivals_for_rate, measure_protocol

#: Slot-chooser arm labels, in presentation order.
HEURISTIC_ARMS = (
    "min-load/latest (paper)",
    "min-load/earliest",
    "always-latest (naive)",
    "random-fit",
)

#: Sharing-study arm labels mapped to the ``enable_sharing`` flag.
SHARING_ARMS = {"DHB (sharing)": True, "DHB (no sharing)": False}


def _choosers(seed: int) -> Dict[str, SlotChooser]:
    return {
        "min-load/latest (paper)": latest_min_load_chooser,
        "min-load/earliest": earliest_min_load_chooser,
        "always-latest (naive)": always_latest_chooser,
        "random-fit": make_random_chooser(RandomStreams(seed).get("chooser")),
    }


def run_ablation_series(
    study: str,
    arm,
    config: SweepConfig,
    observation: Optional[Observation] = None,
) -> ProtocolSeries:
    """Measure one ablation arm — the ``"ablation-series"`` task handler.

    One arm is a whole series (not one grid cell) because the random-fit
    chooser carries a seeded rng whose state must advance across the rates
    of *its own* series only; splitting per-point would replay the stream.
    The chooser is built once per series from ``config.seed``, exactly as
    the pre-runtime serial loops did.
    """
    metrics = observation.metrics if observation is not None else None
    trace = observation.trace if observation is not None else None
    if study == "heuristic":
        choosers = _choosers(config.seed)
        if arm not in choosers:
            raise ConfigurationError(f"unknown heuristic arm {arm!r}")
        chooser = choosers[arm]
        label = arm

        def build_protocol():
            return DHBProtocol(n_segments=config.n_segments, chooser=chooser)

    elif study == "sharing":
        if arm not in SHARING_ARMS:
            raise ConfigurationError(f"unknown sharing arm {arm!r}")
        sharing = SHARING_ARMS[arm]
        label = arm

        def build_protocol():
            return DHBProtocol(n_segments=config.n_segments, enable_sharing=sharing)

    elif study == "slack":
        slack = int(arm)
        label = "slack=inf" if slack >= 1_000_000 else f"slack={slack}"

        def build_protocol():
            return DHBProtocol(
                n_segments=config.n_segments, chooser=make_slack_chooser(slack)
            )

    else:
        raise ConfigurationError(f"unknown ablation study {study!r}")
    series = ProtocolSeries(label)
    for rate in config.rates_per_hour:
        series.add(
            measure_protocol(
                build_protocol(),
                config,
                rate,
                arrival_times=arrivals_for_rate(config, rate),
                metrics=metrics,
                trace=trace,
                trace_context={"protocol": label, "rate_per_hour": rate},
            )
        )
    return series


def _run_study(
    study: str,
    arms,
    config: Optional[SweepConfig],
    observation: Optional[Observation],
    engine: Optional[Engine],
) -> List[ProtocolSeries]:
    # One "ablation-series" spec per arm: arms fan out across the engine's
    # execution backend and journal individually under a checkpoint store.
    if config is None:
        config = SweepConfig()
    if engine is None:
        engine = Engine()
    specs = [
        RunSpec("ablation-series", (study, arm, config), label=f"{study}:{arm}")
        for arm in arms
    ]
    return engine.run_values(specs, observation=observation)


def heuristic_ablation(
    config: Optional[SweepConfig] = None,
    observation: Optional[Observation] = None,
    engine: Optional[Engine] = None,
) -> List[ProtocolSeries]:
    """Sweep DHB under each slot chooser (one Engine task per arm)."""
    return _run_study("heuristic", HEURISTIC_ARMS, config, observation, engine)


def sharing_ablation(
    config: Optional[SweepConfig] = None,
    observation: Optional[Observation] = None,
    engine: Optional[Engine] = None,
) -> List[ProtocolSeries]:
    """DHB with and without instance sharing (one Engine task per arm)."""
    return _run_study("sharing", tuple(SHARING_ARMS), config, observation, engine)


def slack_dial_ablation(
    config: Optional[SweepConfig] = None,
    slacks: tuple = (0, 1, 2, 4, 1_000_000),
    observation: Optional[Observation] = None,
    engine: Optional[Engine] = None,
) -> List[ProtocolSeries]:
    """Sweep the average-vs-peak dial of the slack chooser.

    ``slack = 0`` is the paper's heuristic; the last arm approximates the
    always-latest rule.  The output is read with both statistics: means fall
    slightly with slack, maxima climb steeply — the trade-off the paper's
    future work ("reduce or eliminate bandwidth peaks without increasing the
    average video bandwidth") is about.
    """
    return _run_study("slack", slacks, config, observation, engine)


def peak_demonstration(
    n_segments: int = 40, n_slots: int = 2000
) -> Dict[str, Dict[str, float]]:
    """The "slot 120!" argument in miniature, heuristic vs naive.

    Drives DHB with exactly one request per slot (sustained saturation) and
    reports mean/max bandwidth for the paper's heuristic and for the naive
    always-latest rule.  The naive rule's peak grows far beyond its mean —
    slots whose index is a common multiple of many segment periods receive
    an instance of each — while the heuristic's peak stays within a couple
    of streams of the harmonic mean.
    """
    results: Dict[str, Dict[str, float]] = {}
    arrivals = DeterministicArrivals(interval=1.0, offset=0.5)
    times = arrivals.generate(float(n_slots), np.random.default_rng(0))
    for label, chooser in (
        ("heuristic", latest_min_load_chooser),
        ("always-latest", always_latest_chooser),
    ):
        protocol = DHBProtocol(n_segments=n_segments, chooser=chooser)
        sim = SlottedSimulation(
            protocol,
            slot_duration=1.0,
            horizon_slots=n_slots,
            warmup_slots=n_slots // 10,
        )
        outcome = sim.run(times)
        results[label] = {
            "mean_streams": outcome.mean_streams,
            "max_streams": outcome.max_streams,
        }
    return results
