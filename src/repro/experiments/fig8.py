"""Figure 8 — compared *maximum* bandwidth of UD, DHB and NPB.

Same setup as Figure 7 (two-hour video, 99 segments), but the y-axis is the
peak number of concurrent streams over the run.

Published shape (asserted by the bench/tests): "NPB has the smallest maximum
bandwidth and DHB the highest but the difference between these two protocols
never exceeds twice the video consumption rate" — i.e.
``max(DHB) - max(NPB) <= 2`` streams, with UD in between.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.metrics import ProtocolSeries
from ..analysis.tables import format_series_table
from ..obs.trace import Observation
from ..runtime import Engine
from .config import SweepConfig
from .runner import sweep_protocols

#: Registry names and display labels, in the paper's legend order.
FIG8_PROTOCOLS = (
    ("ud", "UD Protocol"),
    ("dhb", "DHB Protocol"),
    ("npb", "New Pagoda Broadcasting"),
)


def run_fig8(
    config: Optional[SweepConfig] = None,
    observation: Optional[Observation] = None,
    engine: Optional[Engine] = None,
) -> List[ProtocolSeries]:
    """Regenerate Figure 8's three series (optionally on a shared Engine).

    The Engine decides *where* the grid runs (any execution backend) and
    whether completed cells are checkpointed; the series are identical
    either way.
    """
    if config is None:
        config = SweepConfig()
    names = [name for name, _ in FIG8_PROTOCOLS]
    labels = [label for _, label in FIG8_PROTOCOLS]
    return sweep_protocols(
        names, config, labels, observation=observation, engine=engine
    )


def report_fig8(series: List[ProtocolSeries]) -> str:
    """Render Figure 8 as the paper's series table (streams, max)."""
    header = (
        "Figure 8. Compared maximum bandwidth requirements of NPB, UD and\n"
        "DHB protocols with 99 segments.\n"
        "(bandwidth in multiples of the video consumption rate)\n"
    )
    return header + format_series_table(series, value="max", precision=0)
