"""The paper's primary contribution: Dynamic Heuristic Broadcasting (DHB).

Modules
-------
* :mod:`repro.core.schedule` — the slotted transmission schedule (per-slot
  segment instances, per-segment next-transmission index, bandwidth loads).
* :mod:`repro.core.heuristic` — the slot-selection heuristic of the paper's
  Figure 6 (least-loaded slot in the window, ties to the latest slot) and the
  ablation alternatives.
* :mod:`repro.core.periods` — per-segment maximum transmission periods
  ``T[j]`` (uniform ``T[j] = j`` for CBR; custom vectors for VBR).
* :mod:`repro.core.client` — client reception plans and on-time verification.
* :mod:`repro.core.dhb` — the protocol itself.
* :mod:`repro.core.adaptive` — DHB with an epoch-retuned slack dial for
  nonstationary workloads (EWMA rate estimator + slack ladder).
* :mod:`repro.core.variants` — the DHB-a/b/c/d configurations of Section 4.
* :mod:`repro.core.bandwidth_limited` — extension: DHB with a cap on the
  number of streams a client may receive simultaneously (the paper's
  future-work item).
"""

from .adaptive import (
    AdaptiveDHBProtocol,
    RetuneEvent,
    SlotRateEstimator,
    default_slack_ladder,
)
from .bandwidth_limited import BandwidthLimitedDHB
from .buffer import BufferProfile, buffer_profile, worst_case_buffer
from .client import ClientPlan
from .dhb import DHBProtocol
from .interactive import InteractiveDHB
from .heuristic import (
    SlotChooser,
    always_latest_chooser,
    earliest_min_load_chooser,
    latest_min_load_chooser,
    make_random_chooser,
    make_slack_chooser,
    random_chooser,
)
from .periods import PeriodVector
from .schedule import SlotSchedule
from .variants import DHBVariant, dhb_a, dhb_b, dhb_c, dhb_d, make_all_variants

__all__ = [
    "AdaptiveDHBProtocol",
    "BandwidthLimitedDHB",
    "BufferProfile",
    "ClientPlan",
    "DHBProtocol",
    "DHBVariant",
    "InteractiveDHB",
    "PeriodVector",
    "RetuneEvent",
    "SlotChooser",
    "SlotRateEstimator",
    "SlotSchedule",
    "always_latest_chooser",
    "buffer_profile",
    "default_slack_ladder",
    "dhb_a",
    "dhb_b",
    "dhb_c",
    "dhb_d",
    "earliest_min_load_chooser",
    "latest_min_load_chooser",
    "make_all_variants",
    "make_random_chooser",
    "make_slack_chooser",
    "random_chooser",
    "worst_case_buffer",
]
