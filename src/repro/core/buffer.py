"""Client set-top-box buffer occupancy.

The whole broadcasting-protocol family exists because Viswanathan and
Imielinski "proposed to add to the customer set-top box enough buffer space
to store between, say, thirty minutes and one hour of video data", letting
the STB "receive most video data out of sequence".  This module quantifies
how much buffer a DHB client actually needs: given a client's reception plan
and the per-segment sizes, it replays reception against playout and reports
the occupancy profile.

Conventions (slotted): segment assigned to absolute slot ``k`` is fully
buffered at the end of slot ``k``; the client starts watching at the
beginning of slot ``i + 1`` and consumes segment ``S_j`` during relative
slot ``j``, releasing its bytes at that slot's end.  A segment consumed
in the same slot it arrives (``k == i + j``) streams through and never
occupies the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError, SchedulingError
from .client import ClientPlan


@dataclass(frozen=True)
class BufferProfile:
    """Buffer occupancy of one client across its viewing session.

    Attributes
    ----------
    arrival_slot:
        The client's arrival slot ``i``.
    occupancy:
        ``occupancy[t]`` is the buffered byte count at the end of absolute
        slot ``arrival_slot + 1 + t`` (one entry per slot of the session).
    peak_bytes:
        Maximum buffered bytes at any slot boundary.
    total_bytes:
        Total size of the video (sum of segment sizes).
    """

    arrival_slot: int
    occupancy: List[float]
    peak_bytes: float
    total_bytes: float

    @property
    def peak_fraction_of_video(self) -> float:
        """Peak buffer as a fraction of the total video size."""
        return self.peak_bytes / self.total_bytes if self.total_bytes > 0 else 0.0


def buffer_profile(
    plan: ClientPlan,
    segment_bytes: Optional[Sequence[float]] = None,
) -> BufferProfile:
    """Replay ``plan`` and compute the client's buffer occupancy.

    Parameters
    ----------
    plan:
        A complete reception plan (every segment assigned).
    segment_bytes:
        Per-segment byte sizes; defaults to 1.0 per segment, making the
        occupancy read in *segments*.

    Examples
    --------
    A Figure-4 client (idle system, slot 1) streams every segment live and
    never buffers:

    >>> from .dhb import DHBProtocol
    >>> protocol = DHBProtocol(n_segments=6, track_clients=True)
    >>> plan = protocol.handle_request(slot=1)
    >>> buffer_profile(plan).peak_bytes
    0.0

    A Figure-5 client (arriving in slot 3) receives shared segments early
    and buffers them until playout:

    >>> plan = protocol.handle_request(slot=3)
    >>> buffer_profile(plan).peak_bytes
    2.0
    """
    n_segments = len(plan.assignments)
    if n_segments == 0:
        raise ConfigurationError("plan has no assignments")
    if set(plan.assignments) != set(range(1, n_segments + 1)):
        raise SchedulingError("plan is not a contiguous 1..n assignment")
    if segment_bytes is None:
        sizes: Dict[int, float] = {j: 1.0 for j in plan.assignments}
    else:
        if len(segment_bytes) != n_segments:
            raise ConfigurationError(
                f"{len(segment_bytes)} sizes for {n_segments} segments"
            )
        sizes = {j: float(segment_bytes[j - 1]) for j in plan.assignments}

    # Session spans relative slots 1..n (playout) and any earlier arrivals.
    last_relative = max(
        max(slot - plan.arrival_slot for slot in plan.assignments.values()),
        n_segments,
    )
    arrivals_at: Dict[int, float] = {}
    for segment, slot in plan.assignments.items():
        relative = slot - plan.arrival_slot
        consume_at = segment  # consumed during relative slot `segment`
        if relative >= consume_at:
            continue  # streamed live (or late, which verify() would reject)
        arrivals_at[relative] = arrivals_at.get(relative, 0.0) + sizes[segment]

    occupancy: List[float] = []
    level = 0.0
    for relative in range(1, last_relative + 1):
        level += arrivals_at.get(relative, 0.0)
        if relative <= n_segments:
            # Consuming segment `relative` releases it if it was buffered.
            assigned = plan.assignments[relative]
            if assigned - plan.arrival_slot < relative:
                level -= sizes[relative]
        occupancy.append(level)
    if occupancy and abs(occupancy[-1]) < 1e-9:
        occupancy[-1] = 0.0
    return BufferProfile(
        arrival_slot=plan.arrival_slot,
        occupancy=occupancy,
        peak_bytes=max([0.0] + occupancy),
        total_bytes=sum(sizes.values()),
    )


def worst_case_buffer(
    plans: Sequence[ClientPlan],
    segment_bytes: Optional[Sequence[float]] = None,
) -> float:
    """Largest peak buffer across a population of clients.

    >>> from .dhb import DHBProtocol
    >>> protocol = DHBProtocol(n_segments=8, track_clients=True)
    >>> for slot in range(12):
    ...     _ = protocol.handle_request(slot)
    >>> worst_case_buffer(protocol.clients) <= 8.0
    True
    """
    peak = 0.0
    for plan in plans:
        peak = max(peak, buffer_profile(plan, segment_bytes).peak_bytes)
    return peak
