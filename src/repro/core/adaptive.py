"""Adaptive DHB: online retuning of the delivery windows as the rate moves.

Static DHB pins each segment's delivery window to ``(i, i + T[j]]`` — one
slot of startup wait, whatever the demand.  Under the nonstationary
workloads the paper's introduction motivates (diurnal swings, premiere
flash crowds, event rings) that single operating point is wrong twice a
day: at night it hardly matters (requests are sparse, sharing is rare),
but at the evening peak DHB transmits at its saturation bandwidth
``H(n)`` when a slightly later playback start would cost the server a
fraction of that.

:class:`AdaptiveDHBProtocol` retunes with a **slack dial** instead of a
segment-count change: at a retune the protocol switches the window vector
to ``T[j] = j + S`` for a slack of ``S`` slots, i.e. admitted clients
defer playback start by ``S`` extra slots and every segment's window
stretches by the same ``S``.  The segment grid — and with it the slot
duration, the slotted timeline, and every already-scheduled instance —
stays fixed, which is what makes the retune loss-free:

* **Owed instances are never moved or dropped.**  A client admitted under
  slack ``S0`` had every segment assigned to a concrete slot inside its
  ``(i, i + j + S0]`` window at admission time; those instances stay in
  the schedule untouched, so later retunes (up *or* down) cannot invalidate
  a plan already handed out.  This is the same zero-loss invariant the
  cluster layer's fail-over re-homing relies on.
* **No double-scheduling.**  The protocol keeps, per segment, the sorted
  list of that segment's *future* instance slots and shares whenever one
  falls inside the current window.  A freshly placed instance lands inside
  every later same-slot request's window, so at most one instance of a
  segment is ever placed per admission — and never twice in one slot.

Why the per-segment future lists instead of
:attr:`~repro.core.schedule.SlotSchedule.next_transmissions` (what static
DHB uses)?  The schedule tracks only the *latest* future instance, which
is sufficient under never-shrinking windows (the single-future-instance
invariant).  When slack decreases, a window *shrinks*, the invariant
breaks — an instance may exist beyond the new window's end — and trusting
``next_transmission > slot`` would hand clients shared assignments they
can never meet.  The sorted lists make the window check exact under any
slack trajectory.

At saturation with slack ``S`` the expected bandwidth drops from ``H(n)``
to ``H(n + S) − H(S)`` (each segment ``j`` broadcast every ``j + S``
slots), e.g. ``n = 99``: 5.18 streams static vs 1.63 at ``S = 24`` — the
margin the ``repro-cli adaptive-study`` day study measures.

The rate signal is an EWMA over per-slot admission counts with geometric
decay across empty slots; retunes happen lazily at the first admission of
each ``epoch_slots``-slot epoch, so the protocol stays deterministic in
its arrival sequence (batch and scalar drivers agree bit-for-bit).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.slotted import SlottedModel
from .client import ClientPlan
from .schedule import SlotSchedule

#: ``(requests_per_slot_threshold, slack_slots)`` rungs, ascending.
SlackLadder = Tuple[Tuple[float, int], ...]


def default_slack_ladder(n_segments: int) -> SlackLadder:
    """A conservative three-rung ladder scaled to the segment count.

    Idle-to-moderate demand runs at zero slack (exactly static DHB);
    sustained demand above ~2 requests/slot — where sharing is already
    dense and the marginal request is nearly free — buys ``n/8`` slots of
    slack; saturation (several requests every slot) buys ``n/4``.
    """
    if n_segments < 1:
        raise ConfigurationError(f"n_segments must be >= 1, got {n_segments}")
    return (
        (0.0, 0),
        (2.0, max(1, n_segments // 8)),
        (8.0, max(2, n_segments // 4)),
    )


@dataclass(frozen=True)
class RetuneEvent:
    """One slack change, recorded at the admission that triggered it."""

    slot: int
    estimated_rate: float  # requests per slot, EWMA at the epoch boundary
    old_slack: int
    new_slack: int


class SlotRateEstimator:
    """EWMA of per-slot admission counts with decay over empty slots.

    Counts accumulate per slot and fold into the EWMA when a later slot
    arrives; a gap of ``g`` empty slots decays the average by
    ``(1 - alpha)**g`` so the estimate tracks the *rate*, not just the
    nonzero samples.  Folding is deferred, so feeding one ``add(slot, n)``
    or ``n`` separate ``add(slot, 1)`` calls is indistinguishable — the
    property that keeps the batched and scalar drivers bit-for-bit equal.
    """

    def __init__(self, alpha: float = 0.1):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._ewma = 0.0
        self._slot: Optional[int] = None
        self._count = 0

    def add(self, slot: int, count: int = 1) -> None:
        """Record ``count`` admissions during ``slot`` (non-decreasing slots)."""
        if self._slot is None or slot == self._slot:
            self._slot = slot
            self._count += count
            return
        if slot < self._slot:
            raise ConfigurationError(
                f"estimator fed slot {slot} after slot {self._slot}"
            )
        self._fold(slot)
        self._count = count

    def _fold(self, new_slot: int) -> None:
        alpha = self.alpha
        self._ewma = alpha * self._count + (1.0 - alpha) * self._ewma
        gap = new_slot - self._slot - 1
        if gap > 0:
            self._ewma *= (1.0 - alpha) ** gap
        self._slot = new_slot
        self._count = 0

    def estimate_before(self, slot: int) -> float:
        """The EWMA as of just before ``slot``'s own arrivals (pure)."""
        if self._slot is None:
            return 0.0
        if slot <= self._slot:
            return self._ewma
        alpha = self.alpha
        value = alpha * self._count + (1.0 - alpha) * self._ewma
        gap = slot - self._slot - 1
        if gap > 0:
            value *= (1.0 - alpha) ** gap
        return value


class AdaptiveDHBProtocol(SlottedModel):
    """DHB with an epoch-retuned slack dial (see module docstring).

    Parameters
    ----------
    n_segments:
        Number of equal-duration segments (the grid never changes).
    slack_ladder:
        Ascending ``(requests_per_slot_threshold, slack)`` rungs; the rung
        with the largest threshold at or below the estimated rate sets the
        slack.  The first threshold must be ``0.0`` (there is always an
        applicable rung).  Defaults to :func:`default_slack_ladder`.
    epoch_slots:
        Retune cadence: the slack may change only at the first admission
        whose slot falls in a new epoch (``slot // epoch_slots``).
    alpha:
        EWMA smoothing factor of the rate estimator.
    track_clients:
        Keep every admitted request's
        :class:`~repro.core.client.ClientPlan`, plus the parallel
        :attr:`client_slacks` list recording the slack each client was
        admitted under (property tests replay the deadline windows from
        these).

    With a single-rung ladder ``((0.0, 0),)`` the protocol *is* static
    DHB, schedule-for-schedule — the equivalence test pins that.
    """

    def __init__(
        self,
        n_segments: int,
        slack_ladder: Optional[Sequence[Tuple[float, int]]] = None,
        epoch_slots: int = 16,
        alpha: float = 0.1,
        track_clients: bool = False,
    ):
        if n_segments < 1:
            raise ConfigurationError(f"n_segments must be >= 1, got {n_segments}")
        if epoch_slots < 1:
            raise ConfigurationError(f"epoch_slots must be >= 1, got {epoch_slots}")
        ladder = (
            default_slack_ladder(n_segments)
            if slack_ladder is None
            else tuple((float(t), int(s)) for t, s in slack_ladder)
        )
        if not ladder:
            raise ConfigurationError("slack ladder needs at least one rung")
        if ladder[0][0] != 0.0:
            raise ConfigurationError(
                f"the first ladder threshold must be 0.0, got {ladder[0][0]}"
            )
        thresholds = [t for t, _ in ladder]
        if any(b <= a for a, b in zip(thresholds, thresholds[1:])):
            raise ConfigurationError(
                f"ladder thresholds must be strictly increasing, got {thresholds}"
            )
        if any(s < 0 for _, s in ladder):
            raise ConfigurationError("slack values must be >= 0")
        self.n_segments = int(n_segments)
        self.slack_ladder: SlackLadder = ladder
        self.max_slack = max(s for _, s in ladder)
        self.epoch_slots = int(epoch_slots)
        self.schedule = SlotSchedule(self.n_segments)
        self.track_clients = track_clients
        self.clients: List[ClientPlan] = []
        #: Slack each tracked client was admitted under (parallel to clients).
        self.client_slacks: List[int] = []
        self.requests_admitted = 0
        self.slack = ladder[0][1]
        self.max_slack_used = self.slack
        self.retunes: List[RetuneEvent] = []
        self._estimator = SlotRateEstimator(alpha)
        self._epoch: Optional[int] = None
        # Per-segment sorted future instance slots (see module docstring for
        # why next_transmissions is not sufficient under shrinking windows).
        self._future: List[List[int]] = [[] for _ in range(self.n_segments)]

    # ------------------------------------------------------------------
    # Retuning
    # ------------------------------------------------------------------

    def _slack_for(self, rate_per_slot: float) -> int:
        slack = self.slack_ladder[0][1]
        for threshold, rung_slack in self.slack_ladder:
            if rate_per_slot >= threshold:
                slack = rung_slack
            else:
                break
        return slack

    def _maybe_retune(self, slot: int) -> None:
        epoch = slot // self.epoch_slots
        if epoch == self._epoch:
            return
        first_epoch = self._epoch is None
        self._epoch = epoch
        if first_epoch:
            return  # no signal yet; hold the ladder's initial slack
        estimate = self._estimator.estimate_before(slot)
        new_slack = self._slack_for(estimate)
        if new_slack != self.slack:
            self.retunes.append(
                RetuneEvent(
                    slot=slot,
                    estimated_rate=estimate,
                    old_slack=self.slack,
                    new_slack=new_slack,
                )
            )
            self.slack = new_slack
            if new_slack > self.max_slack_used:
                self.max_slack_used = new_slack
            if self.metrics is not None:
                self.metrics.counter("protocol.retunes").inc()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _admit(self, slot: int, plan: Optional[ClientPlan]) -> int:
        """One logical admission under the current slack; returns placements."""
        schedule = self.schedule
        slack = self.slack
        placed = 0
        for segment in range(1, self.n_segments + 1):
            future = self._future[segment - 1]
            if future:
                # Prune instances at or before `slot`: transmitted already
                # (or transmitting now — arrivals during a slot cannot
                # receive that same slot, exactly as in static DHB).
                drop = bisect.bisect_right(future, slot)
                if drop:
                    del future[:drop]
            window_end = slot + segment + slack
            if future and future[0] <= window_end:
                if plan is not None:
                    plan.assign(segment, future[0], shared=True)
                continue
            chosen = schedule.place_latest_min(slot + 1, window_end, segment)
            bisect.insort(future, chosen)
            placed += 1
            if plan is not None:
                plan.assign(segment, chosen, shared=False)
        return placed

    def handle_request(self, slot: int) -> Optional[ClientPlan]:
        """Admit one request arriving during ``slot``."""
        self._maybe_retune(slot)
        self._estimator.add(slot, 1)
        plan = ClientPlan(arrival_slot=slot) if self.track_clients else None
        placed = self._admit(slot, plan)
        self.requests_admitted += 1
        if self.metrics is not None:
            self.metrics.counter("protocol.requests").inc()
            self.metrics.counter("protocol.instances_scheduled").inc(placed)
        if plan is not None:
            self.clients.append(plan)
            self.client_slacks.append(self.slack)
        return plan

    def handle_batch(self, slot: int, count: int) -> None:
        """Admit ``count`` same-slot requests in one batched admission.

        The first admission leaves every segment with a future instance
        inside ``(slot, slot + j + S]`` — inside every later same-slot
        request's window (the slack cannot change mid-slot: retunes fire
        only at the first admission of an epoch) — so requests 2..count
        share everything.  Bit-for-bit equal to ``count`` scalar calls.
        """
        if count <= 0:
            return
        if self.track_clients:
            for _ in range(count):
                self.handle_request(slot)
            return
        self._maybe_retune(slot)
        self._estimator.add(slot, count)
        placed = self._admit(slot, None)
        self.requests_admitted += count
        if self.metrics is not None:
            self.metrics.counter("protocol.requests").inc(count)
            self.metrics.counter("protocol.instances_scheduled").inc(placed)

    # ------------------------------------------------------------------
    # SlottedModel surface
    # ------------------------------------------------------------------

    def slot_load(self, slot: int) -> int:
        """Segment instances transmitted during ``slot``."""
        return self.schedule.load(slot)

    def slot_weight(self, slot: int) -> float:
        return self.schedule.weight(slot)

    def slot_instances(self, slot: int) -> List[int]:
        return self.schedule.segments_in(slot)

    def release_before(self, slot: int) -> None:
        """Garbage-collect schedule bookkeeping for slots ``< slot``.

        The future lists prune themselves lazily at admission time, so
        only the schedule store needs compacting here.
        """
        self.schedule.release_before(slot)

    @property
    def startup_wait_slots(self) -> int:
        """Current playback-start budget: 1 boundary slot + current slack."""
        return 1 + self.slack

    @property
    def worst_startup_wait_slots(self) -> int:
        """The guarantee advertised to clients: 1 + the ladder's max slack."""
        return 1 + self.max_slack

    def __repr__(self) -> str:
        return (
            f"AdaptiveDHBProtocol(n_segments={self.n_segments}, "
            f"slack={self.slack}, retunes={len(self.retunes)}, "
            f"requests={self.requests_admitted})"
        )
