"""Slot-selection heuristics.

The heart of the DHB protocol (Figure 6 of the paper) is how a new segment
instance picks its slot inside the feasible window ``[i+1, i+T[j]]``:

    *"Our protocol will search slots i+1 to i+j to find the slot having the
    minimum number m_min of scheduled transmissions and schedule a new
    transmission of segment S_j during that slot.  If two or more slots are
    found to have the minimum number of scheduled transmissions, the protocol
    always picks the slot k_max with the longest delay."*

:func:`latest_min_load_chooser` transcribes that rule.  The alternatives are
the ablation arms of DESIGN.md §6: *always latest* is the naive scheme whose
bandwidth peak the paper's "slot 120!" argument demolishes; *earliest fit*
and *random fit* isolate each half of the heuristic.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import SchedulingError

#: A slot chooser maps (load_of, first_slot, last_slot) -> chosen slot, where
#: ``load_of(slot)`` returns the slot's current instance count and the window
#: ``[first_slot, last_slot]`` is inclusive and non-empty.
SlotChooser = Callable[[Callable[[int], int], int, int], int]


def _check_window(first_slot: int, last_slot: int) -> None:
    if last_slot < first_slot:
        raise SchedulingError(f"empty slot window [{first_slot}, {last_slot}]")


def latest_min_load_chooser(
    load_of: Callable[[int], int], first_slot: int, last_slot: int
) -> int:
    """The paper's heuristic: least-loaded slot, ties broken to the latest.

    Scanning backwards lets the first minimum found win, which *is* the
    latest among equals.

    >>> loads = {1: 2, 2: 0, 3: 1, 4: 0}
    >>> latest_min_load_chooser(lambda s: loads[s], 1, 4)
    4
    """
    _check_window(first_slot, last_slot)
    best_slot = last_slot
    best_load = load_of(last_slot)
    for slot in range(last_slot - 1, first_slot - 1, -1):
        load = load_of(slot)
        if load < best_load:
            best_slot, best_load = slot, load
    return best_slot


def earliest_min_load_chooser(
    load_of: Callable[[int], int], first_slot: int, last_slot: int
) -> int:
    """Ablation: least-loaded slot, ties broken to the *earliest* slot.

    Scheduling early shrinks the effective sharing horizon of the instance
    (fewer future requests can reuse it), so this arm isolates the value of
    the paper's "longest delay" tie-break.
    """
    _check_window(first_slot, last_slot)
    best_slot = first_slot
    best_load = load_of(first_slot)
    for slot in range(first_slot + 1, last_slot + 1):
        load = load_of(slot)
        if load < best_load:
            best_slot, best_load = slot, load
    return best_slot


def always_latest_chooser(
    load_of: Callable[[int], int], first_slot: int, last_slot: int
) -> int:
    """Ablation: always pick ``k_max = i + T[j]``, ignoring loads.

    This is the load-blind scheme the paper rejects: each segment rides its
    maximum period, so under sustained load segment periods synchronise and
    slots at common multiples pile up ("slot 120! will contain one
    transmission of each and every segment").
    """
    _check_window(first_slot, last_slot)
    return last_slot


def make_random_chooser(rng: np.random.Generator) -> SlotChooser:
    """Ablation: pick a uniformly random slot of the window.

    Randomisation spreads load on average but neither levels actual load nor
    maximises sharing delay; it sits between the heuristic and always-latest.
    """

    def random_chooser(
        load_of: Callable[[int], int], first_slot: int, last_slot: int
    ) -> int:
        _check_window(first_slot, last_slot)
        return int(rng.integers(first_slot, last_slot + 1))

    return random_chooser


#: Seed of the module-level :func:`random_chooser`'s shared generator.
RANDOM_CHOOSER_SEED = 0x5EED

#: The shared generator behind :func:`random_chooser`, created lazily.
_default_rng: Optional[np.random.Generator] = None


def _default_generator() -> np.random.Generator:
    global _default_rng
    if _default_rng is None:
        _default_rng = np.random.default_rng(RANDOM_CHOOSER_SEED)
    return _default_rng


def random_chooser(
    load_of: Callable[[int], int],
    first_slot: int,
    last_slot: int,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Module-level convenience wrapper over :func:`make_random_chooser`.

    **Determinism contract.**  Without an explicit ``rng`` this draws from a
    single process-wide generator seeded with :data:`RANDOM_CHOOSER_SEED`,
    so a run's picks are a reproducible function of the number of calls made
    before it — *not* independent per call.  Common-random-number
    experiments that need replayable, stream-isolated draws should build a
    dedicated chooser with :func:`make_random_chooser` (as the ablation
    harness does) or pass their own ``rng``.
    """
    if rng is None:
        rng = _default_generator()
    _check_window(first_slot, last_slot)
    return int(rng.integers(first_slot, last_slot + 1))


def make_slack_chooser(slack: int) -> SlotChooser:
    """Extension: interpolate between the paper's rule and always-latest.

    The paper's future work asks about the tension between bandwidth peaks
    and average bandwidth.  The two extremes are already in this module:
    the paper's least-loaded/latest rule keeps peaks within a couple of
    streams of the mean, while the always-latest rule maximises sharing
    delay (slightly lower average under load) at the price of unbounded
    synchronised peaks.  This chooser exposes the dial: pick the **latest**
    window slot whose load is within ``slack`` of the window minimum.

    * ``slack = 0`` is exactly :func:`latest_min_load_chooser`;
    * ``slack -> infinity`` degenerates to :func:`always_latest_chooser`.

    The ablation bench sweeps the dial and reports both statistics.
    """
    if slack < 0:
        raise SchedulingError(f"slack must be >= 0, got {slack}")

    def slack_chooser(
        load_of: Callable[[int], int], first_slot: int, last_slot: int
    ) -> int:
        _check_window(first_slot, last_slot)
        loads = [load_of(slot) for slot in range(first_slot, last_slot + 1)]
        threshold = min(loads) + slack
        for offset in range(len(loads) - 1, -1, -1):
            if loads[offset] <= threshold:
                return first_slot + offset
        raise SchedulingError("unreachable: the minimum always qualifies")

    return slack_chooser
