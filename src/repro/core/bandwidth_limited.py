"""Extension: DHB with a bounded client receive bandwidth.

The paper's closing future-work item: "we would like to investigate dynamic
heuristic broadcasting protocols that limit the client bandwidth to two or
three data streams".  Base DHB may require a set-top box to download many
segments in the same slot; skyscraper-family protocols cap that at two.

:class:`BandwidthLimitedDHB` adds the cap: a client never receives more than
``client_cap`` segments during any one slot.  Consequences for scheduling:

* an otherwise-shareable instance is useless to a client whose cap is
  already exhausted in that slot, so the single-future-instance invariant of
  base DHB no longer holds — the schedule may legitimately carry *duplicate*
  future instances of a segment;
* a new instance must be placed in a window slot where the client still has
  reception capacity.

A greedy segment-by-segment pass remains feasible for any cap >= 1 under
uniform periods: when segment ``S_j`` is processed, the client holds ``j-1``
assignments while the window offers ``j`` slots, so at least one window slot
has spare client capacity even at ``cap == 1``.  With custom (smoothed)
period vectors a pathological vector could exhaust the window; we then raise
:class:`~repro.errors.SchedulingError` rather than silently violate either
the deadline or the cap.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Union

from ..errors import ConfigurationError, SchedulingError
from ..sim.slotted import SlottedModel
from .client import ClientPlan
from .heuristic import SlotChooser, latest_min_load_chooser
from .periods import PeriodVector
from .schedule import SlotSchedule


class BandwidthLimitedDHB(SlottedModel):
    """DHB with at most ``client_cap`` concurrent receptions per client.

    Parameters
    ----------
    n_segments:
        Number of segments (uniform periods), or pass ``periods``.
    client_cap:
        Maximum segments a client may download during one slot (>= 1).
    periods:
        Optional custom maximum-period vector.
    chooser:
        Slot-selection heuristic among capacity-feasible window slots.
    track_clients:
        Keep per-client :class:`~repro.core.client.ClientPlan` objects.

    Examples
    --------
    >>> protocol = BandwidthLimitedDHB(n_segments=6, client_cap=2,
    ...                                track_clients=True)
    >>> plan = protocol.handle_request(slot=0)
    >>> plan.max_concurrent_receptions() <= 2
    True
    """

    def __init__(
        self,
        n_segments: Optional[int] = None,
        client_cap: int = 2,
        periods: Union[PeriodVector, List[int], None] = None,
        chooser: SlotChooser = latest_min_load_chooser,
        track_clients: bool = False,
    ):
        if client_cap < 1:
            raise ConfigurationError(f"client_cap must be >= 1, got {client_cap}")
        if periods is None:
            if n_segments is None:
                raise ConfigurationError("give n_segments or an explicit periods vector")
            periods = PeriodVector.uniform(n_segments)
        elif not isinstance(periods, PeriodVector):
            periods = PeriodVector(periods)
        self.periods = periods
        self.client_cap = int(client_cap)
        self.chooser = chooser
        self.schedule = SlotSchedule(periods.n_segments)
        # Per-segment sorted future-instance slots (duplicates possible here).
        self._future: List[List[int]] = [[] for _ in range(periods.n_segments)]
        self.track_clients = track_clients
        self.clients: List[ClientPlan] = []
        self.requests_admitted = 0

    @property
    def n_segments(self) -> int:
        """Number of segments ``n``."""
        return self.periods.n_segments

    def _prune_past(self, segment: int, slot: int) -> None:
        """Drop recorded instances of ``segment`` at slots ``<= slot``."""
        instances = self._future[segment - 1]
        cut = bisect_right(instances, slot)
        if cut:
            del instances[:cut]

    def _shareable_slot(
        self, segment: int, window_start: int, window_end: int, usage: Dict[int, int]
    ) -> Optional[int]:
        """Latest instance of ``segment`` in the window with client capacity."""
        instances = self._future[segment - 1]
        lo = bisect_left(instances, window_start)
        hi = bisect_right(instances, window_end)
        for index in range(hi - 1, lo - 1, -1):
            slot = instances[index]
            if usage.get(slot, 0) < self.client_cap:
                return slot
        return None

    def handle_request(self, slot: int) -> Optional[ClientPlan]:
        """Admit a request arriving during ``slot`` under the receive cap."""
        plan = ClientPlan(arrival_slot=slot) if self.track_clients else None
        usage: Dict[int, int] = {}
        for segment in range(1, self.n_segments + 1):
            self._prune_past(segment, slot)
            window_start = slot + 1
            window_end = slot + self.periods[segment]
            shared_slot = self._shareable_slot(segment, window_start, window_end, usage)
            if shared_slot is not None:
                usage[shared_slot] = usage.get(shared_slot, 0) + 1
                if plan is not None:
                    plan.assign(segment, shared_slot, shared=True)
                continue
            feasible = [
                k
                for k in range(window_start, window_end + 1)
                if usage.get(k, 0) < self.client_cap
            ]
            if not feasible:
                raise SchedulingError(
                    f"client cap {self.client_cap} leaves no feasible slot for "
                    f"S{segment} in window [{window_start}, {window_end}]"
                )
            chosen = self._choose_among(feasible)
            self.schedule.add(chosen, segment)
            insort(self._future[segment - 1], chosen)
            usage[chosen] = usage.get(chosen, 0) + 1
            if plan is not None:
                plan.assign(segment, chosen, shared=False)
        self.requests_admitted += 1
        if plan is not None:
            self.clients.append(plan)
        return plan

    def _choose_among(self, feasible_slots: List[int]) -> int:
        """Apply the heuristic over a possibly non-contiguous slot set.

        The chooser interface works on contiguous windows, so we reproduce
        its semantics directly: least-loaded feasible slot, then delegate the
        tie-break by scanning in the chooser's preferred direction (latest
        first for the default heuristic).
        """
        # Evaluate loads once; pick per the paper's rule among feasible slots.
        best_slot = feasible_slots[-1]
        best_load = self.schedule.load(best_slot)
        for slot in reversed(feasible_slots[:-1]):
            load = self.schedule.load(slot)
            if load < best_load:
                best_slot, best_load = slot, load
        if self.chooser is latest_min_load_chooser:
            return best_slot
        # Non-default choosers: restrict to a contiguous run when possible,
        # otherwise fall back to the least-loaded/latest rule above.
        contiguous = feasible_slots == list(
            range(feasible_slots[0], feasible_slots[-1] + 1)
        )
        if contiguous:
            return self.chooser(
                self.schedule.load, feasible_slots[0], feasible_slots[-1]
            )
        return best_slot

    def slot_load(self, slot: int) -> int:
        """Segment instances transmitted during ``slot``."""
        return self.schedule.load(slot)

    def release_before(self, slot: int) -> None:
        """Garbage-collect schedule bookkeeping for slots ``< slot``."""
        self.schedule.release_before(slot)

    def __repr__(self) -> str:
        return (
            f"BandwidthLimitedDHB(n_segments={self.n_segments}, "
            f"cap={self.client_cap}, requests={self.requests_admitted})"
        )
