"""The slotted transmission schedule.

:class:`SlotSchedule` is the single mutable data structure behind every
dynamic slotted protocol here (DHB, UD, dynamic NPB).  It records which
segment instances are transmitted in which slot and answers the two queries
the schedulers need:

* ``load(slot)`` — how many instances (= data streams of bandwidth ``b``)
  slot already carries, and
* ``next_transmission(segment)`` — the slot of the segment's only scheduled
  future instance, if any.

The second query exploits a structural invariant of window-based sharing
protocols: as long as every request checks the window ``[i+1, i+T[j]]``
before scheduling ``S_j``, **at most one instance of each segment is ever
scheduled in the strict future**.  (Any previous request arrived at some
``i' <= i`` and placed its instance at ``k <= i' + T[j] <= i + T[j]``; if
``k > i`` that instance lies inside the new request's window and is shared
instead of duplicated.)

Load storage is an array keyed by slot offset, not a per-slot dict: the
active slot span of a window-sharing protocol is bounded by the largest
period, so a flat ``array('q')`` indexed by ``slot - base`` gives O(1)
scalar reads/writes at CPython-attribute speed *and* a zero-copy numpy view
(:meth:`window_loads`) over any slot window for vectorised queries.
:meth:`choose_latest_min` fuses the DHB heuristic (least-loaded slot, ties
broken to the latest) with that store.  :meth:`release_before` advances the
logical floor in O(1) amortised time and periodically compacts the backing
array, keeping memory flat over arbitrarily long runs.  The schedule still
keeps full per-slot instance lists, both for bandwidth auditing and so that
tests can inspect the raw schedule.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SchedulingError

#: Initial capacity of the load array (grows by doubling as needed).
_INITIAL_CAPACITY = 256

#: Windows at or below this size are scanned in pure Python: per-element
#: access on an ``array('q')`` costs ~0.2 µs, so small windows beat the
#: fixed ~2 µs overhead of a numpy argmin call.
_SMALL_WINDOW = 16


class SlotSchedule:
    """Per-slot segment instances plus per-segment future-instance index.

    Parameters
    ----------
    n_segments:
        Number of segments the video is partitioned into (segments are the
        1-based ``S_1 .. S_n`` of the paper).
    segment_weights:
        Optional per-segment weights (``segment_weights[j-1]`` for ``S_j``),
        typically the segment's byte size.  When given, :meth:`weight`
        reports the per-slot weighted load, which is how the compressed-
        video experiment accounts *transmitted bytes* rather than allocated
        stream-slots.

    Examples
    --------
    >>> schedule = SlotSchedule(n_segments=6)
    >>> schedule.add(slot=2, segment=1)
    >>> schedule.load(2)
    1
    >>> schedule.next_transmission(1)
    2
    >>> schedule.next_transmission(5) is None
    True
    """

    def __init__(self, n_segments: int, segment_weights: Optional[Sequence[float]] = None):
        if n_segments < 1:
            raise SchedulingError(f"need >= 1 segment, got {n_segments}")
        self.n_segments = int(n_segments)
        if segment_weights is None:
            self._weights = [1.0] * self.n_segments
        else:
            if len(segment_weights) != self.n_segments:
                raise SchedulingError(
                    f"{len(segment_weights)} weights for {self.n_segments} segments"
                )
            if any(w < 0 for w in segment_weights):
                raise SchedulingError("segment weights must be >= 0")
            self._weights = [float(w) for w in segment_weights]
        self._unit_weights = all(w == 1.0 for w in self._weights)
        # Load store: `_loads[slot - _base]`, valid for slots in
        # [_released_before, _base + capacity).  Cells below _released_before
        # may hold stale counts; `load()` masks them, and compaction drops
        # them entirely.  `_loads_np` is a cached zero-copy numpy view of the
        # same buffer, refreshed whenever the backing array is replaced.
        self._base = 0
        self._loads = array("q", bytes(8 * _INITIAL_CAPACITY))
        self._loads_np = np.frombuffer(self._loads, dtype=np.int64)
        self._weight_loads = (
            None if self._unit_weights else array("d", bytes(8 * _INITIAL_CAPACITY))
        )
        # Audit store: full per-slot instance lists, in add order.
        self._slots: Dict[int, List[int]] = {}
        # next_tx[j-1]: slot of S_j's scheduled future instance, or -1.
        # Fixed-size array('q'), so the numpy view stays valid for life.
        self._next_tx = array("q", [-1] * self.n_segments)
        self._next_tx_np = np.frombuffer(self._next_tx, dtype=np.int64)
        self._released_before = 0
        self._total_instances = 0

    @property
    def total_instances(self) -> int:
        """Total segment instances ever added (never decremented by GC)."""
        return self._total_instances

    @property
    def next_transmissions(self) -> np.ndarray:
        """Read-only numpy view of per-segment future-instance slots.

        Entry ``j - 1`` is the slot of ``S_j``'s latest scheduled instance,
        or ``-1`` when none was ever scheduled.  This is the vectorised
        counterpart of :meth:`next_transmission`; callers must treat it as
        read-only (it aliases the live index).
        """
        return self._next_tx_np

    def _check_segment(self, segment: int) -> None:
        if not 1 <= segment <= self.n_segments:
            raise SchedulingError(
                f"segment S{segment} outside S1..S{self.n_segments}"
            )

    def _ensure_capacity(self, slot: int) -> None:
        """Grow (never in place) so that ``slot`` has a backing cell."""
        needed = slot - self._base + 1
        capacity = len(self._loads)
        # Compact first: slide the window forward past released slots.
        shift = self._released_before - self._base
        if shift > 0 and needed - shift <= capacity:
            fresh = self._loads[shift:]
            fresh.extend(bytes(8 * shift))
            self._replace_loads(fresh)
            if self._weight_loads is not None:
                fresh_w = self._weight_loads[shift:]
                fresh_w.extend(bytes(8 * shift))
                self._weight_loads = fresh_w
            self._base = self._released_before
            return
        new_capacity = capacity
        while new_capacity < needed - shift:
            new_capacity *= 2
        fresh = self._loads[shift:]
        fresh.extend(bytes(8 * (new_capacity - len(fresh))))
        self._replace_loads(fresh)
        if self._weight_loads is not None:
            fresh_w = self._weight_loads[shift:]
            fresh_w.extend(bytes(8 * (new_capacity - len(fresh_w))))
            self._weight_loads = fresh_w
        self._base += shift

    def _replace_loads(self, fresh: array) -> None:
        self._loads = fresh
        self._loads_np = np.frombuffer(fresh, dtype=np.int64)

    def add(self, slot: int, segment: int) -> None:
        """Schedule one instance of ``segment`` in ``slot``."""
        if not 1 <= segment <= self.n_segments:
            self._check_segment(segment)
        if slot < self._released_before:
            raise SchedulingError(
                f"slot {slot} already released (< {self._released_before})"
            )
        loads = self._loads
        index = slot - self._base
        if index >= len(loads):
            self._ensure_capacity(slot)
            loads = self._loads
            index = slot - self._base
        loads[index] += 1
        if self._weight_loads is not None:
            self._weight_loads[index] += self._weights[segment - 1]
        bucket = self._slots.get(slot)
        if bucket is None:
            self._slots[slot] = [segment]
        else:
            bucket.append(segment)
        self._total_instances += 1
        if slot > self._next_tx[segment - 1]:
            self._next_tx[segment - 1] = slot

    def load(self, slot: int) -> int:
        """Number of instances scheduled in ``slot`` (streams of rate ``b``)."""
        if slot < self._released_before:
            return 0
        index = slot - self._base
        if index >= len(self._loads):
            return 0
        return self._loads[index]

    def weight(self, slot: int) -> float:
        """Weighted load of ``slot`` (bytes, when weights are byte sizes)."""
        if self._weight_loads is None:
            return float(self.load(slot))
        if slot < self._released_before:
            return 0.0
        index = slot - self._base
        if index >= len(self._weight_loads):
            return 0.0
        return self._weight_loads[index]

    def segments_in(self, slot: int) -> List[int]:
        """The segment instances scheduled in ``slot`` (copy, in add order)."""
        return list(self._slots.get(slot, ()))

    def next_transmission(self, segment: int):
        """Slot of ``segment``'s latest scheduled instance, or ``None``.

        Callers compare this against the current slot: an instance at a slot
        ``> current`` is in the future and can be shared.
        """
        self._check_segment(segment)
        slot = self._next_tx[segment - 1]
        return None if slot < 0 else slot

    def has_instance_within(self, segment: int, first_slot: int, last_slot: int) -> bool:
        """Whether ``segment`` has an instance in ``[first_slot, last_slot]``.

        Uses the single-future-instance invariant, so this is O(1).
        """
        next_tx = self.next_transmission(segment)
        return next_tx is not None and first_slot <= next_tx <= last_slot

    def window_loads(self, first_slot: int, last_slot: int) -> np.ndarray:
        """Zero-copy numpy view of the loads of ``[first_slot, last_slot]``.

        The view aliases the live store: it is only valid until the next
        :meth:`add` / :meth:`release_before` and must not be written to.
        ``first_slot`` must not be below the released floor.
        """
        if last_slot < first_slot:
            raise SchedulingError(f"empty slot window [{first_slot}, {last_slot}]")
        if first_slot < self._released_before:
            raise SchedulingError(
                f"window start {first_slot} below released floor "
                f"{self._released_before}"
            )
        if last_slot - self._base >= len(self._loads):
            self._ensure_capacity(last_slot)
        base = self._base
        return self._loads_np[first_slot - base : last_slot - base + 1]

    def choose_latest_min(self, first_slot: int, last_slot: int) -> int:
        """Least-loaded slot of ``[first_slot, last_slot]``, latest tie wins.

        Fused fast path of the paper's heuristic
        (:func:`repro.core.heuristic.latest_min_load_chooser`): bit-for-bit
        the same choice, but read straight off the load array — a reverse
        Python scan for small windows, a vectorised argmin otherwise.
        """
        if last_slot < first_slot:
            raise SchedulingError(f"empty slot window [{first_slot}, {last_slot}]")
        if first_slot < self._released_before:
            raise SchedulingError(
                f"window start {first_slot} below released floor "
                f"{self._released_before}"
            )
        if last_slot - self._base >= len(self._loads):
            self._ensure_capacity(last_slot)
        base = self._base
        if last_slot - first_slot < _SMALL_WINDOW:
            loads = self._loads
            best_slot = last_slot
            best_load = loads[last_slot - base]
            for slot in range(last_slot - 1, first_slot - 1, -1):
                load = loads[slot - base]
                if load < best_load:
                    best_slot, best_load = slot, load
            return best_slot
        window = self._loads_np[first_slot - base : last_slot - base + 1]
        # argmin of the reversed view finds the first minimum from the end,
        # which *is* the latest among equals.
        return last_slot - int(window[::-1].argmin())

    def place_latest_min(self, first_slot: int, last_slot: int, segment: int) -> int:
        """Fused :meth:`choose_latest_min` + :meth:`add`; returns the slot.

        The admission hot path of the dynamic protocols: one call picks the
        least-loaded/latest slot of the window and schedules ``segment``
        there, skipping the bounds work :meth:`add` would repeat (the chosen
        slot is inside the just-validated window by construction).
        """
        if not 1 <= segment <= self.n_segments:
            self._check_segment(segment)
        if last_slot < first_slot:
            raise SchedulingError(f"empty slot window [{first_slot}, {last_slot}]")
        if first_slot < self._released_before:
            raise SchedulingError(
                f"window start {first_slot} below released floor "
                f"{self._released_before}"
            )
        loads = self._loads
        if last_slot - self._base >= len(loads):
            self._ensure_capacity(last_slot)
            loads = self._loads
        base = self._base
        low = first_slot - base
        high = last_slot - base
        if high - low < _SMALL_WINDOW:
            chosen_index = high
            best_load = loads[high]
            for index in range(high - 1, low - 1, -1):
                load = loads[index]
                if load < best_load:
                    chosen_index, best_load = index, load
        else:
            chosen_index = high - int(self._loads_np[low : high + 1][::-1].argmin())
        chosen = base + chosen_index
        loads[chosen_index] += 1
        if self._weight_loads is not None:
            self._weight_loads[chosen_index] += self._weights[segment - 1]
        bucket = self._slots.get(chosen)
        if bucket is None:
            self._slots[chosen] = [segment]
        else:
            bucket.append(segment)
        self._total_instances += 1
        if chosen > self._next_tx[segment - 1]:
            self._next_tx[segment - 1] = chosen
        return chosen

    def place_latest_min_many(
        self, first_slot: int, last_slots: Sequence[int], segments: Sequence[int]
    ) -> int:
        """Fused admission loop: one :meth:`place_latest_min` per window.

        Places ``segments[k]`` at the least-loaded/latest slot of
        ``[first_slot, last_slots[k]]``, in order, reading loads live (each
        placement sees the previous ones) — bit-for-bit the sequence of
        individual :meth:`place_latest_min` calls, but with the bounds
        validation and capacity reservation hoisted out of the loop: one
        ``_ensure_capacity`` for the largest window covers every placement.
        Returns the number of instances placed.

        This is the admission kernel of the batched protocols: a whole
        slot's worth of requests reduces (via the sharing invariant) to one
        pass over the segments that lack a shareable future instance.
        """
        if len(last_slots) != len(segments):
            raise SchedulingError(
                f"{len(last_slots)} windows for {len(segments)} segments"
            )
        if not segments:
            return 0
        for segment in segments:
            if not 1 <= segment <= self.n_segments:
                self._check_segment(segment)
        if first_slot < self._released_before:
            raise SchedulingError(
                f"window start {first_slot} below released floor "
                f"{self._released_before}"
            )
        farthest = max(last_slots)
        if farthest < first_slot:
            raise SchedulingError(f"empty slot window [{first_slot}, {farthest}]")
        if farthest - self._base >= len(self._loads):
            self._ensure_capacity(farthest)
        loads = self._loads
        loads_np = self._loads_np
        weight_loads = self._weight_loads
        weights = self._weights
        occupied = self._slots
        next_tx = self._next_tx
        base = self._base
        low = first_slot - base
        for last_slot, segment in zip(last_slots, segments):
            if last_slot < first_slot:
                raise SchedulingError(
                    f"empty slot window [{first_slot}, {last_slot}]"
                )
            high = last_slot - base
            if high - low < _SMALL_WINDOW:
                chosen_index = high
                best_load = loads[high]
                for index in range(high - 1, low - 1, -1):
                    load = loads[index]
                    if load < best_load:
                        chosen_index, best_load = index, load
            else:
                chosen_index = high - int(loads_np[low : high + 1][::-1].argmin())
            chosen = base + chosen_index
            loads[chosen_index] += 1
            if weight_loads is not None:
                weight_loads[chosen_index] += weights[segment - 1]
            bucket = occupied.get(chosen)
            if bucket is None:
                occupied[chosen] = [segment]
            else:
                bucket.append(segment)
            if chosen > next_tx[segment - 1]:
                next_tx[segment - 1] = chosen
        placed = len(segments)
        self._total_instances += placed
        return placed

    def release_before(self, slot: int) -> None:
        """Drop per-slot bookkeeping for slots ``< slot`` (bounded memory).

        O(released audit entries) amortised, independent of the slot gap:
        sparse traces may jump the floor forward by millions of slots and
        pay only for the (small) set of actually occupied slots.
        """
        if slot <= self._released_before:
            return
        occupied = self._slots
        if occupied:
            gap = slot - self._released_before
            if gap <= len(occupied):
                for old in range(self._released_before, slot):
                    occupied.pop(old, None)
            else:
                for old in [s for s in occupied if s < slot]:
                    del occupied[old]
        self._released_before = slot
        # Keep the backing array aligned with the active span: once the
        # released prefix dominates the capacity, slide the window forward
        # (amortised O(1) per released slot).
        if slot - self._base >= len(self._loads):
            # Everything stored is released; restart the array at the floor.
            self._base = slot
            self._replace_loads(array("q", bytes(8 * len(self._loads))))
            if self._weight_loads is not None:
                self._weight_loads = array("d", bytes(8 * len(self._weight_loads)))
        elif slot - self._base > max(_INITIAL_CAPACITY, len(self._loads) // 2):
            self._ensure_capacity(slot)

    def occupied_slots(self) -> List[int]:
        """Sorted list of not-yet-released slots carrying any instance."""
        return sorted(self._slots)
