"""The slotted transmission schedule.

:class:`SlotSchedule` is the single mutable data structure behind every
dynamic slotted protocol here (DHB, UD, dynamic NPB).  It records which
segment instances are transmitted in which slot and answers the two queries
the schedulers need:

* ``load(slot)`` — how many instances (= data streams of bandwidth ``b``)
  slot already carries, and
* ``next_transmission(segment)`` — the slot of the segment's only scheduled
  future instance, if any.

The second query exploits a structural invariant of window-based sharing
protocols: as long as every request checks the window ``[i+1, i+T[j]]``
before scheduling ``S_j``, **at most one instance of each segment is ever
scheduled in the strict future**.  (Any previous request arrived at some
``i' <= i`` and placed its instance at ``k <= i' + T[j] <= i + T[j]``; if
``k > i`` that instance lies inside the new request's window and is shared
instead of duplicated.)  The schedule still keeps the full per-slot instance
lists, both for bandwidth accounting and so that tests can audit the raw
schedule; :meth:`release_before` garbage-collects slots the simulation has
moved past, keeping memory flat over arbitrarily long runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import SchedulingError


class SlotSchedule:
    """Per-slot segment instances plus per-segment future-instance index.

    Parameters
    ----------
    n_segments:
        Number of segments the video is partitioned into (segments are the
        1-based ``S_1 .. S_n`` of the paper).
    segment_weights:
        Optional per-segment weights (``segment_weights[j-1]`` for ``S_j``),
        typically the segment's byte size.  When given, :meth:`weight`
        reports the per-slot weighted load, which is how the compressed-
        video experiment accounts *transmitted bytes* rather than allocated
        stream-slots.

    Examples
    --------
    >>> schedule = SlotSchedule(n_segments=6)
    >>> schedule.add(slot=2, segment=1)
    >>> schedule.load(2)
    1
    >>> schedule.next_transmission(1)
    2
    >>> schedule.next_transmission(5) is None
    True
    """

    def __init__(self, n_segments: int, segment_weights: Optional[Sequence[float]] = None):
        if n_segments < 1:
            raise SchedulingError(f"need >= 1 segment, got {n_segments}")
        self.n_segments = int(n_segments)
        if segment_weights is None:
            self._weights = [1.0] * self.n_segments
        else:
            if len(segment_weights) != self.n_segments:
                raise SchedulingError(
                    f"{len(segment_weights)} weights for {self.n_segments} segments"
                )
            if any(w < 0 for w in segment_weights):
                raise SchedulingError("segment weights must be >= 0")
            self._weights = [float(w) for w in segment_weights]
        self._slots: Dict[int, List[int]] = {}
        self._slot_weights: Dict[int, float] = {}
        # next_tx[j-1]: slot of S_j's scheduled future instance, or None.
        self._next_tx: List = [None] * self.n_segments
        self._released_before = 0
        self._total_instances = 0

    @property
    def total_instances(self) -> int:
        """Total segment instances ever added (never decremented by GC)."""
        return self._total_instances

    def _check_segment(self, segment: int) -> None:
        if not 1 <= segment <= self.n_segments:
            raise SchedulingError(
                f"segment S{segment} outside S1..S{self.n_segments}"
            )

    def add(self, slot: int, segment: int) -> None:
        """Schedule one instance of ``segment`` in ``slot``."""
        self._check_segment(segment)
        if slot < self._released_before:
            raise SchedulingError(
                f"slot {slot} already released (< {self._released_before})"
            )
        self._slots.setdefault(slot, []).append(segment)
        self._slot_weights[slot] = (
            self._slot_weights.get(slot, 0.0) + self._weights[segment - 1]
        )
        self._total_instances += 1
        current = self._next_tx[segment - 1]
        if current is None or slot > current:
            self._next_tx[segment - 1] = slot

    def load(self, slot: int) -> int:
        """Number of instances scheduled in ``slot`` (streams of rate ``b``)."""
        return len(self._slots.get(slot, ()))

    def weight(self, slot: int) -> float:
        """Weighted load of ``slot`` (bytes, when weights are byte sizes)."""
        return self._slot_weights.get(slot, 0.0)

    def segments_in(self, slot: int) -> List[int]:
        """The segment instances scheduled in ``slot`` (copy, in add order)."""
        return list(self._slots.get(slot, ()))

    def next_transmission(self, segment: int):
        """Slot of ``segment``'s latest scheduled instance, or ``None``.

        Callers compare this against the current slot: an instance at a slot
        ``> current`` is in the future and can be shared.
        """
        self._check_segment(segment)
        return self._next_tx[segment - 1]

    def has_instance_within(self, segment: int, first_slot: int, last_slot: int) -> bool:
        """Whether ``segment`` has an instance in ``[first_slot, last_slot]``.

        Uses the single-future-instance invariant, so this is O(1).
        """
        next_tx = self.next_transmission(segment)
        return next_tx is not None and first_slot <= next_tx <= last_slot

    def release_before(self, slot: int) -> None:
        """Drop per-slot bookkeeping for slots ``< slot`` (bounded memory)."""
        if slot <= self._released_before:
            return
        for old in range(self._released_before, slot):
            self._slots.pop(old, None)
            self._slot_weights.pop(old, None)
        self._released_before = slot

    def occupied_slots(self) -> List[int]:
        """Sorted list of not-yet-released slots carrying any instance."""
        return sorted(self._slots)
