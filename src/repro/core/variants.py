"""The four DHB configurations for compressed video (Section 4).

Given a VBR video and a target maximum waiting time, the paper derives:

* **DHB-a** — partition into ``ceil(D / wait)`` segments, allocate each data
  stream the video's *1-second peak* bandwidth (951 KB/s for their trace).
  The base solution: correct but wasteful — every transmission occupies the
  full peak-rate container for a whole slot.
* **DHB-b** — same segments, but require every segment to be fully
  downloaded one slot ahead of playout; the stream allocation drops to the
  *maximum per-segment average* (789 KB/s) and, more importantly, each
  transmission only moves the segment's actual bytes.
* **DHB-c** — smoothing by work-ahead: a constant stream rate packs the
  video into fewer segments (137 → 129) at a lower rate (671 KB/s).
* **DHB-d** — additionally relaxes each segment's minimum transmission
  frequency to its real data deadline (``T[2] = 3`` etc. for their trace).

Bandwidth accounting follows the paper's Figure 9 semantics: the *average
bandwidth* of a configuration is the **bytes it actually transmits per
second** (which is why the paper can say that going from 137 to 129 segments
"could not have had any significant impact" even though the c stream rate is
much lower than b's — the film's bytes are the same either way).  Each
variant therefore carries per-segment byte weights alongside its allocated
stream rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigurationError
from ..smoothing.deadlines import maximum_periods
from ..smoothing.packing import PackedSegments, pack_video
from ..video.segmentation import segment_video, segments_for_wait
from ..video.vbr import VBRVideo
from .dhb import DHBProtocol
from .periods import PeriodVector


@dataclass(frozen=True)
class DHBVariant:
    """A fully derived DHB configuration for one video.

    Attributes
    ----------
    name:
        "DHB-a" .. "DHB-d".
    n_segments:
        Segment count ``n``.
    stream_rate:
        Allocated bandwidth of one data stream, bytes/second.
    slot_duration:
        Slot length ``d`` in seconds.
    periods:
        Maximum-period vector ``T``.
    segment_bytes:
        Bytes moved by one transmission of each segment (``segment_bytes[j-1]``
        for ``S_j``); the Figure 9 byte-accounting weights.
    """

    name: str
    n_segments: int
    stream_rate: float
    slot_duration: float
    periods: PeriodVector
    segment_bytes: List[float]

    def build_protocol(self, track_clients: bool = False) -> DHBProtocol:
        """Instantiate a fresh :class:`~repro.core.dhb.DHBProtocol`."""
        return DHBProtocol(
            periods=self.periods,
            segment_weights=self.segment_bytes,
            track_clients=track_clients,
        )

    @property
    def saturation_bytes_per_second(self) -> float:
        """Saturated average server bandwidth in bytes/second.

        At saturation segment ``S_j`` is transmitted once every ``T[j]``
        slots, moving ``segment_bytes[j-1]`` bytes each time.
        """
        return sum(
            weight / (period * self.slot_duration)
            for weight, period in zip(self.segment_bytes, self.periods)
        )


def _check_wait(video: VBRVideo, max_wait: float) -> None:
    if max_wait <= 0:
        raise ConfigurationError(f"max_wait must be > 0, got {max_wait}")
    if max_wait >= video.duration:
        raise ConfigurationError(
            f"max_wait {max_wait} must be below the video duration "
            f"{video.duration}"
        )


def dhb_a(video: VBRVideo, max_wait: float) -> DHBVariant:
    """Base solution: uniform periods, peak-rate containers."""
    _check_wait(video, max_wait)
    n = segments_for_wait(video.duration, max_wait)
    peak = video.peak_bandwidth(window_seconds=1)
    return DHBVariant(
        name="DHB-a",
        n_segments=n,
        stream_rate=peak,
        slot_duration=max_wait,
        periods=PeriodVector.uniform(n),
        # Fixed-bandwidth container: a transmission occupies the whole
        # peak-rate stream for the slot regardless of the segment's content.
        segment_bytes=[peak * max_wait] * n,
    )


def dhb_b(video: VBRVideo, max_wait: float) -> DHBVariant:
    """Deterministic waiting time: move each segment's actual bytes."""
    _check_wait(video, max_wait)
    n = segments_for_wait(video.duration, max_wait)
    segmented = segment_video(video, n)
    return DHBVariant(
        name="DHB-b",
        n_segments=n,
        stream_rate=segmented.max_segment_rate,
        slot_duration=max_wait,
        periods=PeriodVector.uniform(n),
        segment_bytes=list(segmented.segment_bytes),
    )


def _packed_bytes(packed: PackedSegments) -> List[float]:
    """Per-segment byte totals of a packed video (last chunk is partial)."""
    full = packed.bytes_per_segment
    weights = [full] * packed.n_segments
    weights[-1] = packed.video.total_bytes - full * (packed.n_segments - 1)
    return weights


def dhb_c(video: VBRVideo, max_wait: float) -> DHBVariant:
    """Work-ahead smoothing: fewer, denser segments at the smoothed rate.

    The scheduler still uses conservative windows: each packed segment keeps
    the *smaller* of its data deadline and its ordinal position, so DHB-c
    isolates the effect of packing alone (frequency relaxation is DHB-d's
    contribution).
    """
    _check_wait(video, max_wait)
    packed = pack_video(video, slot_duration=max_wait)
    deadlines = maximum_periods(packed)
    conservative = [min(j + 1, t) for j, t in enumerate(deadlines)]
    conservative[0] = 1
    return DHBVariant(
        name="DHB-c",
        n_segments=packed.n_segments,
        stream_rate=packed.rate,
        slot_duration=max_wait,
        periods=PeriodVector(conservative),
        segment_bytes=_packed_bytes(packed),
    )


def dhb_d(video: VBRVideo, max_wait: float) -> DHBVariant:
    """Work-ahead smoothing plus relaxed minimum transmission frequencies."""
    _check_wait(video, max_wait)
    packed = pack_video(video, slot_duration=max_wait)
    return DHBVariant(
        name="DHB-d",
        n_segments=packed.n_segments,
        stream_rate=packed.rate,
        slot_duration=max_wait,
        periods=PeriodVector(maximum_periods(packed)),
        segment_bytes=_packed_bytes(packed),
    )


def make_all_variants(video: VBRVideo, max_wait: float) -> Dict[str, DHBVariant]:
    """All four Section 4 configurations, keyed by name.

    >>> from ..video.matrix import matrix_like_video
    >>> variants = make_all_variants(matrix_like_video(), 60.0)
    >>> sorted(variants)
    ['DHB-a', 'DHB-b', 'DHB-c', 'DHB-d']
    """
    builders = [dhb_a, dhb_b, dhb_c, dhb_d]
    variants: List[DHBVariant] = [build(video, max_wait) for build in builders]
    return {variant.name: variant for variant in variants}
