"""Interactive (VCR) extension: pause/resume under DHB.

The DHB paper's companion work (Pâris's interactive broadcasting protocols)
extends broadcasting to VCR actions.  The natural DHB formulation: a viewer
who paused during segment ``j0`` and later resumes is simply a *mid-video
request* — it needs segments ``j0 .. n`` with playout deadlines counted from
its resume slot, so segment ``S_j`` must be received within
``j - j0 + 1`` slots (the uniform case; with custom periods,
``T[j] - T[j0] + 1``, floored at 1).

The twist for scheduling: resumed clients carry *tighter* windows for the
same segments than fresh clients do, so the single-future-instance invariant
of plain DHB no longer holds (a fresh client's instance of ``S_j`` may sit
beyond a resumed client's window, forcing a second future instance).  Like
the receive-cap extension, this scheduler therefore keeps a sorted list of
future instances per segment and shares the *latest one inside the window*.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import List, Optional, Union

from ..errors import ConfigurationError, SchedulingError
from ..sim.slotted import SlottedModel
from .client import ClientPlan
from .heuristic import SlotChooser, latest_min_load_chooser
from .periods import PeriodVector
from .schedule import SlotSchedule


class InteractiveDHB(SlottedModel):
    """DHB with mid-video (resume) requests.

    Parameters
    ----------
    n_segments:
        Segment count (uniform periods), or pass ``periods``.
    periods:
        Optional custom maximum-period vector for the *fresh-request* case.
    chooser:
        Slot-selection heuristic.
    track_clients:
        Keep per-client :class:`~repro.core.client.ClientPlan` objects.

    Examples
    --------
    >>> protocol = InteractiveDHB(n_segments=6, track_clients=True)
    >>> fresh = protocol.handle_request(slot=0)
    >>> resumed = protocol.handle_request(slot=0, start_segment=4)
    >>> sorted(resumed.assignments)
    [4, 5, 6]
    >>> resumed.assignments[4]   # needed by the resumer's first slot
    1
    """

    def __init__(
        self,
        n_segments: Optional[int] = None,
        periods: Union[PeriodVector, List[int], None] = None,
        chooser: SlotChooser = latest_min_load_chooser,
        track_clients: bool = False,
    ):
        if periods is None:
            if n_segments is None:
                raise ConfigurationError("give n_segments or an explicit periods vector")
            periods = PeriodVector.uniform(n_segments)
        elif not isinstance(periods, PeriodVector):
            periods = PeriodVector(periods)
        self.periods = periods
        self.chooser = chooser
        self.schedule = SlotSchedule(periods.n_segments)
        self._future: List[List[int]] = [[] for _ in range(periods.n_segments)]
        self.track_clients = track_clients
        self.clients: List[ClientPlan] = []
        self.requests_admitted = 0
        self.resumes_admitted = 0

    @property
    def n_segments(self) -> int:
        """Number of segments ``n``."""
        return self.periods.n_segments

    def window_length(self, segment: int, start_segment: int) -> int:
        """Slots by which ``S_segment`` may trail a request starting at
        ``start_segment`` (>= 1 by construction)."""
        if segment < start_segment:
            raise SchedulingError(
                f"segment {segment} precedes the start segment {start_segment}"
            )
        length = self.periods[segment] - self.periods[start_segment] + 1
        return max(length, 1)

    def _prune_past(self, segment: int, slot: int) -> None:
        instances = self._future[segment - 1]
        cut = bisect_right(instances, slot)
        if cut:
            del instances[:cut]

    def _shareable_slot(
        self, segment: int, window_start: int, window_end: int
    ) -> Optional[int]:
        instances = self._future[segment - 1]
        lo = bisect_left(instances, window_start)
        hi = bisect_right(instances, window_end)
        return instances[hi - 1] if hi > lo else None

    def handle_request(
        self, slot: int, start_segment: int = 1
    ) -> Optional[ClientPlan]:
        """Admit a fresh (``start_segment=1``) or resumed request.

        Resumed clients watch segment ``start_segment`` during slot
        ``slot + 1`` and everything after on the usual cadence.
        """
        if not 1 <= start_segment <= self.n_segments:
            raise ConfigurationError(
                f"start_segment {start_segment} outside 1..{self.n_segments}"
            )
        plan = ClientPlan(arrival_slot=slot) if self.track_clients else None
        for segment in range(start_segment, self.n_segments + 1):
            self._prune_past(segment, slot)
            window_start = slot + 1
            window_end = slot + self.window_length(segment, start_segment)
            shared = self._shareable_slot(segment, window_start, window_end)
            if shared is not None:
                if plan is not None:
                    plan.assign(segment, shared, shared=True)
                continue
            chosen = self.chooser(self.schedule.load, window_start, window_end)
            self.schedule.add(chosen, segment)
            insort(self._future[segment - 1], chosen)
            if plan is not None:
                plan.assign(segment, chosen, shared=False)
        self.requests_admitted += 1
        if start_segment > 1:
            self.resumes_admitted += 1
        if plan is not None:
            self.clients.append(plan)
        return plan

    def verify_resumed_plan(self, plan: ClientPlan, start_segment: int) -> None:
        """Deadline check for a (possibly resumed) plan.

        Segment ``S_j`` must land within
        ``[arrival+1, arrival + window_length(j, start_segment)]``.
        """
        expected = set(range(start_segment, self.n_segments + 1))
        if set(plan.assignments) != expected:
            raise SchedulingError("plan does not cover the resumed suffix")
        for segment, assigned in plan.assignments.items():
            deadline = plan.arrival_slot + self.window_length(segment, start_segment)
            if not plan.arrival_slot < assigned <= deadline:
                raise SchedulingError(
                    f"S{segment} at slot {assigned} outside "
                    f"({plan.arrival_slot}, {deadline}]"
                )

    def slot_load(self, slot: int) -> int:
        """Segment instances transmitted during ``slot``."""
        return self.schedule.load(slot)

    def release_before(self, slot: int) -> None:
        """Garbage-collect schedule bookkeeping for slots ``< slot``."""
        self.schedule.release_before(slot)
