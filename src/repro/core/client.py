"""Client reception plans and on-time verification.

A customer whose request arrives during slot ``i`` starts receiving at the
beginning of slot ``i + 1`` and starts watching at the same moment (the wait
until the slot boundary *is* the protocol's maximum waiting time ``d``).
Segment ``S_j`` must therefore be fully received by the end of relative slot
``T[j]`` — absolute slot ``i + T[j]``.

:class:`ClientPlan` records which transmission each admitted client will use
for each segment, and :meth:`ClientPlan.verify` replays the playout deadline
check — the property the whole protocol exists to guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import DeadlineMissedError, SchedulingError
from .periods import PeriodVector


@dataclass
class ClientPlan:
    """The reception plan handed to one admitted request.

    Attributes
    ----------
    arrival_slot:
        Slot ``i`` during which the request arrived.
    assignments:
        ``assignments[j]`` is the absolute slot in which the client receives
        segment ``S_j`` (either a shared pre-existing instance or one newly
        scheduled for this request).
    shared:
        ``shared[j]`` is True when the client reuses an instance scheduled by
        an earlier request (cost-free for the server).
    """

    arrival_slot: int
    assignments: Dict[int, int] = field(default_factory=dict)
    shared: Dict[int, bool] = field(default_factory=dict)

    def assign(self, segment: int, slot: int, shared: bool) -> None:
        """Record that ``segment`` will be received from ``slot``."""
        if segment in self.assignments:
            raise SchedulingError(
                f"segment S{segment} already assigned for this client"
            )
        self.assignments[segment] = slot
        self.shared[segment] = shared

    @property
    def n_new_instances(self) -> int:
        """Number of segment instances this request forced the server to add."""
        return sum(1 for is_shared in self.shared.values() if not is_shared)

    def verify(self, periods: PeriodVector) -> None:
        """Check every playout deadline; raise on any violation.

        Raises
        ------
        DeadlineMissedError
            If any segment is received after its deadline slot
            ``arrival_slot + T[j]``.
        SchedulingError
            If a segment is missing, or scheduled in the past (at or before
            the arrival slot).
        """
        if set(self.assignments) != set(range(1, periods.n_segments + 1)):
            missing = set(range(1, periods.n_segments + 1)) - set(self.assignments)
            raise SchedulingError(
                f"client plan incomplete: missing segments {sorted(missing)}"
            )
        for segment, slot in self.assignments.items():
            if slot <= self.arrival_slot:
                raise SchedulingError(
                    f"segment S{segment} assigned to slot {slot}, not after "
                    f"arrival slot {self.arrival_slot}"
                )
            deadline = self.arrival_slot + periods[segment]
            if slot > deadline:
                raise DeadlineMissedError(self.arrival_slot, segment, deadline)

    def max_concurrent_receptions(self) -> int:
        """Peak number of segments this client downloads in a single slot.

        The paper's future-work item caps this at two or three streams; the
        base DHB protocol leaves it unbounded.
        """
        per_slot: Dict[int, int] = {}
        for slot in self.assignments.values():
            per_slot[slot] = per_slot.get(slot, 0) + 1
        return max(per_slot.values()) if per_slot else 0
