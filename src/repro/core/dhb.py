"""The Dynamic Heuristic Broadcasting protocol (the paper's Figure 6).

Algorithm, verbatim from the paper::

    Assumptions:
        slot k already contains m_k segment instances
        video contains n segments
        new video request arrives during slot i
    Algorithm:
        for j := 1 to n do
            search slots i+1 to i+j for an already scheduled instance of S_j
            if not found then
                let m_min := min { m_k | i+1 <= k <= i+j }
                let k_max := max { k | i+1 <= k <= i+j and m_k = m_min }
                schedule one instance of S_j in slot k_max
            end if
        end for loop

Section 4 replaces the window bound ``i + j`` by ``i + T[j]`` for compressed
video; the uniform CBR case is just ``T[j] = j``.  The heuristic is pluggable
(see :mod:`repro.core.heuristic`) so the ablation benches can swap it.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..errors import ConfigurationError
from ..sim.slotted import SlottedModel
from .client import ClientPlan
from .heuristic import SlotChooser, latest_min_load_chooser
from .periods import PeriodVector
from .schedule import SlotSchedule


class DHBProtocol(SlottedModel):
    """Dynamic Heuristic Broadcasting.

    Parameters
    ----------
    n_segments:
        Number of equal-duration segments (99 in Figures 7 and 8).
    periods:
        Maximum-period vector ``T``; defaults to the uniform CBR vector
        ``T[j] = j``.  May also be given as a plain sequence.
    chooser:
        Slot-selection heuristic; defaults to the paper's
        least-loaded/latest-tie rule.
    enable_sharing:
        Ablation switch: ``False`` skips the "already scheduled?" check and
        schedules every segment for every request.  Isolates how much of
        DHB's bandwidth saving comes from sharing (all of it, at high rates).
    segment_weights:
        Optional per-segment byte sizes.  ``slot_weight`` then reports the
        bytes transmitted per slot (compressed-video accounting, Figure 9);
        ``slot_load`` remains the occupied stream count.
    track_clients:
        Keep every admitted request's :class:`~repro.core.client.ClientPlan`
        (memory grows with request count — used by tests and examples, not by
        long sweeps).

    Examples
    --------
    The paper's Figure 4 — a request into an idle system during slot 1 gets
    segment ``S_j`` scheduled in slot ``j + 1``:

    >>> protocol = DHBProtocol(n_segments=6, track_clients=True)
    >>> plan = protocol.handle_request(slot=1)
    >>> plan.assignments
    {1: 2, 2: 3, 3: 4, 4: 5, 5: 6, 6: 7}

    Figure 5 — a second request during slot 3 shares ``S_3 .. S_6`` and only
    adds ``S_1`` in slot 4 and ``S_2`` in slot 5:

    >>> plan = protocol.handle_request(slot=3)
    >>> {j: s for j, s in plan.assignments.items() if not plan.shared[j]}
    {1: 4, 2: 5}
    """

    def __init__(
        self,
        n_segments: Optional[int] = None,
        periods: Union[PeriodVector, List[int], None] = None,
        chooser: SlotChooser = latest_min_load_chooser,
        enable_sharing: bool = True,
        segment_weights: Optional[List[float]] = None,
        track_clients: bool = False,
    ):
        if periods is None:
            if n_segments is None:
                raise ConfigurationError("give n_segments or an explicit periods vector")
            periods = PeriodVector.uniform(n_segments)
        elif not isinstance(periods, PeriodVector):
            periods = PeriodVector(periods)
        if n_segments is not None and n_segments != periods.n_segments:
            raise ConfigurationError(
                f"n_segments ({n_segments}) conflicts with periods "
                f"(n={periods.n_segments})"
            )
        self.periods = periods
        self.chooser = chooser
        self.enable_sharing = enable_sharing
        self.schedule = SlotSchedule(periods.n_segments, segment_weights)
        self.track_clients = track_clients
        self.clients: List[ClientPlan] = []
        self.requests_admitted = 0
        self._period_list = periods.as_list()

    @property
    def n_segments(self) -> int:
        """Number of segments ``n``."""
        return self.periods.n_segments

    def handle_request(self, slot: int) -> Optional[ClientPlan]:
        """Admit a request that arrived during ``slot`` (Figure 6).

        Returns the client's reception plan when ``track_clients`` is on.

        When the chooser is the paper's default rule the admission runs on
        the schedule's fused fast path (:meth:`SlotSchedule.choose_latest_min`
        over the array load store); custom :class:`SlotChooser` callables go
        through the equivalent generic loop, so ablation arms see identical
        semantics.
        """
        fused = self.chooser is latest_min_load_chooser
        if fused and self.enable_sharing and not self.track_clients:
            return self._handle_request_fast(slot)
        plan = ClientPlan(arrival_slot=slot) if self.track_clients else None
        schedule = self.schedule
        instances_before = schedule.total_instances if self.metrics is not None else 0
        for segment in range(1, self.n_segments + 1):
            window_end = slot + self._period_list[segment - 1]
            existing = (
                schedule.next_transmission(segment)
                if self.enable_sharing
                else None
            )
            if existing is not None and existing > slot:
                # The single-future-instance invariant guarantees
                # existing <= window_end, so this instance is shareable.
                if plan is not None:
                    plan.assign(segment, existing, shared=True)
                continue
            if fused:
                chosen = schedule.choose_latest_min(slot + 1, window_end)
            else:
                chosen = self.chooser(schedule.load, slot + 1, window_end)
            schedule.add(chosen, segment)
            if plan is not None:
                plan.assign(segment, chosen, shared=False)
        self.requests_admitted += 1
        if self.metrics is not None:
            self.metrics.counter("protocol.requests").inc()
            self.metrics.counter("protocol.instances_scheduled").inc(
                schedule.total_instances - instances_before
            )
        if plan is not None:
            self.clients.append(plan)
        return plan

    def handle_suffix_request(
        self, slot: int, first_segment: int
    ) -> Optional[ClientPlan]:
        """Admit a client that already holds segments ``1 .. first_segment-1``.

        The origin→edge hierarchy (:mod:`repro.edge`) serves video prefixes
        from edge caches; the client joining the origin broadcast only needs
        the *suffix*, so Figure 6's loop runs over segments
        ``first_segment .. n`` with unchanged per-segment windows (segment
        ``j`` is still due ``T[j]`` slots after the join) — the paper's
        sharing rule applies to suffix joins for free.  ``first_segment = 1``
        is exactly :meth:`handle_request`; ``first_segment`` past the last
        segment is a configuration error (a fully cached title never joins
        the origin).
        """
        if first_segment <= 1:
            return self.handle_request(slot)
        if first_segment > self.n_segments:
            raise ConfigurationError(
                f"first_segment {first_segment} beyond the last segment "
                f"{self.n_segments}; fully cached titles do not join the origin"
            )
        fused = self.chooser is latest_min_load_chooser
        plan = ClientPlan(arrival_slot=slot) if self.track_clients else None
        schedule = self.schedule
        instances_before = schedule.total_instances if self.metrics is not None else 0
        for segment in range(first_segment, self.n_segments + 1):
            window_end = slot + self._period_list[segment - 1]
            existing = (
                schedule.next_transmission(segment)
                if self.enable_sharing
                else None
            )
            if existing is not None and existing > slot:
                if plan is not None:
                    plan.assign(segment, existing, shared=True)
                continue
            if fused:
                chosen = schedule.choose_latest_min(slot + 1, window_end)
            else:
                chosen = self.chooser(schedule.load, slot + 1, window_end)
            schedule.add(chosen, segment)
            if plan is not None:
                plan.assign(segment, chosen, shared=False)
        self.requests_admitted += 1
        if self.metrics is not None:
            self.metrics.counter("protocol.requests").inc()
            self.metrics.counter("protocol.instances_scheduled").inc(
                schedule.total_instances - instances_before
            )
        if plan is not None:
            self.clients.append(plan)
        return plan

    def _handle_request_fast(self, slot: int) -> None:
        """Vectorised admission for the default heuristic.

        One vector compare finds the segments with no shareable future
        instance (at saturation only ~H(n) of n qualify); each of those is
        then placed by the fused window-min kernel
        (:meth:`SlotSchedule.place_latest_min_many`).  Processing stays in
        ascending segment order and reads loads live, so the resulting
        schedule is bit-for-bit the generic loop's.
        """
        self.handle_batch(slot, 1)
        return None

    def handle_batch(self, slot: int, count: int) -> None:
        """Admit ``count`` same-slot requests in one batched admission.

        Sharing collapses a slot's batch to a single admission: the first
        request leaves every segment with a scheduled instance inside
        ``(slot, slot + T[j]]`` — inside every later same-slot request's
        window — so requests 2..count share everything and schedule
        nothing.  Observably identical to ``count`` repeated
        :meth:`handle_request` calls (schedule, counters, metrics), at the
        cost of one.

        Configurations outside the fused fast path (custom choosers,
        sharing disabled, client tracking) fall back to the scalar loop,
        whose semantics genuinely differ per request.
        """
        if count <= 0:
            return
        fused = self.chooser is latest_min_load_chooser
        if not (fused and self.enable_sharing and not self.track_clients):
            for _ in range(count):
                self.handle_request(slot)
            return
        schedule = self.schedule
        needed = (schedule.next_transmissions <= slot).nonzero()[0]
        placed = 0
        if needed.size:
            periods = self._period_list
            indices = needed.tolist()
            placed = schedule.place_latest_min_many(
                slot + 1,
                [slot + periods[index] for index in indices],
                [index + 1 for index in indices],
            )
        self.requests_admitted += count
        if self.metrics is not None:
            self.metrics.counter("protocol.requests").inc(count)
            self.metrics.counter("protocol.instances_scheduled").inc(placed)

    def slot_load(self, slot: int) -> int:
        """Segment instances transmitted during ``slot`` (streams of rate b)."""
        return self.schedule.load(slot)

    def slot_weight(self, slot: int) -> float:
        """Weighted load of ``slot`` (bytes when weights are byte sizes)."""
        return self.schedule.weight(slot)

    def slot_instances(self, slot: int) -> List[int]:
        """Segment numbers scheduled in ``slot`` (for per-slot traces)."""
        return self.schedule.segments_in(slot)

    def release_before(self, slot: int) -> None:
        """Garbage-collect schedule bookkeeping for slots ``< slot``."""
        self.schedule.release_before(slot)

    def __repr__(self) -> str:
        kind = "uniform" if self.periods.is_uniform else "custom-periods"
        return (
            f"DHBProtocol(n_segments={self.n_segments}, {kind}, "
            f"requests={self.requests_admitted})"
        )
