"""Per-segment maximum transmission periods.

Section 4 of the paper generalises DHB from the uniform rule "segment
``S_j`` must be scheduled within ``j`` slots" to an arbitrary vector
``T`` with ``T[1] = 1`` and ``T[j] >= 1``: "whenever a request arriving
during slot *i* will require a new transmission of segment *S_j*, the
protocol will now search slots *i+1* to *i+T[j]*".

:class:`PeriodVector` validates and carries such a vector.  The uniform case
is :meth:`PeriodVector.uniform`; VBR vectors come from
:func:`repro.smoothing.deadlines.maximum_periods`.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from ..errors import ConfigurationError


class PeriodVector:
    """Validated vector of maximum periods ``T[1..n]`` (1-based access).

    Parameters
    ----------
    periods:
        ``periods[j-1]`` is ``T[j]`` in slots.  Every entry must be a
        positive integer and ``T[1]`` must be 1 (the first segment feeds
        playout immediately after the one-slot startup wait, so it can never
        be delayed).

    Examples
    --------
    >>> t = PeriodVector.uniform(4)
    >>> list(t)
    [1, 2, 3, 4]
    >>> t[3]
    3
    """

    def __init__(self, periods: Sequence[int]):
        if len(periods) == 0:
            raise ConfigurationError("period vector must be non-empty")
        if any(int(p) != p for p in periods):
            raise ConfigurationError("periods must be integers")
        values = [int(p) for p in periods]
        if values[0] != 1:
            raise ConfigurationError(f"T[1] must be 1, got {values[0]}")
        if any(p < 1 for p in values):
            raise ConfigurationError("every period must be >= 1")
        self._values = values

    @classmethod
    def uniform(cls, n_segments: int) -> "PeriodVector":
        """The base DHB periods ``T[j] = j``."""
        if n_segments < 1:
            raise ConfigurationError(f"need >= 1 segment, got {n_segments}")
        return cls(list(range(1, n_segments + 1)))

    @property
    def n_segments(self) -> int:
        """Number of segments the vector covers."""
        return len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, segment: int) -> int:
        """1-based access: ``T[j]`` for segment ``S_j``."""
        if not 1 <= segment <= len(self._values):
            raise ConfigurationError(
                f"segment {segment} outside 1..{len(self._values)}"
            )
        return self._values[segment - 1]

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PeriodVector):
            return self._values == other._values
        return NotImplemented

    def __repr__(self) -> str:
        if len(self._values) > 8:
            head = ", ".join(str(v) for v in self._values[:8])
            return f"PeriodVector([{head}, ... n={len(self._values)}])"
        return f"PeriodVector({self._values})"

    def as_list(self) -> List[int]:
        """Copy of the raw period values (0-based list)."""
        return list(self._values)

    @property
    def is_uniform(self) -> bool:
        """Whether this is the base CBR vector ``T[j] = j``."""
        return self._values == list(range(1, len(self._values) + 1))

    @property
    def saturation_bandwidth(self) -> float:
        """Average streams when every segment rides its minimum frequency.

        At saturation each segment ``S_j`` is transmitted once every ``T[j]``
        slots, so the long-run average bandwidth is ``sum_j 1 / T[j]`` in
        units of the stream rate.  For the uniform vector this is the
        harmonic number ``H(n)`` — the paper's DHB plateau in Figure 7.
        """
        return sum(1.0 / t for t in self._values)
