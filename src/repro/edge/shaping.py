"""Policy-based traffic shaping at the edge uplink.

An edge node's unicast uplink is a shared, finite resource; policy-based
shaping (in the spirit of programmable traffic-management surveys) splits
it into *traffic classes* — ``premium`` and ``best-effort`` by default —
so a burst of background demand cannot starve paying viewers.  Two
mechanisms, both deterministic so seeded runs reproduce bit for bit:

* **classification** — requests are assigned to classes by weighted
  round-robin credit accumulators: every request adds ``w_c / W`` credit
  to each class and the class with the most credit (ties to declaration
  order) takes the request, paying one credit.  Long-run class shares
  converge to the weights without consuming any randomness — new RNG
  draws would perturb the seeded cluster streams and break the
  zero-budget bit-for-bit guarantee.
* **token buckets** — class ``c`` earns ``share_c × uplink`` tokens per
  slot (one token = one segment unicast in one slot).  A prefix of ``k``
  segments costs ``k`` tokens; when the bucket cannot cover the cost the
  request is *deferred* by exactly the slots the refill needs — the
  client-visible wait the shaper trades for isolation.  A class with zero
  uplink share is shaped out entirely: its requests bypass the edge and
  fetch the whole video from the origin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class TrafficClass:
    """One shaping class: a share of requests and a share of the uplink.

    ``weight`` drives classification (class takes ``weight / Σ weights``
    of the requests); ``uplink_share`` is the fraction of the edge uplink
    its token bucket earns per slot.  The two are deliberately separate —
    a premium class with a small request share and a large uplink share is
    exactly the point of shaping.
    """

    name: str
    weight: int
    uplink_share: float

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("traffic class needs a name")
        if self.weight < 1:
            raise ConfigurationError(
                f"class {self.name}: weight must be >= 1, got {self.weight}"
            )
        if not 0.0 <= self.uplink_share <= 1.0:
            raise ConfigurationError(
                f"class {self.name}: uplink_share must be in [0, 1], "
                f"got {self.uplink_share}"
            )


#: The stock premium / best-effort split used by presets and the CLI.
DEFAULT_CLASSES: Tuple[TrafficClass, ...] = (
    TrafficClass("premium", weight=7, uplink_share=0.7),
    TrafficClass("best-effort", weight=3, uplink_share=0.3),
)


def parse_classes(spec: str) -> Tuple[TrafficClass, ...]:
    """Parse a CLI class spec: ``name:weight:share,name:weight:share,...``.

    >>> [c.name for c in parse_classes("gold:3:0.8,bronze:1:0.2")]
    ['gold', 'bronze']
    """
    classes: List[TrafficClass] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) != 3:
            raise ConfigurationError(
                f"bad class spec {part!r}; expected name:weight:share"
            )
        name, weight, share = pieces
        try:
            classes.append(
                TrafficClass(name, weight=int(weight), uplink_share=float(share))
            )
        except ValueError as exc:
            raise ConfigurationError(f"bad class spec {part!r}: {exc}") from None
    if not classes:
        raise ConfigurationError(f"class spec {spec!r} declares no classes")
    return validate_classes(tuple(classes))


def validate_classes(
    classes: Sequence[TrafficClass],
) -> Tuple[TrafficClass, ...]:
    """Check a class set: unique names, uplink shares summing to <= 1."""
    if not classes:
        raise ConfigurationError("need >= 1 traffic class")
    names = [cls.name for cls in classes]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate traffic class names in {names}")
    total_share = sum(cls.uplink_share for cls in classes)
    if total_share > 1.0 + 1e-9:
        raise ConfigurationError(
            f"uplink shares sum to {total_share:.3f} > 1"
        )
    return tuple(classes)


class _Bucket:
    """A token bucket with debt: refills ``rate``/slot up to ``capacity``.

    ``take(cost)`` always succeeds, returning how many slots the caller
    must wait for the refills to cover the debt.  Letting the level go
    negative models the class's uplink queue without tracking individual
    transfers — the deferral *is* the queueing delay.  The capacity (a few
    slots' worth of tokens) is the burst allowance: it must dwarf one
    prefix's cost or even an idle uplink would defer every request, the
    token-bucket analogue of sizing the bucket to the maximum packet.
    """

    def __init__(self, rate: float, capacity: float):
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.level = float(capacity)

    def refill(self) -> None:
        self.level = min(self.level + self.rate, self.capacity)

    def take(self, cost: int) -> int:
        if self.level >= cost:
            self.level -= cost
            return 0
        defer = int(math.ceil((cost - self.level) / self.rate))
        self.level -= cost
        return defer


class PolicyShaper:
    """Classify requests and meter each class's draw on the edge uplink.

    Parameters
    ----------
    classes:
        The traffic classes (validated; see :func:`validate_classes`).
    uplink_streams:
        The edge node's per-slot unicast capacity in streams; each class's
        bucket earns ``uplink_share × uplink_streams`` tokens per slot.
    burst_slots:
        Bucket capacity in slots of refill — the burst allowance each
        class may spend after an idle stretch.
    """

    def __init__(
        self,
        classes: Sequence[TrafficClass] = DEFAULT_CLASSES,
        uplink_streams: float = 0.0,
        burst_slots: float = 4.0,
    ):
        self.classes = validate_classes(classes)
        if uplink_streams < 0:
            raise ConfigurationError(
                f"uplink_streams must be >= 0, got {uplink_streams}"
            )
        if burst_slots < 1:
            raise ConfigurationError(
                f"burst_slots must be >= 1, got {burst_slots}"
            )
        self.uplink_streams = float(uplink_streams)
        self.burst_slots = float(burst_slots)
        total_weight = sum(cls.weight for cls in self.classes)
        self._shares = [cls.weight / total_weight for cls in self.classes]
        self._credits = [0.0] * len(self.classes)
        self._buckets: Dict[str, _Bucket] = {
            cls.name: _Bucket(
                cls.uplink_share * self.uplink_streams,
                cls.uplink_share * self.uplink_streams * self.burst_slots,
            )
            for cls in self.classes
        }
        # Lifetime counters, per class.
        self.requests: Dict[str, int] = {cls.name: 0 for cls in self.classes}
        self.deferrals: Dict[str, int] = {cls.name: 0 for cls in self.classes}
        self.deferral_slots: Dict[str, int] = {
            cls.name: 0 for cls in self.classes
        }
        self.bypassed: Dict[str, int] = {cls.name: 0 for cls in self.classes}

    def begin_slot(self) -> None:
        """Refill every class bucket (call once at the top of each slot)."""
        for bucket in self._buckets.values():
            bucket.refill()

    def classify(self) -> TrafficClass:
        """Assign the next request to a class (weighted round-robin credits)."""
        for index, share in enumerate(self._shares):
            self._credits[index] += share
        best = max(range(len(self._credits)), key=lambda i: (self._credits[i], -i))
        self._credits[best] -= 1.0
        chosen = self.classes[best]
        self.requests[chosen.name] += 1
        return chosen

    def reserve(self, traffic_class: TrafficClass, segments: int) -> Optional[int]:
        """Draw ``segments`` uplink tokens for a prefix transfer.

        Returns the deferral in slots (0 = start now), or ``None`` when the
        class has no uplink at all — the caller must bypass the edge.
        """
        if segments < 0:
            raise ConfigurationError(f"segments must be >= 0, got {segments}")
        bucket = self._buckets[traffic_class.name]
        if bucket.rate <= 0.0:
            self.bypassed[traffic_class.name] += 1
            return None
        defer = bucket.take(segments)
        if defer > 0:
            self.deferrals[traffic_class.name] += 1
            self.deferral_slots[traffic_class.name] += defer
        return defer
