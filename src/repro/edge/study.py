"""The figure-style edge study: backbone saved vs cache budget.

The deliverable picture for the hierarchy is one curve: how much backbone
(origin) bandwidth the edge tier saves over pure DHB broadcast as the
per-edge cache budget grows, with the analytic saturation bound
(:func:`repro.analysis.theory.edge_backbone_savings_bound`) overlaid.
Every point is an independent ``"edge-scenario"`` run spec, so the sweep
fans out across whatever runtime backend is configured and resumes from
checkpoints like any other batch; the budget-0 point doubles as the pure
DHB baseline every saving is measured against.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from ..analysis.tables import format_simple_table
from ..errors import ConfigurationError
from ..obs.trace import Observation
from .scenario import HierarchyResult, HierarchyScenario

#: Default per-edge budget sweep, as fractions of the catalog's segments.
DEFAULT_FRACTIONS = (0.0, 0.1, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class BudgetPoint:
    """One cache budget's measured and analytic outcome."""

    cache_segments: int
    hit_ratio: float
    origin_mean_streams: float
    edge_segments_served: int
    backbone_saved: float
    theory_bound: float


@dataclass
class BudgetStudy:
    """The swept curve: measured backbone savings with the bound overlaid."""

    scenario: str
    points: List[BudgetPoint]

    def to_dict(self) -> dict:
        """JSON-safe snapshot of the study."""
        return {
            "scenario": self.scenario,
            "points": [asdict(point) for point in self.points],
        }

    def render(self) -> str:
        """The study as a table, budget ascending (the figure's data)."""
        rows = [
            [
                point.cache_segments,
                f"{point.hit_ratio:.3f}",
                f"{point.origin_mean_streams:.2f}",
                point.edge_segments_served,
                f"{point.backbone_saved:.3f}",
                f"{point.theory_bound:.3f}",
            ]
            for point in self.points
        ]
        table = format_simple_table(
            [
                "cache/edge",
                "hit ratio",
                "origin streams",
                "edge segments",
                "saved",
                "bound",
            ],
            rows,
        )
        return "\n".join(
            [
                f"edge budget study ({self.scenario}): backbone bandwidth "
                "saved vs pure DHB broadcast",
                table,
            ]
        )


def run_budget_study(
    base: HierarchyScenario,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    observation: Optional[Observation] = None,
    engine=None,
) -> BudgetStudy:
    """Sweep per-edge cache budgets and measure backbone savings.

    ``fractions`` scale each edge's budget against the catalog's total
    segment count; a 0.0 point is always included (it is the pure-DHB
    baseline the savings are measured against).  Points run as
    ``"edge-scenario"`` specs through the runtime Engine, in input order,
    bit-for-bit identical on every backend.
    """
    from ..runtime import Engine, RunSpec

    if not fractions:
        raise ConfigurationError("need >= 1 budget fraction")
    cleaned = sorted({max(0.0, float(f)) for f in fractions} | {0.0})
    if any(f > 1.0 for f in cleaned):
        raise ConfigurationError("budget fractions must be in [0, 1]")
    catalog_segments = base.topology.n_titles * base.n_segments
    scenarios = [
        base.with_cache_budget(int(fraction * catalog_segments))
        for fraction in cleaned
    ]
    specs = [
        RunSpec(
            "edge-scenario",
            (scenario,),
            label=f"{scenario.name}@{scenario.topology.edges[0].cache_segments}",
        )
        for scenario in scenarios
    ]
    if engine is None:
        engine = Engine()
    results: List[HierarchyResult] = engine.run_values(
        specs, observation=observation
    )
    baseline = results[0].cluster
    points = [
        BudgetPoint(
            cache_segments=scenario.topology.edges[0].cache_segments,
            hit_ratio=result.hit_ratio,
            origin_mean_streams=result.origin_mean_streams,
            edge_segments_served=result.edge_segments_served,
            backbone_saved=result.backbone_saved_vs(baseline),
            theory_bound=result.theory_bound,
        )
        for scenario, result in zip(scenarios, results)
    ]
    return BudgetStudy(scenario=base.name, points=points)
