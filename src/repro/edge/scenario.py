"""Hierarchy scenarios: origin DHB broadcast composed with edge prefixes.

A :class:`HierarchyScenario` freezes one origin+edge experiment — tiered
topology, prefix policy, traffic classes, drift plan, plus every knob the
underlying :class:`~repro.cluster.scenario.ClusterScenario` takes — so the
same value always reproduces the same :class:`HierarchyResult` on any
runtime backend (the ``"edge-scenario"`` task kind).

The run composes the two tiers through the cluster loop's edge seam: the
edge tier intercepts each arrival, serves cached prefixes locally (near
zero wait) and turns the remainder into origin *suffix joins* (DHB's
Figure 6 loop over segments ``k+1 .. n``).  The zero-budget degenerate
case is the acceptance anchor: with no cache the tier decides *miss* for
every arrival, the prefix-aware router has an empty map, and the run is
bit-for-bit the pure-cluster baseline — same arrivals (the seeded streams
are untouched), same routing, same schedules, same waits.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..analysis.tables import format_simple_table
from ..analysis.theory import edge_backbone_savings_bound
from ..cluster.routing import PrefixAwareRouter
from ..cluster.scenario import ClusterResult, ClusterScenario, run_scenario
from ..cluster.topology import TieredTopology, tiered_topology
from ..errors import ConfigurationError
from ..obs.trace import Observation
from ..sim.rng import RandomStreams
from ..workload.popularity import ZipfCatalog
from ..workload.spec import WorkloadSpec, as_workload
from .cache import PREFIX_POLICY_NAMES, allocate_prefixes
from .node import EdgeNode, EdgeTier
from .shaping import DEFAULT_CLASSES, PolicyShaper, TrafficClass, validate_classes


@dataclass(frozen=True)
class HierarchyScenario:
    """One complete origin+edge experiment, reproducible from its value."""

    name: str
    topology: TieredTopology
    prefix_policy: str = "popularity"
    classes: Tuple[TrafficClass, ...] = DEFAULT_CLASSES
    drift: float = 0.0
    reallocate_every: int = 0
    protocol: str = "dhb"
    n_segments: int = 60
    slot_duration: float = 20.0
    horizon_slots: int = 720
    warmup_slots: int = 120
    total_rate_per_hour: float = 300.0
    zipf_theta: float = 1.0
    seed: int = 2001
    keep_title_series: bool = True
    #: Optional nonstationary aggregate arrivals for the whole hierarchy;
    #: forwarded to the origin :class:`ClusterScenario` (``None`` keeps the
    #: seeded Poisson at ``total_rate_per_hour`` bit-for-bit).
    workload: Optional[WorkloadSpec] = None

    def __post_init__(self):
        if self.workload is not None:
            object.__setattr__(self, "workload", as_workload(self.workload))
        if self.prefix_policy not in PREFIX_POLICY_NAMES:
            raise ConfigurationError(
                f"unknown prefix policy {self.prefix_policy!r}; "
                f"choose from {list(PREFIX_POLICY_NAMES)}"
            )
        validate_classes(self.classes)
        if self.drift < 0:
            raise ConfigurationError(f"drift must be >= 0, got {self.drift}")
        if self.reallocate_every < 0:
            raise ConfigurationError(
                f"reallocate_every must be >= 0, got {self.reallocate_every}"
            )
        if self.drift > 0 and self.reallocate_every == 0:
            raise ConfigurationError("drift > 0 needs reallocate_every >= 1")
        if self.topology.total_cache_segments > 0 and self.protocol != "dhb":
            raise ConfigurationError(
                f"protocol {self.protocol!r} cannot admit suffix joins; "
                "hierarchies with a cache budget require DHB"
            )
        # Building the origin scenario validates every shared knob eagerly.
        self.cluster()

    def cluster(self) -> ClusterScenario:
        """The origin side as a pure :class:`ClusterScenario`.

        This is also the zero-budget *baseline*: running it directly must
        agree bit-for-bit with a zero-budget hierarchy run (the golden
        test), which is why the router is pinned to ``prefix-aware`` —
        with an empty prefix map it behaves exactly like ``affinity``.
        """
        return ClusterScenario(
            name=self.name,
            topology=self.topology.origin,
            router="prefix-aware",
            protocol=self.protocol,
            n_segments=self.n_segments,
            slot_duration=self.slot_duration,
            horizon_slots=self.horizon_slots,
            warmup_slots=self.warmup_slots,
            total_rate_per_hour=self.total_rate_per_hour,
            zipf_theta=self.zipf_theta,
            seed=self.seed,
            keep_title_series=self.keep_title_series,
            workload=self.workload,
        )

    def with_cache_budget(self, cache_segments: int) -> "HierarchyScenario":
        """A copy with every edge's cache budget set to ``cache_segments``."""
        edges = tuple(
            replace(spec, cache_segments=int(cache_segments))
            for spec in self.topology.edges
        )
        return replace(
            self,
            topology=TieredTopology(origin=self.topology.origin, edges=edges),
        )


@dataclass(frozen=True)
class EdgeSummary:
    """Per-edge-node outcome of one hierarchy run."""

    edge_id: int
    cache_segments: int
    uplink_streams: float
    hits: int
    misses: int
    bypassed: int
    segments_served: int
    reallocations: int


@dataclass
class HierarchyResult:
    """Everything one hierarchy run measured.

    ``cluster`` is the origin-side :class:`ClusterResult` — under a zero
    cache budget its :meth:`~ClusterResult.to_dict` snapshot equals the
    pure-cluster baseline's exactly.  The edge-side counters quantify what
    the cache bought: ``segments_served`` moved off the backbone, and
    ``backbone_saved_vs`` compares origin demand against a baseline run.
    """

    scenario: str
    cluster: ClusterResult
    edges: List[EdgeSummary]
    class_totals: Dict[str, Dict[str, int]] = field(default_factory=dict)
    theory_bound: float = 0.0

    @property
    def hits(self) -> int:
        """Prefix-cache hits across the edge tier."""
        return sum(edge.hits for edge in self.edges)

    @property
    def misses(self) -> int:
        """Cold-title misses across the edge tier."""
        return sum(edge.misses for edge in self.edges)

    @property
    def bypassed(self) -> int:
        """Arrivals shaped out to the origin (zero-uplink classes)."""
        return sum(edge.bypassed for edge in self.edges)

    @property
    def hit_ratio(self) -> float:
        """Measured fraction of edge-decided arrivals hitting a prefix."""
        decided = self.hits + self.misses + self.bypassed
        return self.hits / decided if decided else 0.0

    @property
    def edge_segments_served(self) -> int:
        """Prefix segment instances unicast from edge caches."""
        return sum(edge.segments_served for edge in self.edges)

    @property
    def origin_segments_transmitted(self) -> int:
        """Segment instances the origin fleet put on the backbone."""
        return sum(
            summary.transmitted_instances for summary in self.cluster.servers
        )

    @property
    def origin_mean_streams(self) -> float:
        """Average origin (backbone) demand in streams."""
        return self.cluster.mean_streams

    def backbone_saved_vs(self, baseline: ClusterResult) -> float:
        """Fraction of the baseline's mean backbone streams saved.

        ``baseline`` is the pure-DHB run of :meth:`HierarchyScenario.cluster`
        (equivalently, the zero-budget hierarchy).
        """
        if baseline.mean_streams <= 0:
            return 0.0
        return 1.0 - self.origin_mean_streams / baseline.mean_streams

    def to_dict(self) -> Dict:
        """JSON-safe snapshot; nests the origin result's snapshot."""
        return {
            "scenario": self.scenario,
            "cluster": self.cluster.to_dict(),
            "edges": [asdict(edge) for edge in self.edges],
            "class_totals": self.class_totals,
            "theory_bound": self.theory_bound,
            "hit_ratio": self.hit_ratio,
            "edge_segments_served": self.edge_segments_served,
        }

    def render(self) -> str:
        """Human-readable edge table plus the origin summary."""
        rows = [
            [
                edge.edge_id,
                edge.cache_segments,
                edge.hits,
                edge.misses,
                edge.bypassed,
                edge.segments_served,
                edge.reallocations,
            ]
            for edge in self.edges
        ]
        table = format_simple_table(
            [
                "edge",
                "cache",
                "hits",
                "misses",
                "bypassed",
                "segments",
                "reallocs",
            ],
            rows,
        )
        class_lines = [
            f"  class {name}: {totals['requests']} requests, "
            f"{totals['deferrals']} deferred "
            f"({totals['deferral_slots']} slot(s)), "
            f"{totals['bypassed']} bypassed"
            for name, totals in sorted(self.class_totals.items())
        ]
        lines = [
            f"hierarchy {self.scenario}: hit ratio {self.hit_ratio:.3f} "
            f"({self.hits} hits / {self.misses} misses / "
            f"{self.bypassed} bypassed), "
            f"{self.edge_segments_served} prefix segments served at the edge",
            f"origin demand: mean {self.origin_mean_streams:.2f} streams, "
            f"peak {self.cluster.peak_streams}; analytic savings bound "
            f"{self.theory_bound:.3f}",
            table,
            *class_lines,
        ]
        return "\n".join(lines)


def run_hierarchy(
    scenario: HierarchyScenario,
    observation: Optional[Observation] = None,
) -> HierarchyResult:
    """Run one hierarchy scenario and collect both tiers' measurements."""
    topology = scenario.topology
    catalog = ZipfCatalog(topology.n_titles, scenario.zipf_theta)
    shares = catalog.probabilities
    router = PrefixAwareRouter()
    nodes = [
        EdgeNode(
            spec,
            allocate_prefixes(
                scenario.prefix_policy,
                shares,
                spec.cache_segments,
                scenario.n_segments,
            ),
            PolicyShaper(scenario.classes, spec.uplink_streams),
            scenario.slot_duration,
        )
        for spec in topology.edges
    ]
    # The drift stream is named, so drawing from it can never perturb the
    # cluster's "cluster-arrivals" / "cluster-titles" draws.
    rng = (
        RandomStreams(scenario.seed).get("edge-drift")
        if scenario.drift > 0
        else None
    )
    tier = EdgeTier(
        nodes,
        policy=scenario.prefix_policy,
        catalog=catalog,
        router=router,
        drift=scenario.drift,
        reallocate_every=scenario.reallocate_every,
        rng=rng,
    )
    cluster_result = run_scenario(
        scenario.cluster(),
        observation,
        edge_tier=tier,
        router_override=router,
    )
    prefix_map = tier.prefix_map()
    bound = edge_backbone_savings_bound(
        shares,
        [prefix_map.get(title, 0) for title in range(topology.n_titles)],
        scenario.n_segments,
    )
    summaries = [
        EdgeSummary(
            edge_id=node.edge_id,
            cache_segments=node.spec.cache_segments,
            uplink_streams=node.spec.uplink_streams,
            hits=node.hits,
            misses=node.misses,
            bypassed=node.bypassed,
            segments_served=node.segments_served,
            reallocations=node.reallocations,
        )
        for node in nodes
    ]
    result = HierarchyResult(
        scenario=scenario.name,
        cluster=cluster_result,
        edges=summaries,
        class_totals=tier.class_counters(),
        theory_bound=bound,
    )
    if observation is not None and observation.metrics is not None:
        metrics = observation.metrics
        metrics.gauge("edge.nodes").set(len(nodes))
        metrics.gauge("edge.cache.hit_ratio").set(result.hit_ratio)
        metrics.counter("edge.cache.hits").inc(result.hits)
        metrics.counter("edge.cache.misses").inc(result.misses)
        metrics.counter("edge.cache.bypassed").inc(result.bypassed)
        metrics.counter("edge.segments_served").inc(result.edge_segments_served)
        metrics.counter("edge.origin_segments").inc(
            result.origin_segments_transmitted
        )
        metrics.counter("edge.reallocations").inc(
            sum(edge.reallocations for edge in summaries)
        )
        for name, totals in result.class_totals.items():
            prefix = f"edge.class.{name}"
            metrics.counter(f"{prefix}.requests").inc(totals["requests"])
            metrics.counter(f"{prefix}.deferrals").inc(totals["deferrals"])
            metrics.counter(f"{prefix}.deferral_slots").inc(
                totals["deferral_slots"]
            )
            metrics.counter(f"{prefix}.bypassed").inc(totals["bypassed"])
    return result


def preset_hierarchy(
    seed: int = 2001,
    quick: bool = False,
    cache_fraction: float = 0.25,
    prefix_policy: str = "popularity",
    classes: Tuple[TrafficClass, ...] = DEFAULT_CLASSES,
) -> HierarchyScenario:
    """The CLI's stock hierarchy: a uniform origin fronted by two edges.

    ``cache_fraction`` sizes each edge's budget as a fraction of the whole
    catalog's segment count (``n_titles * n_segments``); the default 25 %
    is the acceptance configuration (hit ratio well above 0.5 under
    Zipf(1.0)).
    """
    if not 0.0 <= cache_fraction <= 1.0:
        raise ConfigurationError(
            f"cache_fraction must be in [0, 1], got {cache_fraction}"
        )
    if quick:
        n_servers, capacity, n_titles = 4, 16, 6
        n_segments, horizon, warmup = 30, 240, 40
        rate, uplink = 240.0, 12.0
    else:
        n_servers, capacity, n_titles = 4, 24, 8
        n_segments, horizon, warmup = 60, 720, 120
        rate, uplink = 360.0, 16.0
    cache_segments = int(cache_fraction * n_titles * n_segments)
    topology = tiered_topology(
        n_servers,
        capacity=capacity,
        n_titles=n_titles,
        n_edges=2,
        cache_segments=cache_segments,
        uplink_streams=uplink,
    )
    return HierarchyScenario(
        name="edge-quick" if quick else "edge",
        topology=topology,
        prefix_policy=prefix_policy,
        classes=classes,
        n_segments=n_segments,
        slot_duration=20.0,
        horizon_slots=horizon,
        warmup_slots=warmup,
        total_rate_per_hour=rate,
        seed=seed,
    )
