"""Prefix-cache allocation: partition a segment budget across the catalog.

An edge node holds a fixed budget of ``B`` video segments and must decide,
per title, how long a *prefix* to cache.  Caching the first ``k`` segments
of a title buys two things at once: arrivals for that title start from the
edge with near-zero wait, and the origin only broadcasts the suffix, whose
saturation bandwidth is ``H(n) - H(k)`` — a saving of ``H(k)`` out of the
title's ``H(n)``
(see :func:`repro.analysis.theory.edge_backbone_savings_bound`).

Three policies, all deterministic functions of their inputs:

* ``popularity`` — greedy waterfill by marginal utility ``p_i / (k_i + 1)``:
  each unit of budget goes to the title where one more cached segment buys
  the most expected saving (the marginal harmonic gain of the ``k+1``-st
  segment is ``p_i / (k_i + 1)``).  Because the greedy sequence is fixed by
  the shares alone, the allocation at budget ``B + 1`` extends the
  allocation at ``B`` by exactly one segment — per-title prefixes, and
  hence the hit ratio, are monotone non-decreasing in the budget (the
  property test in ``tests/edge/test_cache.py`` leans on this).
* ``uniform`` — deal one segment per title round-robin in rank order until
  the budget runs out; ignores popularity entirely (the ablation baseline).
* ``proportional`` — ``k_i = floor(B * p_i)`` clamped to the video length;
  simple and monotone, but leaves the fractional remainder unspent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError

#: Allocation policy names accepted by :func:`allocate_prefixes`.
PREFIX_POLICY_NAMES = ("popularity", "uniform", "proportional")


@dataclass(frozen=True)
class CacheAllocation:
    """One edge cache's per-title prefix lengths under a fixed budget.

    ``prefixes[title]`` is the number of leading segments cached for the
    title (0 = not cached).  The invariant every policy upholds — and the
    property suite enforces — is ``sum(prefixes) <= budget``.
    """

    policy: str
    budget: int
    n_segments: int
    prefixes: Tuple[int, ...]

    @property
    def total_segments(self) -> int:
        """Segments actually allocated (``<= budget`` always)."""
        return sum(self.prefixes)

    @property
    def titles_cached(self) -> int:
        """Titles with a non-empty cached prefix."""
        return sum(1 for k in self.prefixes if k > 0)

    def prefix_of(self, title: int) -> int:
        """Cached prefix length of ``title`` (0 when not cached)."""
        if not 0 <= title < len(self.prefixes):
            raise ConfigurationError(
                f"title {title} outside catalog of {len(self.prefixes)}"
            )
        return self.prefixes[title]

    def expected_hit_ratio(self, probabilities: Sequence[float]) -> float:
        """Analytic hit ratio: the popularity mass of cached titles.

        A request is a cache *hit* exactly when its title has a non-empty
        prefix, so under shares ``p`` the expected hit ratio is
        ``sum(p_i for cached i)`` — the yardstick the regression gate holds
        the measured ratio against.
        """
        if len(probabilities) != len(self.prefixes):
            raise ConfigurationError(
                f"{len(probabilities)} shares for {len(self.prefixes)} titles"
            )
        return float(
            sum(p for p, k in zip(probabilities, self.prefixes) if k > 0)
        )


def allocate_prefixes(
    policy: str,
    probabilities: Sequence[float],
    budget: int,
    n_segments: int,
) -> CacheAllocation:
    """Partition ``budget`` cache segments across the catalog.

    ``probabilities`` are the catalog's request shares, most popular
    first; ``n_segments`` caps every prefix at the video length.

    >>> allocate_prefixes("popularity", [0.6, 0.3, 0.1], 4, 10).prefixes
    (3, 1, 0)
    >>> allocate_prefixes("uniform", [0.6, 0.3, 0.1], 4, 10).prefixes
    (2, 1, 1)
    >>> allocate_prefixes("proportional", [0.6, 0.3, 0.1], 10, 10).prefixes
    (6, 3, 1)
    """
    if policy not in PREFIX_POLICY_NAMES:
        raise ConfigurationError(
            f"unknown prefix policy {policy!r}; "
            f"choose from {list(PREFIX_POLICY_NAMES)}"
        )
    if budget < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")
    if n_segments < 1:
        raise ConfigurationError(f"n_segments must be >= 1, got {n_segments}")
    if not probabilities:
        raise ConfigurationError("need >= 1 title share")
    shares = [float(p) for p in probabilities]
    if any(p < 0 for p in shares):
        raise ConfigurationError("title shares must be >= 0")
    total = sum(shares)
    if total <= 0:
        raise ConfigurationError("title shares must sum to > 0")
    # Normalize: callers may pass un-normalized weights, and the
    # proportional policy's floor(B * p) arithmetic needs true shares.
    shares = [p / total for p in shares]
    n_titles = len(shares)
    capacity = n_titles * n_segments
    budget = min(int(budget), capacity)
    if policy == "popularity":
        prefixes = _waterfill(shares, budget, n_segments)
    elif policy == "uniform":
        prefixes = _round_robin(n_titles, budget, n_segments)
    else:
        prefixes = [min(n_segments, int(budget * p)) for p in shares]
    return CacheAllocation(
        policy=policy,
        budget=budget,
        n_segments=n_segments,
        prefixes=tuple(prefixes),
    )


def _waterfill(shares: List[float], budget: int, n_segments: int) -> List[int]:
    """Greedy by marginal utility ``p_i / (k_i + 1)``, ties to the hotter rank.

    O(budget * titles) — edge budgets are hundreds of segments over tens of
    titles, so the simple scan beats a heap's constant factor and keeps the
    extension property (allocation at ``B+1`` = allocation at ``B`` plus one
    greedy step) obvious.
    """
    counts = [0] * len(shares)
    for _ in range(budget):
        best = -1
        best_gain = -1.0
        for title, p in enumerate(shares):
            if counts[title] >= n_segments:
                continue
            gain = p / (counts[title] + 1)
            if gain > best_gain:
                best, best_gain = title, gain
        if best < 0:
            break
        counts[best] += 1
    return counts


def _round_robin(n_titles: int, budget: int, n_segments: int) -> List[int]:
    """Deal segments one per title in rank order until the budget runs out."""
    base, extra = divmod(budget, n_titles)
    counts = [
        min(n_segments, base + (1 if title < extra else 0))
        for title in range(n_titles)
    ]
    return counts
