"""Edge nodes: one prefix cache + shaper each, and the tier the loop drives.

The cluster slot loop (:func:`repro.cluster.scenario.run_scenario`) knows
the edge tier through two calls only: ``begin_slot(slot)`` at the top of
every slot and ``admit(title, t, slot, slot_end)`` per arrival, returning
an :class:`EdgeDecision` the loop acts on.  Everything hierarchical —
which node an arrival lands on, how caches re-allocate under popularity
drift, how shaping defers a join — stays behind that seam, which is what
keeps a zero-budget hierarchy bit-for-bit identical to the pure cluster:
every decision degenerates to a *miss* and the loop's delivery path is
untouched.

Timing of a prefix hit: the client starts the cached prefix (segments
``1..k``) from its edge after any shaper deferral and plays segment ``m``
during the ``m``-th slot after the start.  Joining the origin broadcast
*at the start slot* with ``first_segment = k + 1`` is always in time: DHB
guarantees segment ``j`` within ``T[j] = j`` slots of the join, and the
client does not need segment ``k+1`` until ``k+1`` slots in.  The
client-visible wait is therefore the deferral alone — zero in the
unshaped case, the "near-zero wait" the hierarchy buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..cluster.routing import PrefixAwareRouter
from ..cluster.topology import EdgeSpec
from ..errors import ConfigurationError
from ..workload.popularity import ZipfCatalog
from .cache import CacheAllocation, allocate_prefixes
from .shaping import PolicyShaper, TrafficClass


@dataclass(frozen=True)
class EdgeDecision:
    """What the edge tier decided about one arrival.

    ``hit = False`` means the arrival falls through to the unmodified
    origin path (cold title, or a shaped-out class).  On a hit the client
    takes ``edge_segments`` from the cache; ``served_fully`` marks a fully
    cached title that never joins the origin, otherwise the client joins
    the origin broadcast at ``join_slot`` needing ``first_segment``
    onwards.  ``wait`` is the client-visible start delay in seconds.
    """

    hit: bool
    served_fully: bool = False
    first_segment: int = 1
    join_slot: int = 0
    wait: float = 0.0
    edge_segments: int = 0
    traffic_class: str = ""


_MISS = EdgeDecision(hit=False)


class EdgeNode:
    """One edge: a prefix cache under an allocation plus a shaped uplink."""

    def __init__(
        self,
        spec: EdgeSpec,
        allocation: CacheAllocation,
        shaper: PolicyShaper,
        slot_duration: float,
    ):
        if allocation.total_segments > spec.cache_segments:
            raise ConfigurationError(
                f"edge {spec.edge_id}: allocation uses "
                f"{allocation.total_segments} segments, budget is "
                f"{spec.cache_segments}"
            )
        if slot_duration <= 0:
            raise ConfigurationError(
                f"slot_duration must be > 0, got {slot_duration}"
            )
        self.spec = spec
        self.allocation = allocation
        self.shaper = shaper
        self.slot_duration = float(slot_duration)
        # Lifetime counters.
        self.hits = 0
        self.misses = 0
        self.bypassed = 0
        self.segments_served = 0
        self.reallocations = 0

    @property
    def edge_id(self) -> int:
        """The node's id (mirrors the spec)."""
        return self.spec.edge_id

    def begin_slot(self) -> None:
        """Per-slot upkeep: refill the shaper's class buckets."""
        self.shaper.begin_slot()

    def reallocate(self, allocation: CacheAllocation) -> None:
        """Swap in a fresh prefix allocation (popularity-drift response)."""
        if allocation.total_segments > self.spec.cache_segments:
            raise ConfigurationError(
                f"edge {self.edge_id}: re-allocation uses "
                f"{allocation.total_segments} segments, budget is "
                f"{self.spec.cache_segments}"
            )
        self.allocation = allocation
        self.reallocations += 1

    def admit(self, title: int, slot: int) -> EdgeDecision:
        """Decide one arrival landing on this node during ``slot``."""
        prefix = self.allocation.prefix_of(title)
        if prefix <= 0:
            self.misses += 1
            return _MISS
        traffic_class: TrafficClass = self.shaper.classify()
        defer = self.shaper.reserve(traffic_class, prefix)
        if defer is None:
            # Shaped out: the class has no uplink, so the client fetches
            # the whole video from the origin like a cold title.
            self.bypassed += 1
            return _MISS
        self.hits += 1
        self.segments_served += prefix
        wait = defer * self.slot_duration
        if prefix >= self.allocation.n_segments:
            return EdgeDecision(
                hit=True,
                served_fully=True,
                wait=wait,
                edge_segments=prefix,
                traffic_class=traffic_class.name,
            )
        return EdgeDecision(
            hit=True,
            first_segment=prefix + 1,
            join_slot=slot + defer,
            wait=wait,
            edge_segments=prefix,
            traffic_class=traffic_class.name,
        )


class EdgeTier:
    """The edge fleet the cluster loop drives, plus dynamic re-allocation.

    Arrivals are dealt round-robin across nodes in arrival order — a
    deterministic stand-in for geographic client↔edge attachment.  When
    ``drift > 0`` the tier resamples the catalog every
    ``reallocate_every`` slots (a geometric random walk on the popularity
    simplex, drawn from its own named RNG stream so the cluster's seeded
    arrival streams are untouched), recomputes every node's allocation,
    and pushes the union prefix map into the prefix-aware router.
    """

    def __init__(
        self,
        nodes: Sequence[EdgeNode],
        policy: str,
        catalog: ZipfCatalog,
        router: Optional[PrefixAwareRouter] = None,
        drift: float = 0.0,
        reallocate_every: int = 0,
        rng: Optional[np.random.Generator] = None,
    ):
        if not nodes:
            raise ConfigurationError("edge tier needs >= 1 node")
        if drift < 0:
            raise ConfigurationError(f"drift must be >= 0, got {drift}")
        if reallocate_every < 0:
            raise ConfigurationError(
                f"reallocate_every must be >= 0, got {reallocate_every}"
            )
        if drift > 0 and reallocate_every == 0:
            raise ConfigurationError(
                "drift > 0 needs reallocate_every >= 1 slot"
            )
        if drift > 0 and rng is None:
            raise ConfigurationError("drift > 0 needs a seeded generator")
        self.nodes = list(nodes)
        self.policy = policy
        self.catalog = catalog
        self.router = router
        self.drift = float(drift)
        self.reallocate_every = int(reallocate_every)
        self._rng = rng
        self._turn = 0
        if router is not None:
            router.set_prefixes(self.prefix_map())

    def prefix_map(self) -> Dict[int, int]:
        """Title → longest cached prefix across the tier (the router's map)."""
        prefixes: Dict[int, int] = {}
        for node in self.nodes:
            for title, k in enumerate(node.allocation.prefixes):
                if k > prefixes.get(title, 0):
                    prefixes[title] = k
        return prefixes

    def begin_slot(self, slot: int) -> None:
        """Slot upkeep: bucket refills, then any scheduled re-allocation."""
        for node in self.nodes:
            node.begin_slot()
        if (
            self.drift > 0
            and slot > 0
            and slot % self.reallocate_every == 0
        ):
            self.catalog = self.catalog.resample(self.drift, self._rng)
            shares = self.catalog.probabilities
            for node in self.nodes:
                node.reallocate(
                    allocate_prefixes(
                        self.policy,
                        shares,
                        node.spec.cache_segments,
                        node.allocation.n_segments,
                    )
                )
            if self.router is not None:
                self.router.set_prefixes(self.prefix_map())

    def admit(self, title: int, t: float, slot: int, slot_end: float) -> EdgeDecision:
        """Deal the arrival to its node and return that node's decision."""
        node = self.nodes[self._turn % len(self.nodes)]
        self._turn += 1
        return node.admit(title, slot)

    # -- aggregate counters ---------------------------------------------------

    @property
    def hits(self) -> int:
        """Prefix-cache hits across the tier."""
        return sum(node.hits for node in self.nodes)

    @property
    def misses(self) -> int:
        """Cold-title misses across the tier."""
        return sum(node.misses for node in self.nodes)

    @property
    def bypassed(self) -> int:
        """Arrivals shaped out to the origin across the tier."""
        return sum(node.bypassed for node in self.nodes)

    @property
    def segments_served(self) -> int:
        """Prefix segments unicast from edge caches across the tier."""
        return sum(node.segments_served for node in self.nodes)

    @property
    def hit_ratio(self) -> float:
        """Fraction of decided arrivals that hit a cached prefix."""
        decided = self.hits + self.misses + self.bypassed
        return self.hits / decided if decided else 0.0

    def class_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-class request / deferral totals across the tier."""
        totals: Dict[str, Dict[str, int]] = {}
        for node in self.nodes:
            shaper = node.shaper
            for cls in shaper.classes:
                entry = totals.setdefault(
                    cls.name,
                    {
                        "requests": 0,
                        "deferrals": 0,
                        "deferral_slots": 0,
                        "bypassed": 0,
                    },
                )
                entry["requests"] += shaper.requests[cls.name]
                entry["deferrals"] += shaper.deferrals[cls.name]
                entry["deferral_slots"] += shaper.deferral_slots[cls.name]
                entry["bypassed"] += shaper.bypassed[cls.name]
        return totals
