"""Origin→edge hierarchy: prefix caching and policy-based traffic shaping.

The paper's DHB protocol answers how an *origin* broadcasts one video to
many viewers; a deployment fronts that origin with *edge* nodes close to
the clients, each holding the first ``k`` segments of the hotter titles.
A client whose title has a cached prefix starts playback from its edge
with near-zero wait and joins the origin broadcast for the *suffix* only
(segments ``k+1 .. n``), which shrinks the origin's saturation bandwidth
for that title from ``H(n)`` to ``H(n) - H(k)`` — the backbone saving
this package measures against the scalable-VoD bounds.

Layout
------
:mod:`~repro.edge.cache`
    Prefix-allocation policies partitioning a fixed cache budget across
    the catalog (popularity-weighted waterfill, uniform, proportional).
:mod:`~repro.edge.shaping`
    Traffic classes and the :class:`~repro.edge.shaping.PolicyShaper`:
    deterministic classification plus per-class token buckets feeding the
    edge uplink.
:mod:`~repro.edge.node`
    :class:`~repro.edge.node.EdgeNode` (one cache + shaper) and
    :class:`~repro.edge.node.EdgeTier` (the fleet the cluster loop talks
    to, including dynamic re-allocation as the catalog drifts).
:mod:`~repro.edge.scenario`
    :class:`~repro.edge.scenario.HierarchyScenario` — one frozen
    origin+edge experiment — and :func:`~repro.edge.scenario.run_hierarchy`.
:mod:`~repro.edge.study`
    The figure-style budget study: backbone bandwidth saved vs pure DHB
    across cache budgets, with the analytic bound overlaid.
"""

from .cache import (
    PREFIX_POLICY_NAMES,
    CacheAllocation,
    allocate_prefixes,
)
from .node import EdgeDecision, EdgeNode, EdgeTier
from .scenario import (
    HierarchyResult,
    HierarchyScenario,
    preset_hierarchy,
    run_hierarchy,
)
from .shaping import (
    DEFAULT_CLASSES,
    PolicyShaper,
    TrafficClass,
    parse_classes,
)
from .study import BudgetPoint, BudgetStudy, run_budget_study

__all__ = [
    "PREFIX_POLICY_NAMES",
    "CacheAllocation",
    "allocate_prefixes",
    "DEFAULT_CLASSES",
    "TrafficClass",
    "PolicyShaper",
    "parse_classes",
    "EdgeDecision",
    "EdgeNode",
    "EdgeTier",
    "HierarchyScenario",
    "HierarchyResult",
    "run_hierarchy",
    "preset_hierarchy",
    "BudgetPoint",
    "BudgetStudy",
    "run_budget_study",
]
