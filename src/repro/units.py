"""Unit helpers and shared constants.

The paper expresses time in seconds (videos last "two hours"), request rates
in arrivals per hour, and bandwidth either in multiples of the video
consumption rate ``b`` (Figures 7 and 8) or in kilobytes / megabytes per
second (Figure 9, compressed video).  These helpers keep the conversions in
one place so that experiment code reads like the paper.
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Seconds in one minute.
MINUTE = 60.0
#: Seconds in one hour.
HOUR = 3600.0
#: Bytes in one kilobyte (the paper uses decimal-free "kilobytes per second";
#: we follow the conventional 1 KB = 1024 B used by the MPEG tooling era).
KILOBYTE = 1024
#: Bytes in one megabyte.
MEGABYTE = 1024 * 1024

#: Duration of the canonical two-hour video used throughout Figures 7 and 8.
TWO_HOURS = 2 * HOUR


def per_hour_to_per_second(rate_per_hour: float) -> float:
    """Convert a request arrival rate from arrivals/hour to arrivals/second.

    >>> per_hour_to_per_second(3600.0)
    1.0
    """
    if rate_per_hour < 0:
        raise ConfigurationError(f"arrival rate must be >= 0, got {rate_per_hour}")
    return rate_per_hour / HOUR


def per_second_to_per_hour(rate_per_second: float) -> float:
    """Convert a request arrival rate from arrivals/second to arrivals/hour."""
    if rate_per_second < 0:
        raise ConfigurationError(f"arrival rate must be >= 0, got {rate_per_second}")
    return rate_per_second * HOUR


def hours(value: float) -> float:
    """Express ``value`` hours in seconds."""
    return value * HOUR


def minutes(value: float) -> float:
    """Express ``value`` minutes in seconds."""
    return value * MINUTE


def kb_per_s(value: float) -> float:
    """Express ``value`` kilobytes/second in bytes/second."""
    return value * KILOBYTE


def bytes_to_kb(value: float) -> float:
    """Express ``value`` bytes in kilobytes."""
    return value / KILOBYTE


def bytes_to_mb(value: float) -> float:
    """Express ``value`` bytes in megabytes."""
    return value / MEGABYTE
