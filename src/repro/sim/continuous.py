"""Continuous-time simulation driver for the reactive protocols.

Stream tapping, patching, and batching create server streams at arbitrary
instants; each stream occupies one channel of the video consumption rate for
its duration.  A reactive protocol therefore reduces, for measurement
purposes, to the set of busy intervals it generates.  The driver feeds
arrivals to the protocol, collects the intervals, and measures mean and peak
concurrency inside a post-warmup window.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .recorder import TimeWeightedRecorder
from .sketches import P2Quantile

if TYPE_CHECKING:
    from ..obs.registry import MetricsRegistry

#: A server stream: (start_time, end_time) in seconds.
BusyInterval = Tuple[float, float]


class ReactiveModel(abc.ABC):
    """Interface the continuous-time driver requires of a reactive protocol.

    Observability mirrors :class:`~repro.sim.slotted.SlottedModel`: the
    driver binds a registry via :meth:`bind_metrics`, and protocols may
    emit admission/stream counters through :meth:`emit_metric`.
    """

    #: Bound metrics registry, or ``None`` (observability off).
    metrics: Optional["MetricsRegistry"] = None

    def bind_metrics(self, registry: Optional["MetricsRegistry"]) -> None:
        """Attach (or detach, with ``None``) a metrics registry."""
        self.metrics = registry

    def emit_metric(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` on the bound registry, if any."""
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    @abc.abstractmethod
    def handle_request(self, time: float) -> List[BusyInterval]:
        """Admit a request arriving at ``time``.

        Returns the list of *new* server streams this request causes, as busy
        intervals.  Data the client taps from pre-existing streams costs the
        server nothing and must not be returned.
        """

    def startup_delay(self, time: float) -> float:
        """Seconds the client arriving at ``time`` waits before playout.

        Reactive protocols in the paper (stream tapping, patching) give
        zero-delay access, which is the default.
        """
        return 0.0

    def finish(self, horizon: float) -> List[BusyInterval]:
        """Busy intervals to flush at the end of the run.

        Protocols with standing broadcasts (e.g. selective catching's
        staggered channels) emit cycles lazily; the driver calls this once
        after the last arrival so cycles that no request triggered still
        count.  The default has nothing to flush.
        """
        return []


@dataclass
class ReactiveResult:
    """Outcome of one continuous-time simulation run.

    Bandwidths are in units of the video consumption rate ``b``, i.e. the
    number of concurrently busy server channels, matching Figure 7's y-axis.
    """

    window_length: float
    mean_streams: float
    max_streams: int
    n_requests: int
    mean_wait: float
    max_wait: float
    #: Streamed p99 startup delay (P² estimate; 0.0 when nothing measured).
    wait_p99: float = 0.0


class ContinuousSimulation:
    """Drives a :class:`ReactiveModel` over a request trace.

    Parameters
    ----------
    protocol:
        The reactive protocol under test.
    horizon:
        Total simulated time in seconds (including warmup).
    warmup:
        Initial seconds excluded from the measurement window.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; the driver
        counts requests and server streams, times the run, and binds the
        registry to the protocol.
    """

    def __init__(
        self,
        protocol: ReactiveModel,
        horizon: float,
        warmup: float = 0.0,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        if horizon <= warmup:
            raise ConfigurationError(
                f"horizon ({horizon}) must exceed warmup ({warmup})"
            )
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        self.protocol = protocol
        self.horizon = float(horizon)
        self.warmup = float(warmup)
        self.metrics = metrics

    def run(self, arrival_times: Sequence[float]) -> ReactiveResult:
        """Simulate over sorted ``arrival_times`` and measure concurrency."""
        metrics = self.metrics
        recorder = TimeWeightedRecorder(self.warmup, self.horizon)
        # Startup delays stream in bounded memory: a running sum/max (the
        # same left-to-right fold the list-based reduction performed) plus a
        # P2 sketch for the tail (delays are unbounded, so the fixed-range
        # binned sketch of the slotted driver does not apply here).
        wait_sum = 0.0
        wait_max = 0.0
        wait_sketch = P2Quantile(0.99)
        n_measured = 0
        n_requests = 0
        n_streams = 0
        if metrics is not None:
            self.protocol.bind_metrics(metrics)
            run_span = metrics.timer("sim.run_seconds").time()
            run_span.__enter__()
        for t in arrival_times:
            if t >= self.horizon:
                break
            n_requests += 1
            for start, end in self.protocol.handle_request(t):
                recorder.add_interval(start, end)
                n_streams += 1
            if t >= self.warmup:
                n_measured += 1
                wait = self.protocol.startup_delay(t)
                wait_sum += wait
                if wait > wait_max:
                    wait_max = wait
                wait_sketch.add(wait)
        for start, end in self.protocol.finish(self.horizon):
            recorder.add_interval(start, end)
            n_streams += 1
        if metrics is not None:
            run_span.__exit__(None, None, None)
            metrics.counter("sim.requests").inc(n_requests)
            metrics.counter("sim.streams_started").inc(n_streams)
            metrics.gauge("sim.horizon_seconds").set(self.horizon)
        return ReactiveResult(
            window_length=recorder.window_length,
            mean_streams=recorder.mean_concurrency(),
            max_streams=recorder.max_concurrency(),
            n_requests=n_measured,
            mean_wait=wait_sum / n_measured if n_measured else 0.0,
            max_wait=wait_max,
            wait_p99=wait_sketch.value if n_measured else 0.0,
        )
