"""A minimal, deterministic discrete-event engine.

The reactive protocols (stream tapping, patching, batching, selective
catching) are continuous-time systems: streams start and end at arbitrary
instants.  :class:`EventEngine` provides the classic heap-based kernel for
them.  The slotted protocols use :mod:`repro.sim.slotted` instead, which is
simpler and faster for slot-synchronous work.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from ..errors import SimulationError
from .events import Event

if TYPE_CHECKING:
    from ..obs.registry import MetricsRegistry


class EventEngine:
    """Heap-ordered discrete-event executor.

    Events scheduled for the same instant fire in scheduling order.  The
    engine never moves time backwards; scheduling an event in the past raises
    :class:`~repro.errors.SimulationError`.

    Examples
    --------
    >>> engine = EventEngine()
    >>> fired = []
    >>> _ = engine.schedule(2.0, lambda: fired.append("b"))
    >>> _ = engine.schedule(1.0, lambda: fired.append("a"))
    >>> engine.run_until(10.0)
    >>> fired
    ['a', 'b']
    >>> engine.now
    10.0
    """

    def __init__(self, start_time: float = 0.0, metrics: Optional["MetricsRegistry"] = None):
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._fired = 0
        self._scheduled = 0
        #: Optional metrics registry; event/schedule totals are published to
        #: it as gauges by :meth:`publish_metrics` (called automatically at
        #: the end of :meth:`run_until` / :meth:`run_to_exhaustion`, so the
        #: per-event hot path stays metric-free).
        self.metrics = metrics

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    def schedule(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` to fire at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={time} before now={self._now}"
            )
        event = Event(time, action, label)
        heapq.heappush(self._heap, event)
        self._scheduled += 1
        return event

    def schedule_in(self, delay: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event {label!r} with delay {delay} < 0")
        return self.schedule(self._now + delay, action, label)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next live event.  Returns ``False`` if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._fired += 1
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Fire all events with ``time <= horizon`` and advance now to it.

        Events scheduled during execution are honoured as long as they land
        within the horizon.
        """
        if horizon < self._now:
            raise SimulationError(f"horizon {horizon} is before now={self._now}")
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > horizon:
                break
            self.step()
        self._now = horizon
        self.publish_metrics()

    def run_to_exhaustion(self, max_events: int = 10_000_000) -> None:
        """Fire events until the queue drains (bounded by ``max_events``)."""
        for _ in range(max_events):
            if not self.step():
                self.publish_metrics()
                return
        raise SimulationError(f"engine did not drain within {max_events} events")

    def publish_metrics(self) -> None:
        """Publish event totals to the bound registry (no-op without one).

        Gauges rather than counters so repeated ``run_until`` calls on one
        engine are idempotent: the registry always holds the lifetime
        totals, not a sum of partial publishes.
        """
        if self.metrics is None:
            return
        self.metrics.gauge("engine.events_fired").set(self._fired)
        self.metrics.gauge("engine.events_scheduled").set(self._scheduled)
        self.metrics.gauge("engine.now").set(self._now)
