"""Fixed-size quantile sketches for streaming simulation output.

Long-horizon runs (10M+ requests) cannot afford to keep every waiting time
in a Python list just to report tail statistics at the end.  Two bounded
sketches live here:

* :class:`BinnedQuantileSketch` — a fixed-size counting histogram over a
  *known* value range.  Counts are exact, so any batching of updates (one
  value at a time, or whole numpy arrays per slot) produces the **same**
  sketch state and therefore the same quantile estimates.  This is the
  sketch on the slotted hot path: waiting times are bounded by the slot
  duration ``d``, and the columnar driver must report bit-for-bit the same
  numbers as the scalar driver.
* :class:`P2Quantile` — the classic Jain & Chlamtac (1985) piecewise-
  parabolic estimator of a single quantile in O(1) memory with *no* prior
  range knowledge.  Its estimate depends on arrival order, which makes it
  unsuitable for the batched==scalar equivalence contract of the slotted
  core, but exactly right for the continuous-time driver whose waiting
  times are unbounded.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..errors import SimulationError

#: Default bin count: resolution of ``upper / 2048`` per estimate (a few
#: milliseconds of waiting time at figure-7 slot durations).
DEFAULT_BINS = 2048


class BinnedQuantileSketch:
    """Exact counting histogram over ``[0, upper]`` with quantile queries.

    Values below 0 clamp to the first bin and values at or above ``upper``
    clamp to the last, so the sketch never loses an observation; quantile
    estimates are conservative (each reports its bin's upper edge, at most
    ``upper / n_bins`` above the true order statistic).

    Because the state is a pure count vector, scalar :meth:`add` calls and
    batched :meth:`add_array` calls commute: any interleaving over the same
    multiset of observations yields identical state.  The slotted
    simulation's columnar and scalar paths rely on exactly that property.

    >>> sketch = BinnedQuantileSketch(upper=10.0, n_bins=10)
    >>> for value in [1.0, 2.0, 3.0, 9.0]:
    ...     sketch.add(value)
    >>> sketch.count
    4
    >>> sketch.quantile(1.0)
    10.0
    """

    __slots__ = ("upper", "n_bins", "_scale", "_counts", "_count")

    def __init__(self, upper: float, n_bins: int = DEFAULT_BINS):
        if upper <= 0:
            raise SimulationError(f"sketch upper bound must be > 0, got {upper}")
        if n_bins < 1:
            raise SimulationError(f"sketch needs >= 1 bin, got {n_bins}")
        self.upper = float(upper)
        self.n_bins = int(n_bins)
        self._scale = self.n_bins / self.upper
        self._counts = np.zeros(self.n_bins, dtype=np.int64)
        self._count = 0

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._count

    def add(self, value: float) -> None:
        """Record one observation (clamped into the sketch range)."""
        index = int(value * self._scale)
        if index < 0:
            index = 0
        elif index >= self.n_bins:
            index = self.n_bins - 1
        self._counts[index] += 1
        self._count += 1

    def add_array(self, values: np.ndarray) -> None:
        """Record a whole array of observations in one vectorised pass.

        Exactly equivalent to calling :meth:`add` on each element: the bin
        index uses the same truncation (``int()`` and ``astype`` both
        truncate toward zero) and the same clamping.
        """
        if values.size == 0:
            return
        indices = (values * self._scale).astype(np.int64)
        np.clip(indices, 0, self.n_bins - 1, out=indices)
        self._counts += np.bincount(indices, minlength=self.n_bins)
        self._count += int(values.size)

    def quantile(self, q: float) -> float:
        """Upper edge of the bin holding the ``q``-quantile (0.0 when empty).

        Deterministic in the count vector alone, so two sketches fed the
        same observations in any order and batching agree bit-for-bit.
        """
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = max(q * self._count, 1.0)
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, target, side="left"))
        return min((index + 1) / self._scale, self.upper)

    def merge(self, other: "BinnedQuantileSketch") -> None:
        """Fold ``other`` into this sketch (bins must line up exactly)."""
        if other.upper != self.upper or other.n_bins != self.n_bins:
            raise SimulationError(
                f"cannot merge sketch over [0, {other.upper}]x{other.n_bins} "
                f"into [0, {self.upper}]x{self.n_bins}"
            )
        self._counts += other._counts
        self._count += other._count

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (sparse: only occupied bins are listed)."""
        occupied = np.nonzero(self._counts)[0]
        return {
            "upper": self.upper,
            "n_bins": self.n_bins,
            "bins": {int(i): int(self._counts[i]) for i in occupied},
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "BinnedQuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sketch = cls(float(state["upper"]), int(state["n_bins"]))
        for index, count in state["bins"].items():
            sketch._counts[int(index)] = int(count)
        sketch._count = int(sketch._counts.sum())
        return sketch


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Keeps five markers whose heights approximate the quantile curve and
    nudges them with a piecewise-parabolic update on every observation —
    O(1) memory regardless of stream length, no prior range knowledge.
    The estimate is order-dependent (it is an approximation, not a count),
    so use :class:`BinnedQuantileSketch` when batched and scalar feeding
    must agree exactly.

    >>> sketch = P2Quantile(0.5)
    >>> for value in range(1, 100):
    ...     sketch.add(float(value))
    >>> 45.0 < sketch.value < 55.0
    True
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_rates", "count")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise SimulationError(f"quantile must be in (0, 1), got {p}")
        self.p = float(p)
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._rates = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.count = 0

    def add(self, value: float) -> None:
        """Incorporate one observation."""
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(float(value))
            heights.sort()
            return
        positions = self._positions
        # Locate the cell of the new observation and bump the endpoints.
        if value < heights[0]:
            heights[0] = float(value)
            cell = 0
        elif value >= heights[4]:
            if value > heights[4]:
                heights[4] = float(value)
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for marker in range(cell + 1, 5):
            positions[marker] += 1.0
        desired = self._desired
        for marker in range(5):
            desired[marker] += self._rates[marker]
        # Nudge the three interior markers toward their desired positions.
        for marker in (1, 2, 3):
            delta = desired[marker] - positions[marker]
            if (delta >= 1.0 and positions[marker + 1] - positions[marker] > 1.0) or (
                delta <= -1.0 and positions[marker - 1] - positions[marker] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(marker, step)
                if heights[marker - 1] < candidate < heights[marker + 1]:
                    heights[marker] = candidate
                else:
                    heights[marker] = self._linear(marker, step)
                positions[marker] += step

    def _parabolic(self, marker: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        below = positions[marker] - positions[marker - 1]
        above = positions[marker + 1] - positions[marker]
        span = positions[marker + 1] - positions[marker - 1]
        return heights[marker] + (step / span) * (
            (below + step) * (heights[marker + 1] - heights[marker]) / above
            + (above - step) * (heights[marker] - heights[marker - 1]) / below
        )

    def _linear(self, marker: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        neighbour = marker + int(step)
        return heights[marker] + step * (heights[neighbour] - heights[marker]) / (
            positions[neighbour] - positions[marker]
        )

    @property
    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        if not self._heights:
            return 0.0
        if len(self._heights) < 5 or self.count < 5:
            interim = sorted(self._heights)
            rank = min(
                len(interim) - 1, max(0, math.ceil(self.p * len(interim)) - 1)
            )
            return interim[rank]
        return self._heights[2]
