"""Measurement recorders.

* :class:`SlotLoadRecorder` — collects per-slot integer stream counts for the
  slotted protocols, honouring a warmup window that is excluded from the
  reported statistics (classic steady-state methodology).
* :class:`TimeWeightedRecorder` — collects ``(start, end)`` busy intervals
  from the continuous-time protocols and reduces them, via an endpoint sweep,
  to the time-weighted mean and maximum concurrency inside a measurement
  window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .stats import OnlineStats

if TYPE_CHECKING:
    from ..obs.registry import MetricsRegistry


class SlotLoadRecorder:
    """Accumulates the per-slot number of transmitted segment instances.

    Parameters
    ----------
    warmup_slots:
        Loads recorded for slots below this index are discarded (transient).
    keep_series:
        When true, the post-warmup loads are kept as a list (used by tests
        and by benches that print full series); otherwise only the online
        summary is retained, keeping memory flat for very long runs.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  The
        recorder always summarises into its own private
        :class:`~repro.sim.stats.OnlineStats` — the registry's ``metric``
        histogram is cumulative across every run that shares the registry,
        so aliasing it would corrupt the per-run statistics — and
        :meth:`finish` folds that summary into the histogram once the run
        is over.
    metric:
        Histogram name used with ``registry``.
    """

    def __init__(
        self,
        warmup_slots: int = 0,
        keep_series: bool = False,
        registry: Optional["MetricsRegistry"] = None,
        metric: str = "sim.slot_load",
    ):
        if warmup_slots < 0:
            raise SimulationError(f"warmup_slots must be >= 0, got {warmup_slots}")
        self.warmup_slots = warmup_slots
        self.keep_series = keep_series
        self.series: List[int] = []
        self._stats = OnlineStats()
        if registry is not None and registry.enabled:
            self._registry_stats = registry.histogram(metric).stats
        else:
            self._registry_stats = None

    def record(self, slot: int, load: int) -> None:
        """Record that ``load`` segment instances were transmitted in ``slot``."""
        if load < 0:
            raise SimulationError(f"negative load {load} in slot {slot}")
        if slot < self.warmup_slots:
            return
        self._stats.add(float(load))
        if self.keep_series:
            self.series.append(load)

    def finish(self) -> None:
        """Fold this run's summary into the registry histogram (idempotent)."""
        if self._registry_stats is not None:
            self._registry_stats.merge(self._stats)
            self._registry_stats = None

    @property
    def slots_measured(self) -> int:
        """Number of post-warmup slots recorded."""
        return self._stats.count

    @property
    def mean_load(self) -> float:
        """Average number of concurrent streams over the measured slots."""
        return self._stats.mean

    @property
    def max_load(self) -> float:
        """Peak number of concurrent streams over the measured slots."""
        return self._stats.maximum if self._stats.count else 0.0


class TimeWeightedRecorder:
    """Reduces busy intervals to mean/max concurrency within a window.

    Streams in the reactive protocols are intervals ``[start, end)`` during
    which one server channel of video-consumption-rate bandwidth is busy.
    The recorder clips every interval to the measurement window
    ``[window_start, window_end)`` and computes:

    * ``mean_concurrency`` — total clipped busy time divided by window length,
    * ``max_concurrency`` — peak simultaneous intervals, via endpoint sweep.

    >>> rec = TimeWeightedRecorder(0.0, 10.0)
    >>> rec.add_interval(0.0, 5.0)
    >>> rec.add_interval(2.0, 8.0)
    >>> rec.mean_concurrency()
    1.1
    >>> rec.max_concurrency()
    2
    """

    def __init__(self, window_start: float, window_end: float):
        if window_end <= window_start:
            raise SimulationError(
                f"empty measurement window [{window_start}, {window_end})"
            )
        self.window_start = float(window_start)
        self.window_end = float(window_end)
        self._intervals: List[Tuple[float, float]] = []

    def add_interval(self, start: float, end: float) -> None:
        """Record one busy interval ``[start, end)`` (clipped to the window)."""
        if end < start:
            raise SimulationError(f"interval ends before it starts: [{start}, {end})")
        clipped_start = max(start, self.window_start)
        clipped_end = min(end, self.window_end)
        if clipped_end > clipped_start:
            self._intervals.append((clipped_start, clipped_end))

    def add_intervals(self, intervals: Sequence[Tuple[float, float]]) -> None:
        """Record a batch of busy intervals."""
        for start, end in intervals:
            self.add_interval(start, end)

    @property
    def window_length(self) -> float:
        """Length of the measurement window in seconds."""
        return self.window_end - self.window_start

    def total_busy_time(self) -> float:
        """Sum of clipped interval lengths (channel-seconds of bandwidth)."""
        return sum(end - start for start, end in self._intervals)

    def mean_concurrency(self) -> float:
        """Time-weighted average number of simultaneously busy channels."""
        return self.total_busy_time() / self.window_length

    def max_concurrency(self) -> int:
        """Peak number of simultaneously busy channels (endpoint sweep)."""
        if not self._intervals:
            return 0
        # +1 at starts, -1 at ends; ends sort before starts at equal times so
        # that back-to-back intervals do not double count.
        points: List[Tuple[float, int]] = []
        for start, end in self._intervals:
            points.append((start, 1))
            points.append((end, -1))
        points.sort(key=lambda p: (p[0], p[1]))
        level = 0
        peak = 0
        for _, delta in points:
            level += delta
            peak = max(peak, level)
        return peak
