"""Event objects for the discrete-event engine.

An :class:`Event` couples a firing time with a callback.  Events are totally
ordered by ``(time, sequence number)`` so that simultaneous events fire in
the order they were scheduled (deterministic tie-breaking — essential for
reproducible runs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

_SEQUENCE = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled occurrence in simulated time.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the event fires.
    seq:
        Monotonic tie-breaker assigned at construction; never set manually.
    action:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag, useful in engine traces.
    cancelled:
        Cooperative-cancellation flag; a cancelled event is skipped by the
        engine without invoking its action.
    """

    time: float
    seq: int = field(compare=True)
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def __init__(
        self,
        time: float,
        action: Callable[[], Any],
        label: str = "",
        seq: Optional[int] = None,
    ):
        self.time = float(time)
        self.seq = next(_SEQUENCE) if seq is None else seq
        self.action = action
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine drops it instead of firing it."""
        self.cancelled = True
