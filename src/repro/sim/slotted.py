"""Slot-synchronous simulation driver.

Every slotted protocol in this reproduction (DHB, UD, dynamic NPB, and the
fixed broadcasting schedules FB/NPB/SB) advances in slots of duration ``d``:
requests arriving *during* slot ``i`` are granted a transmission schedule
that starts at the beginning of slot ``i + 1`` — which is why ``d`` is also
the maximum customer waiting time.

:class:`SlottedSimulation` feeds arrival times to a protocol slot by slot and
measures per-slot bandwidth.  A slot's load is final once every request from
earlier slots has been processed (no protocol may schedule into the current
or a past slot), so the driver records slot ``s`` just before delivering the
arrivals of slot ``s``.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..errors import ConfigurationError, SimulationError
from .recorder import SlotLoadRecorder
from .stats import OnlineStats

if TYPE_CHECKING:  # imported lazily to keep the sim layer import-light
    from ..obs.registry import MetricsRegistry
    from ..obs.trace import TraceSink


class SlottedModel(abc.ABC):
    """Interface the slotted driver requires of a protocol.

    Implementations live in :mod:`repro.core` (DHB) and
    :mod:`repro.protocols` (FB, NPB, SB, UD, dynamic NPB).

    Observability: protocols may emit admission/stream metrics through the
    shared hook — :meth:`bind_metrics` stores a registry on the instance,
    and :meth:`emit_metric` increments a counter when one is bound (and
    costs one attribute read otherwise).  The driver additionally asks
    :meth:`slot_instances` for the segment numbers behind a slot's load
    when a trace sink is attached.
    """

    #: Bound metrics registry, or ``None`` (class default: observability off).
    metrics: Optional["MetricsRegistry"] = None

    def bind_metrics(self, registry: Optional["MetricsRegistry"]) -> None:
        """Attach (or detach, with ``None``) a metrics registry."""
        self.metrics = registry

    def emit_metric(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` on the bound registry, if any."""
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    @abc.abstractmethod
    def handle_request(self, slot: int) -> None:
        """Admit a request that arrived during ``slot``.

        The protocol must arrange for every segment to reach this client on
        time, scheduling transmissions into slots ``>= slot + 1`` only.
        """

    @abc.abstractmethod
    def slot_load(self, slot: int) -> int:
        """Number of segment instances transmitted during ``slot``.

        Each instance occupies one data stream of the video consumption rate
        for the whole slot, so this *is* the instantaneous server bandwidth
        in units of ``b``.
        """

    def release_before(self, slot: int) -> None:
        """Allow the protocol to drop bookkeeping for slots ``< slot``.

        Optional; the default keeps everything (fine for short runs).
        """

    def slot_weight(self, slot: int) -> float:
        """Weighted load of ``slot``; defaults to the instance count.

        Protocols carrying per-segment byte sizes (the compressed-video DHB
        variants) override this so the driver can account *transmitted
        bytes* per slot alongside occupied streams.
        """
        return float(self.slot_load(slot))

    def slot_instances(self, slot: int) -> List[int]:
        """Segment numbers scheduled in ``slot`` (for per-slot traces).

        Optional; protocols that keep a full schedule override this.  The
        default (no per-instance bookkeeping) reports an empty list, which
        trace consumers must treat as "unknown", not "idle".
        """
        return []


@dataclass
class SlottedResult:
    """Outcome of one slotted simulation run.

    Bandwidths are in units of the video consumption rate ``b`` (i.e. data
    streams), exactly as in Figures 7 and 8 of the paper.
    """

    slot_duration: float
    slots_measured: int
    mean_streams: float
    max_streams: float
    n_requests: int
    mean_wait: float
    max_wait: float
    mean_weight: float = 0.0
    max_weight: float = 0.0
    series: List[int] = field(default_factory=list)

    def scaled_mean(self, stream_bandwidth: float) -> float:
        """Mean server bandwidth when each stream carries ``stream_bandwidth``.

        Used by the compressed-video experiment (Figure 9), where bandwidth
        is reported in bytes/second rather than stream counts.
        """
        return self.mean_streams * stream_bandwidth

    def scaled_max(self, stream_bandwidth: float) -> float:
        """Peak server bandwidth when each stream carries ``stream_bandwidth``."""
        return self.max_streams * stream_bandwidth


class SlottedSimulation:
    """Drives a :class:`SlottedModel` over a request trace.

    Parameters
    ----------
    protocol:
        The slotted protocol under test.
    slot_duration:
        Slot length ``d`` in seconds.
    horizon_slots:
        Total number of slots to simulate (including warmup).
    warmup_slots:
        Initial slots excluded from bandwidth statistics.
    keep_series:
        Keep the per-slot load series on the result (memory grows linearly).
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  The driver
        feeds the post-warmup load summary into the ``sim.slot_load``
        histogram, counts slots/requests, times the run, and binds the
        registry to the protocol so admissions emit their own metrics.
        ``None`` (the default) keeps the hot loop free of metric calls.
    trace:
        Optional :class:`~repro.obs.trace.TraceSink` receiving one record
        per simulated slot (see :mod:`repro.obs.trace` for the schema).
    trace_context:
        Extra fields (protocol label, rate, ...) copied into every trace
        record.
    """

    def __init__(
        self,
        protocol: SlottedModel,
        slot_duration: float,
        horizon_slots: int,
        warmup_slots: int = 0,
        keep_series: bool = False,
        metrics: Optional["MetricsRegistry"] = None,
        trace: Optional["TraceSink"] = None,
        trace_context: Optional[Dict] = None,
    ):
        if slot_duration <= 0:
            raise ConfigurationError(f"slot_duration must be > 0, got {slot_duration}")
        if horizon_slots <= warmup_slots:
            raise ConfigurationError(
                f"horizon_slots ({horizon_slots}) must exceed warmup_slots "
                f"({warmup_slots})"
            )
        self.protocol = protocol
        self.slot_duration = float(slot_duration)
        self.horizon_slots = int(horizon_slots)
        self.warmup_slots = int(warmup_slots)
        self.keep_series = keep_series
        self.metrics = metrics
        self.trace = trace
        self.trace_context = dict(trace_context or {})

    def run(self, arrival_times: Sequence[float]) -> SlottedResult:
        """Simulate the protocol over ``arrival_times`` (seconds, sorted).

        Arrivals beyond the horizon are ignored.  Returns the measured
        bandwidth and waiting-time statistics.  Accepts any sorted,
        indexable sequence — typically the runner's (read-only, shared)
        numpy trace — and never copies it.
        """
        d = self.slot_duration
        metrics = self.metrics
        trace = self.trace
        recorder = SlotLoadRecorder(
            self.warmup_slots, keep_series=self.keep_series, registry=metrics
        )
        weight_stats = OnlineStats()
        waits: List[float] = []
        previous = -math.inf
        arrival_index = 0
        ignored = 0
        arrivals = arrival_times
        n_arrivals = len(arrivals)
        if metrics is not None:
            self.protocol.bind_metrics(metrics)
            run_span = metrics.timer("sim.run_seconds").time()
            run_span.__enter__()

        for slot in range(self.horizon_slots):
            # All requests from slots < slot have been processed, so the load
            # of `slot` is final: no future request may touch it (protocols
            # only schedule into slots >= slot + 1).
            recorder.record(slot, self.protocol.slot_load(slot))
            if slot >= self.warmup_slots:
                weight_stats.add(self.protocol.slot_weight(slot))

            slot_end = (slot + 1) * d
            first_index = arrival_index
            first_ignored = ignored
            while arrival_index < n_arrivals and arrivals[arrival_index] < slot_end:
                t = arrivals[arrival_index]
                if t < previous:
                    raise SimulationError("arrival times must be sorted")
                previous = t
                if t >= slot * d:  # ignore arrivals before the simulated epoch
                    self.protocol.handle_request(slot)
                    if slot >= self.warmup_slots:
                        # Service begins at the next slot boundary.
                        waits.append(slot_end - t)
                else:
                    ignored += 1
                arrival_index += 1

            if trace is not None:
                record = dict(self.trace_context)
                record.update(
                    kind="slot",
                    slot=slot,
                    streams=self.protocol.slot_load(slot),
                    weight=self.protocol.slot_weight(slot),
                    instances=self.protocol.slot_instances(slot),
                    arrivals=arrival_index - first_index - (ignored - first_ignored),
                    measured=slot >= self.warmup_slots,
                )
                trace.emit(record)
            # Released only now so the trace could still read the slot; the
            # numbers are unchanged (releases only drop slots < slot).
            self.protocol.release_before(slot)

        recorder.finish()
        measured_requests = len(waits)
        if metrics is not None:
            run_span.__exit__(None, None, None)
            metrics.counter("sim.slots").inc(self.horizon_slots)
            metrics.counter("sim.requests").inc(arrival_index - ignored)
            metrics.counter("sim.arrivals_ignored").inc(ignored)
            metrics.gauge("sim.warmup_slots").set(self.warmup_slots)
        return SlottedResult(
            slot_duration=d,
            slots_measured=recorder.slots_measured,
            mean_streams=recorder.mean_load,
            max_streams=recorder.max_load,
            n_requests=measured_requests,
            mean_wait=sum(waits) / measured_requests if measured_requests else 0.0,
            max_wait=max(waits) if waits else 0.0,
            mean_weight=weight_stats.mean,
            max_weight=weight_stats.maximum if weight_stats.count else 0.0,
            series=recorder.series,
        )
