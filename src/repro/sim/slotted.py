"""Slot-synchronous simulation driver.

Every slotted protocol in this reproduction (DHB, UD, dynamic NPB, and the
fixed broadcasting schedules FB/NPB/SB) advances in slots of duration ``d``:
requests arriving *during* slot ``i`` are granted a transmission schedule
that starts at the beginning of slot ``i + 1`` — which is why ``d`` is also
the maximum customer waiting time.

:class:`SlottedSimulation` feeds arrival times to a protocol slot by slot and
measures per-slot bandwidth.  A slot's load is final once every request from
earlier slots has been processed (no protocol may schedule into the current
or a past slot), so the driver records slot ``s`` just before delivering the
arrivals of slot ``s``.

Two execution paths produce bit-for-bit identical results:

* the **scalar path** delivers arrivals one at a time through
  :meth:`SlottedModel.handle_request` and is taken whenever a per-slot trace
  sink is attached (traces need the exact per-request cadence), when the
  arrivals are a generic Python sequence, or when ``columnar=False``;
* the **columnar path** pre-buckets the whole (numpy) arrival trace into
  slots with one ``np.searchsorted`` against the slot boundaries and hands
  each slot's batch to :meth:`SlottedModel.handle_batch` — one protocol call
  per *occupied slot* instead of one per request, which is what makes
  10M-request horizons tractable.

Waiting-time statistics stream in bounded memory on both paths: a running
sum/max (bit-identical to the list-based fold they replaced) plus a
fixed-size :class:`~repro.sim.sketches.BinnedQuantileSketch` over ``[0, d]``
for the tail (p50/p99).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, SimulationError
from .recorder import SlotLoadRecorder
from .sketches import BinnedQuantileSketch
from .stats import OnlineStats

if TYPE_CHECKING:  # imported lazily to keep the sim layer import-light
    from ..obs.registry import MetricsRegistry
    from ..obs.trace import TraceSink


class SlottedModel(abc.ABC):
    """Interface the slotted driver requires of a protocol.

    Implementations live in :mod:`repro.core` (DHB) and
    :mod:`repro.protocols` (FB, NPB, SB, UD, dynamic NPB).

    Observability: protocols may emit admission/stream metrics through the
    shared hook — :meth:`bind_metrics` stores a registry on the instance,
    and :meth:`emit_metric` increments a counter when one is bound (and
    costs one attribute read otherwise).  The driver additionally asks
    :meth:`slot_instances` for the segment numbers behind a slot's load
    when a trace sink is attached.
    """

    #: Bound metrics registry, or ``None`` (class default: observability off).
    metrics: Optional["MetricsRegistry"] = None

    def bind_metrics(self, registry: Optional["MetricsRegistry"]) -> None:
        """Attach (or detach, with ``None``) a metrics registry."""
        self.metrics = registry

    def emit_metric(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` on the bound registry, if any."""
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    @abc.abstractmethod
    def handle_request(self, slot: int) -> None:
        """Admit a request that arrived during ``slot``.

        The protocol must arrange for every segment to reach this client on
        time, scheduling transmissions into slots ``>= slot + 1`` only.
        """

    def handle_batch(self, slot: int, count: int) -> None:
        """Admit ``count`` requests that all arrived during ``slot``.

        The default loops over :meth:`handle_request`, so every existing
        protocol keeps working under the columnar driver.  Protocols whose
        same-slot admissions are idempotent (DHB with sharing, the
        on-demand map protocols, the fixed schedules) override this with a
        true batched implementation: one admission pass plus O(1)
        bookkeeping for the remaining ``count - 1`` requests, observably
        identical to the loop.
        """
        for _ in range(count):
            self.handle_request(slot)

    @abc.abstractmethod
    def slot_load(self, slot: int) -> int:
        """Number of segment instances transmitted during ``slot``.

        Each instance occupies one data stream of the video consumption rate
        for the whole slot, so this *is* the instantaneous server bandwidth
        in units of ``b``.
        """

    def release_before(self, slot: int) -> None:
        """Allow the protocol to drop bookkeeping for slots ``< slot``.

        Optional; the default keeps everything (fine for short runs).
        """

    def slot_weight(self, slot: int) -> float:
        """Weighted load of ``slot``; defaults to the instance count.

        Protocols carrying per-segment byte sizes (the compressed-video DHB
        variants) override this so the driver can account *transmitted
        bytes* per slot alongside occupied streams.
        """
        return float(self.slot_load(slot))

    def slot_instances(self, slot: int) -> List[int]:
        """Segment numbers scheduled in ``slot`` (for per-slot traces).

        Optional; protocols that keep a full schedule override this.  The
        default (no per-instance bookkeeping) reports an empty list, which
        trace consumers must treat as "unknown", not "idle".
        """
        return []


@dataclass
class SlottedResult:
    """Outcome of one slotted simulation run.

    Bandwidths are in units of the video consumption rate ``b`` (i.e. data
    streams), exactly as in Figures 7 and 8 of the paper.
    """

    slot_duration: float
    slots_measured: int
    mean_streams: float
    max_streams: float
    n_requests: int
    mean_wait: float
    max_wait: float
    mean_weight: float = 0.0
    max_weight: float = 0.0
    series: List[int] = field(default_factory=list)
    #: Streamed waiting-time quantiles (bin-upper-edge estimates over
    #: ``[0, d]``; 0.0 when no post-warmup request was measured).
    wait_p50: float = 0.0
    wait_p99: float = 0.0
    #: Which driver path produced this result (columnar = batched slots).
    columnar: bool = False

    def scaled_mean(self, stream_bandwidth: float) -> float:
        """Mean server bandwidth when each stream carries ``stream_bandwidth``.

        Used by the compressed-video experiment (Figure 9), where bandwidth
        is reported in bytes/second rather than stream counts.
        """
        return self.mean_streams * stream_bandwidth

    def scaled_max(self, stream_bandwidth: float) -> float:
        """Peak server bandwidth when each stream carries ``stream_bandwidth``."""
        return self.max_streams * stream_bandwidth


#: Bins of the waiting-time sketch: slot-duration / WAIT_SKETCH_BINS of
#: quantile resolution (a few milliseconds at figure-7 slot lengths).
WAIT_SKETCH_BINS = 2048


class SlottedSimulation:
    """Drives a :class:`SlottedModel` over a request trace.

    Parameters
    ----------
    protocol:
        The slotted protocol under test.
    slot_duration:
        Slot length ``d`` in seconds.
    horizon_slots:
        Total number of slots to simulate (including warmup).
    warmup_slots:
        Initial slots excluded from bandwidth statistics.
    keep_series:
        Keep the per-slot load series on the result (memory grows linearly).
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  The driver
        feeds the post-warmup load summary into the ``sim.slot_load``
        histogram, counts slots/requests, times the run, and binds the
        registry to the protocol so admissions emit their own metrics.
        ``None`` (the default) keeps the hot loop free of metric calls.
    trace:
        Optional :class:`~repro.obs.trace.TraceSink` receiving one record
        per simulated slot (see :mod:`repro.obs.trace` for the schema).
        Attaching a trace forces the scalar path — trace records carry the
        exact per-request cadence of the slow-path semantics.
    trace_context:
        Extra fields (protocol label, rate, ...) copied into every trace
        record.
    columnar:
        Allow the batched fast path for numpy arrival arrays (default).
        ``False`` forces the scalar path — used by equivalence tests and
        the speedup benches; results are bit-for-bit identical either way.
    """

    def __init__(
        self,
        protocol: SlottedModel,
        slot_duration: float,
        horizon_slots: int,
        warmup_slots: int = 0,
        keep_series: bool = False,
        metrics: Optional["MetricsRegistry"] = None,
        trace: Optional["TraceSink"] = None,
        trace_context: Optional[Dict] = None,
        columnar: bool = True,
    ):
        if slot_duration <= 0:
            raise ConfigurationError(f"slot_duration must be > 0, got {slot_duration}")
        if horizon_slots <= warmup_slots:
            raise ConfigurationError(
                f"horizon_slots ({horizon_slots}) must exceed warmup_slots "
                f"({warmup_slots})"
            )
        self.protocol = protocol
        self.slot_duration = float(slot_duration)
        self.horizon_slots = int(horizon_slots)
        self.warmup_slots = int(warmup_slots)
        self.keep_series = keep_series
        self.metrics = metrics
        self.trace = trace
        self.trace_context = dict(trace_context or {})
        self.columnar = columnar

    def run(self, arrival_times: Sequence[float]) -> SlottedResult:
        """Simulate the protocol over ``arrival_times`` (seconds, sorted).

        Arrivals beyond the horizon are ignored.  Returns the measured
        bandwidth and waiting-time statistics.  Accepts any sorted,
        indexable sequence — typically the runner's (read-only, shared)
        numpy trace — and never copies it.

        Numpy arrays take the columnar path (sortedness checked once,
        upfront) unless a trace sink is attached or ``columnar=False``;
        generic sequences take the scalar path with the incremental
        sortedness check.  Both paths return identical results.
        """
        arrivals = arrival_times
        if isinstance(arrivals, np.ndarray) and arrivals.ndim == 1:
            # Sortedness hoisted out of the hot loop: one vectorised pass
            # over the whole trace instead of a compare per delivery.
            if arrivals.size > 1 and not bool(
                np.all(arrivals[1:] >= arrivals[:-1])
            ):
                raise SimulationError("arrival times must be sorted")
            if self.columnar and self.trace is None:
                return self._run_columnar(arrivals)
            return self._run_scalar(arrivals, presorted=True)
        return self._run_scalar(arrivals, presorted=False)

    def _run_scalar(
        self, arrivals: Sequence[float], presorted: bool
    ) -> SlottedResult:
        """Per-request delivery loop (the reference semantics)."""
        d = self.slot_duration
        metrics = self.metrics
        trace = self.trace
        recorder = SlotLoadRecorder(
            self.warmup_slots, keep_series=self.keep_series, registry=metrics
        )
        weight_stats = OnlineStats()
        wait_sketch = BinnedQuantileSketch(d, WAIT_SKETCH_BINS)
        wait_sum = 0.0
        wait_max = 0.0
        measured_requests = 0
        previous = -math.inf
        arrival_index = 0
        ignored = 0
        n_arrivals = len(arrivals)
        if metrics is not None:
            self.protocol.bind_metrics(metrics)
            run_span = metrics.timer("sim.run_seconds").time()
            run_span.__enter__()

        for slot in range(self.horizon_slots):
            # All requests from slots < slot have been processed, so the load
            # of `slot` is final: no future request may touch it (protocols
            # only schedule into slots >= slot + 1).
            recorder.record(slot, self.protocol.slot_load(slot))
            if slot >= self.warmup_slots:
                weight_stats.add(self.protocol.slot_weight(slot))

            slot_end = (slot + 1) * d
            first_index = arrival_index
            first_ignored = ignored
            while arrival_index < n_arrivals and arrivals[arrival_index] < slot_end:
                t = arrivals[arrival_index]
                if not presorted:
                    if t < previous:
                        raise SimulationError("arrival times must be sorted")
                    previous = t
                if t >= slot * d:  # ignore arrivals before the simulated epoch
                    self.protocol.handle_request(slot)
                    if slot >= self.warmup_slots:
                        # Service begins at the next slot boundary.
                        wait = slot_end - t
                        wait_sum += wait
                        if wait > wait_max:
                            wait_max = wait
                        wait_sketch.add(wait)
                        measured_requests += 1
                else:
                    ignored += 1
                arrival_index += 1

            if trace is not None:
                record = dict(self.trace_context)
                record.update(
                    kind="slot",
                    slot=slot,
                    streams=self.protocol.slot_load(slot),
                    weight=self.protocol.slot_weight(slot),
                    instances=self.protocol.slot_instances(slot),
                    arrivals=arrival_index - first_index - (ignored - first_ignored),
                    measured=slot >= self.warmup_slots,
                )
                trace.emit(record)
            # Released only now so the trace could still read the slot; the
            # numbers are unchanged (releases only drop slots < slot).
            self.protocol.release_before(slot)

        recorder.finish()
        if metrics is not None:
            run_span.__exit__(None, None, None)
            metrics.counter("sim.slots").inc(self.horizon_slots)
            metrics.counter("sim.requests").inc(arrival_index - ignored)
            metrics.counter("sim.arrivals_ignored").inc(ignored)
            metrics.gauge("sim.warmup_slots").set(self.warmup_slots)
        return self._result(
            recorder, weight_stats, wait_sketch, wait_sum, wait_max,
            measured_requests, columnar=False,
        )

    def _run_columnar(self, arrivals: np.ndarray) -> SlottedResult:
        """Batched delivery: one :meth:`SlottedModel.handle_batch` per slot.

        The whole trace is bucketed into slots with a single
        ``np.searchsorted`` against the slot boundaries; waiting times are
        accumulated per batch with a running-sum continuation (``cumsum``
        seeded with the running total is the same left-to-right fold the
        scalar path performs, so the mean is bit-for-bit identical).
        Memory stays bounded: no per-request Python objects, a fixed-size
        wait sketch, and the protocol releases slots as the loop advances.
        """
        d = self.slot_duration
        protocol = self.protocol
        metrics = self.metrics
        horizon = self.horizon_slots
        warmup = self.warmup_slots
        recorder = SlotLoadRecorder(
            warmup, keep_series=self.keep_series, registry=metrics
        )
        weight_stats = OnlineStats()
        wait_sketch = BinnedQuantileSketch(d, WAIT_SKETCH_BINS)
        if metrics is not None:
            protocol.bind_metrics(metrics)
            run_span = metrics.timer("sim.run_seconds").time()
            run_span.__enter__()

        # Slot boundaries (s+1)*d, computed exactly as the scalar loop does
        # (int -> float64 conversion then one multiply); cuts[s] counts the
        # arrivals strictly before the end of slot s.
        boundaries = np.arange(1, horizon + 1, dtype=np.int64) * d
        cuts = np.searchsorted(arrivals, boundaries, side="left").tolist()
        n_within = cuts[-1]
        # Arrivals before the simulated epoch (t < 0) land in slot 0's
        # bucket but are never delivered — same rule as the scalar loop.
        ignored = int(np.searchsorted(arrivals, 0.0, side="left"))

        record = recorder.record
        add_weight = weight_stats.add
        slot_load = protocol.slot_load
        slot_weight = protocol.slot_weight
        handle_batch = protocol.handle_batch
        release_before = protocol.release_before
        sketch_add_array = wait_sketch.add_array
        wait_sum = 0.0
        wait_max = 0.0
        measured_requests = 0
        begin = ignored
        for slot in range(horizon):
            record(slot, slot_load(slot))
            if slot >= warmup:
                add_weight(slot_weight(slot))
            end = cuts[slot]
            count = end - begin
            if count:
                handle_batch(slot, count)
                if slot >= warmup:
                    if count == 1:
                        # Scalar shortcut: same float64 ops, no array temps.
                        wait = float(boundaries[slot]) - float(arrivals[begin])
                        wait_sum += wait
                        if wait > wait_max:
                            wait_max = wait
                        wait_sketch.add(wait)
                    else:
                        waits = boundaries[slot] - arrivals[begin:end]
                        sketch_add_array(waits)
                        block_max = float(waits.max())
                        if block_max > wait_max:
                            wait_max = block_max
                        # cumsum seeded with the running total IS the
                        # scalar path's sequential fold, bit for bit.
                        waits[0] += wait_sum
                        wait_sum = float(waits.cumsum()[-1])
                    measured_requests += count
                begin = end
            release_before(slot)

        recorder.finish()
        if metrics is not None:
            run_span.__exit__(None, None, None)
            metrics.counter("sim.slots").inc(horizon)
            metrics.counter("sim.requests").inc(n_within - ignored)
            metrics.counter("sim.arrivals_ignored").inc(ignored)
            metrics.gauge("sim.warmup_slots").set(warmup)
        return self._result(
            recorder, weight_stats, wait_sketch, wait_sum, wait_max,
            measured_requests, columnar=True,
        )

    def _result(
        self,
        recorder: SlotLoadRecorder,
        weight_stats: OnlineStats,
        wait_sketch: BinnedQuantileSketch,
        wait_sum: float,
        wait_max: float,
        measured_requests: int,
        columnar: bool,
    ) -> SlottedResult:
        """Reduce the shared accumulators to a :class:`SlottedResult`."""
        return SlottedResult(
            slot_duration=self.slot_duration,
            slots_measured=recorder.slots_measured,
            mean_streams=recorder.mean_load,
            max_streams=recorder.max_load,
            n_requests=measured_requests,
            mean_wait=wait_sum / measured_requests if measured_requests else 0.0,
            max_wait=wait_max,
            mean_weight=weight_stats.mean,
            max_weight=weight_stats.maximum if weight_stats.count else 0.0,
            series=recorder.series,
            wait_p50=wait_sketch.quantile(0.5) if measured_requests else 0.0,
            wait_p99=wait_sketch.quantile(0.99) if measured_requests else 0.0,
            columnar=columnar,
        )
