"""Named, independently seeded random streams.

Reproducibility discipline: every stochastic component of a simulation draws
from its *own* generator, derived deterministically from a single experiment
seed and a stream name.  Adding a new consumer of randomness therefore never
perturbs the draws seen by existing consumers — sweeps stay comparable across
library versions and protocol variants (common random numbers).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import ConfigurationError


class RandomStreams:
    """A factory of named, reproducible :class:`numpy.random.Generator` objects.

    Parameters
    ----------
    seed:
        Experiment-level seed.  Two :class:`RandomStreams` built from the same
        seed hand out identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams.get("arrivals")
    >>> video = streams.get("video")
    >>> arrivals is streams.get("arrivals")
    True
    >>> draw = float(RandomStreams(42).get("arrivals").random())
    >>> draw == float(RandomStreams(42).get("arrivals").random())
    True
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise ConfigurationError(f"seed must be an integer, got {seed!r}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The experiment-level seed this factory was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The generator is seeded from ``(seed, name)`` via
        :class:`numpy.random.SeedSequence`, so distinct names yield
        statistically independent streams.
        """
        if not name:
            raise ConfigurationError("stream name must be a non-empty string")
        if name not in self._streams:
            entropy = [self._seed] + [ord(ch) for ch in name]
            self._streams[name] = np.random.default_rng(np.random.SeedSequence(entropy))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory (e.g. one per replication) from this one."""
        child_seed = int(self.get(f"spawn:{name}").integers(0, 2**63 - 1))
        return RandomStreams(child_seed)
