"""Online statistics used by the measurement layer.

Three tools live here:

* :class:`OnlineStats` — Welford-style running mean/variance/min/max over
  discrete observations (e.g. per-slot stream counts).
* :class:`TimeWeightedStats` — time-weighted mean and maximum of a piecewise-
  constant signal (e.g. the number of concurrently active streams in the
  continuous-time simulators).
* :func:`batch_means_ci` — a batch-means confidence interval for steady-state
  simulation output, used by the experiment runner to report uncertainty.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError


class OnlineStats:
    """Running count/mean/variance/min/max over scalar observations.

    Uses Welford's algorithm, so it is numerically stable for long runs.
    Two summaries accumulated independently (e.g. in sweep worker
    processes) combine losslessly via :meth:`merge`, and the state
    round-trips through plain dicts (:meth:`to_dict` / :meth:`from_dict`)
    so the observability registry can ship summaries across process
    boundaries as JSON.

    >>> s = OnlineStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     s.add(x)
    >>> s.mean, s.minimum, s.maximum
    (2.0, 1.0, 3.0)
    """

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Incorporate one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def add_many(self, values: Sequence[float]) -> None:
        """Incorporate a batch of observations."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two observations."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation (+inf when empty, mirroring ``min`` of nothing)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (-inf when empty)."""
        return self._max

    def merge(self, other: "OnlineStats") -> None:
        """Fold ``other`` into this summary (parallel Welford combine).

        Equivalent to having observed both streams in one pass (Chan et
        al.'s pairwise update), so per-worker summaries merged by the
        sweep executor match the serial run's numbers.

        >>> a, b, ref = OnlineStats(), OnlineStats(), OnlineStats()
        >>> a.add_many([1.0, 2.0]); b.add_many([3.0, 4.0, 5.0])
        >>> ref.add_many([1.0, 2.0, 3.0, 4.0, 5.0])
        >>> a.merge(b)
        >>> (a.count, a.mean, a.maximum) == (ref.count, ref.mean, ref.maximum)
        True
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe snapshot of the summary state.

        ``min``/``max`` are ``None`` while empty (infinities are not valid
        JSON).
        """
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "min": None if self.count == 0 else self._min,
            "max": None if self.count == 0 else self._max,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Optional[float]]) -> "OnlineStats":
        """Rebuild a summary from :meth:`to_dict` output."""
        stats = cls()
        stats.count = int(state["count"])
        stats._mean = float(state["mean"])
        stats._m2 = float(state["m2"])
        if stats.count:
            stats._min = float(state["min"])
            stats._max = float(state["max"])
        return stats


class TimeWeightedStats:
    """Time-weighted mean/max of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes level; the previous level
    is weighted by the elapsed time.  Call :meth:`finish` (or read the
    properties after a final :meth:`update`) at the measurement horizon.

    >>> s = TimeWeightedStats(start_time=0.0, level=0.0)
    >>> s.update(10.0, 2.0)   # level was 0 during [0, 10), becomes 2
    >>> s.update(30.0, 0.0)   # level was 2 during [10, 30)
    >>> s.finish(40.0)
    >>> s.mean
    1.0
    >>> s.maximum
    2.0
    """

    def __init__(self, start_time: float = 0.0, level: float = 0.0):
        self._last_time = float(start_time)
        self._level = float(level)
        self._weighted_sum = 0.0
        self._duration = 0.0
        self._max = float(level)

    @property
    def level(self) -> float:
        """Current level of the signal."""
        return self._level

    def update(self, time: float, new_level: float) -> None:
        """Record that the signal changes to ``new_level`` at ``time``."""
        if time < self._last_time:
            raise SimulationError(
                f"time-weighted update moved backwards: {time} < {self._last_time}"
            )
        self._weighted_sum += self._level * (time - self._last_time)
        self._duration += time - self._last_time
        self._last_time = time
        self._level = float(new_level)
        self._max = max(self._max, self._level)

    def add_delta(self, time: float, delta: float) -> None:
        """Convenience: shift the current level by ``delta`` at ``time``."""
        self.update(time, self._level + delta)

    def finish(self, time: float) -> None:
        """Close the measurement window at ``time`` (level is kept)."""
        self.update(time, self._level)

    @property
    def mean(self) -> float:
        """Time-weighted mean over the observed window (0.0 if no time passed)."""
        return self._weighted_sum / self._duration if self._duration > 0 else 0.0

    @property
    def maximum(self) -> float:
        """Largest level ever held (including the initial level)."""
        return self._max

    @property
    def duration(self) -> float:
        """Total observed duration."""
        return self._duration


def batch_means_ci(
    observations: Sequence[float], n_batches: int = 10, z: float = 1.96
) -> Tuple[float, float]:
    """Batch-means estimate ``(mean, half_width)`` for steady-state output.

    Splits ``observations`` (assumed post-warmup) into ``n_batches``
    contiguous batches, treats batch means as approximately independent, and
    returns the grand mean with a normal-theory half width.

    >>> mean, hw = batch_means_ci([1.0] * 100)
    >>> (mean, hw)
    (1.0, 0.0)
    """
    if n_batches < 2:
        raise SimulationError("batch means needs at least 2 batches")
    n = len(observations)
    if n < n_batches:
        raise SimulationError(f"{n} observations cannot fill {n_batches} batches")
    batch_size = n // n_batches
    means: List[float] = []
    for b in range(n_batches):
        batch = observations[b * batch_size : (b + 1) * batch_size]
        means.append(sum(batch) / len(batch))
    grand = sum(means) / n_batches
    var = sum((m - grand) ** 2 for m in means) / (n_batches - 1)
    half_width = z * math.sqrt(var / n_batches)
    return grand, half_width
