"""Discrete-event simulation substrate.

This subpackage provides the machinery every experiment in the reproduction
runs on:

* :mod:`repro.sim.rng` — named, independently seeded random streams so that
  e.g. arrival noise and video noise never share a generator.
* :mod:`repro.sim.events` / :mod:`repro.sim.engine` — a classic event-heap
  discrete-event kernel.
* :mod:`repro.sim.slotted` — a slot-synchronous driver used by the slotted
  broadcasting protocols (DHB, UD, FB, NPB, ...).
* :mod:`repro.sim.continuous` — a continuous-time driver for the reactive
  protocols (stream tapping, patching, batching).
* :mod:`repro.sim.stats` / :mod:`repro.sim.recorder` — online statistics
  (means, maxima, time-weighted averages, batch-means confidence intervals)
  and per-slot / busy-interval recorders.
* :mod:`repro.sim.sketches` — fixed-size quantile sketches (binned counts
  for the slotted hot path, P² for unbounded reactive delays) so tail
  statistics stream in bounded memory at 10M+ request horizons.
"""

from .continuous import BusyInterval, ContinuousSimulation, ReactiveModel, ReactiveResult
from .engine import EventEngine
from .events import Event
from .recorder import SlotLoadRecorder, TimeWeightedRecorder
from .rng import RandomStreams
from .sketches import BinnedQuantileSketch, P2Quantile
from .slotted import SlottedModel, SlottedResult, SlottedSimulation
from .stats import OnlineStats, TimeWeightedStats, batch_means_ci

__all__ = [
    "BinnedQuantileSketch",
    "BusyInterval",
    "ContinuousSimulation",
    "Event",
    "EventEngine",
    "OnlineStats",
    "P2Quantile",
    "RandomStreams",
    "ReactiveModel",
    "ReactiveResult",
    "SlotLoadRecorder",
    "SlottedModel",
    "SlottedResult",
    "SlottedSimulation",
    "TimeWeightedRecorder",
    "TimeWeightedStats",
    "batch_means_ci",
]
