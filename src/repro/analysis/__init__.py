"""Measurement reduction, closed-form models, and reporting.

* :mod:`repro.analysis.theory` — analytic anchors: harmonic saturation
  bandwidth, FB/NPB/SB stream counts, the optimal patching window and cost
  rate under Poisson arrivals, the Eager–Vernon–Zahorjan lower bound.
* :mod:`repro.analysis.metrics` — result records shared by the harness.
* :mod:`repro.analysis.tables` — plain-text series/table rendering (the
  reproduction reports figures as printed series, like the paper's plots).
* :mod:`repro.analysis.compare` — multi-protocol sweep comparison helpers.
"""

from .compare import SweepComparison, compare_series
from .metrics import BandwidthPoint, ProtocolSeries
from .tables import format_series_table, format_simple_table
from .theory import (
    batching_cost_rate,
    dhb_saturation_bandwidth,
    evz_lower_bound,
    harmonic_number,
    optimal_patching_window,
    patching_cost_rate,
)

__all__ = [
    "BandwidthPoint",
    "ProtocolSeries",
    "SweepComparison",
    "batching_cost_rate",
    "compare_series",
    "dhb_saturation_bandwidth",
    "evz_lower_bound",
    "format_series_table",
    "format_simple_table",
    "harmonic_number",
    "optimal_patching_window",
    "patching_cost_rate",
]
