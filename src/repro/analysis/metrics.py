"""Result records shared by the experiment harness.

The paper's figures are families of (request rate → bandwidth) series, one
per protocol.  :class:`BandwidthPoint` is one measured point;
:class:`ProtocolSeries` is one curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ConfigurationError


@dataclass(frozen=True)
class BandwidthPoint:
    """One measured operating point of one protocol.

    Attributes
    ----------
    rate_per_hour:
        Request arrival rate λ (the x-axis of Figures 7–9).
    mean_bandwidth:
        Average server bandwidth.  Units: streams of the consumption rate
        for Figures 7/8; bytes/second for Figure 9.
    max_bandwidth:
        Peak server bandwidth over the measured window (Figure 8's y-axis).
    mean_wait:
        Average client waiting time in seconds.
    n_requests:
        Requests measured (after warmup); 0 for purely analytic points.
    """

    rate_per_hour: float
    mean_bandwidth: float
    max_bandwidth: float
    mean_wait: float = 0.0
    n_requests: int = 0


@dataclass
class ProtocolSeries:
    """One protocol's curve across a rate sweep.

    Attributes
    ----------
    protocol:
        Display name ("DHB Protocol", "Stream Tapping", ...).
    points:
        Measured points, in sweep order.
    """

    protocol: str
    points: List[BandwidthPoint] = field(default_factory=list)

    def add(self, point: BandwidthPoint) -> None:
        """Append one measured point."""
        self.points.append(point)

    @property
    def rates(self) -> List[float]:
        """The swept arrival rates."""
        return [p.rate_per_hour for p in self.points]

    @property
    def means(self) -> List[float]:
        """Mean bandwidth per point."""
        return [p.mean_bandwidth for p in self.points]

    @property
    def maxima(self) -> List[float]:
        """Peak bandwidth per point."""
        return [p.max_bandwidth for p in self.points]

    def at_rate(self, rate_per_hour: float) -> BandwidthPoint:
        """The point measured at ``rate_per_hour`` (exact match).

        Raises :class:`~repro.errors.ConfigurationError` when the rate was
        not part of the sweep.
        """
        for point in self.points:
            if point.rate_per_hour == rate_per_hour:
                return point
        raise ConfigurationError(
            f"{self.protocol}: no point at rate {rate_per_hour}/hour"
        )


def series_by_name(series: List[ProtocolSeries]) -> Dict[str, ProtocolSeries]:
    """Index a list of series by protocol name.

    Raises on duplicate names — a sweep must not measure one protocol twice
    under the same label.
    """
    indexed: Dict[str, ProtocolSeries] = {}
    for entry in series:
        if entry.protocol in indexed:
            raise ConfigurationError(f"duplicate series {entry.protocol!r}")
        indexed[entry.protocol] = entry
    return indexed
