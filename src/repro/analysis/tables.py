"""Plain-text rendering of result series.

The reproduction reports every figure as a printed table of series — the
same rows the paper plots — so runs are diffable and greppable without any
plotting stack.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError
from .metrics import ProtocolSeries


def format_simple_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned monospace table.

    >>> print(format_simple_table(["a", "b"], [[1, 2.5], [30, 4]]))
    a   b
    --  ---
    1   2.5
    30  4
    """
    if not headers:
        raise ConfigurationError("need at least one column")
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        cells.append([str(value) for value in row])
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells[0])).rstrip()]
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells[1:]:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_series_table(
    series: List[ProtocolSeries],
    value: str = "mean",
    rate_header: str = "req/hour",
    precision: int = 3,
    unit_scale: float = 1.0,
) -> str:
    """Render a figure's series as one table: rates × protocols.

    Parameters
    ----------
    series:
        One column per protocol.
    value:
        "mean" or "max" — which bandwidth statistic to print.
    rate_header:
        Label of the rate column.
    precision:
        Decimal places for the bandwidth cells.
    unit_scale:
        Divide every bandwidth by this (e.g. bytes → MB/s for Figure 9).
    """
    if value not in ("mean", "max"):
        raise ConfigurationError(f"value must be 'mean' or 'max', got {value!r}")
    if not series:
        raise ConfigurationError("need at least one series")
    rates = series[0].rates
    for entry in series[1:]:
        if entry.rates != rates:
            raise ConfigurationError(
                f"series {entry.protocol!r} was swept over different rates"
            )
    headers = [rate_header] + [entry.protocol for entry in series]
    rows = []
    for index, rate in enumerate(rates):
        row: List[object] = [f"{rate:g}"]
        for entry in series:
            point = entry.points[index]
            raw = point.mean_bandwidth if value == "mean" else point.max_bandwidth
            row.append(f"{raw / unit_scale:.{precision}f}")
        rows.append(row)
    return format_simple_table(headers, rows)
