"""Cross-protocol comparison helpers.

The paper's headline claims are *orderings* ("the new DHB protocol requires
less average bandwidth than its four rivals do for all request arrival rates
above two requests per hour"), so the harness needs tooling that checks who
wins where and locates crossover rates.  EXPERIMENTS.md is generated from
these comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .metrics import ProtocolSeries, series_by_name


@dataclass(frozen=True)
class SweepComparison:
    """Pairwise verdicts over one rate sweep.

    Attributes
    ----------
    rates:
        The swept rates.
    winners:
        ``winners[i]`` is the protocol with the smallest mean bandwidth at
        ``rates[i]``.
    """

    rates: List[float]
    winners: List[str]

    def winner_above(self, rate_threshold: float) -> Optional[str]:
        """The unique winner at every rate >= threshold, or None if contested."""
        names = {
            winner
            for rate, winner in zip(self.rates, self.winners)
            if rate >= rate_threshold
        }
        return names.pop() if len(names) == 1 else None


def compare_series(series: List[ProtocolSeries]) -> SweepComparison:
    """Determine the per-rate winner by mean bandwidth.

    >>> from .metrics import BandwidthPoint
    >>> a = ProtocolSeries("A", [BandwidthPoint(1.0, 2.0, 2.0)])
    >>> b = ProtocolSeries("B", [BandwidthPoint(1.0, 3.0, 3.0)])
    >>> compare_series([a, b]).winners
    ['A']
    """
    if not series:
        raise ConfigurationError("need at least one series")
    rates = series[0].rates
    for entry in series[1:]:
        if entry.rates != rates:
            raise ConfigurationError("series were swept over different rates")
    winners: List[str] = []
    for index in range(len(rates)):
        best = min(series, key=lambda entry: entry.points[index].mean_bandwidth)
        winners.append(best.protocol)
    return SweepComparison(rates=rates, winners=winners)


def dominance(
    series: List[ProtocolSeries], subject: str
) -> Dict[str, List[float]]:
    """Rates at which ``subject`` beats (<=) each rival on mean bandwidth.

    Returns a map rival → list of rates where the subject's mean bandwidth
    does not exceed the rival's.
    """
    indexed = series_by_name(series)
    if subject not in indexed:
        raise ConfigurationError(f"unknown subject series {subject!r}")
    ours = indexed[subject]
    result: Dict[str, List[float]] = {}
    for name, rival in indexed.items():
        if name == subject:
            continue
        wins = [
            rate
            for rate, mine, theirs in zip(ours.rates, ours.means, rival.means)
            if mine <= theirs
        ]
        result[name] = wins
    return result


def crossover_rate(
    series_a: ProtocolSeries, series_b: ProtocolSeries
) -> Optional[Tuple[float, float]]:
    """The sweep interval in which A stops beating B (or vice versa).

    Returns the pair of adjacent swept rates between which the sign of
    ``mean(A) - mean(B)`` flips, or ``None`` when one protocol dominates the
    whole sweep.  Figures 7's "stream tapping ... is outperformed ... above
    the same two requests per hour" is a crossover statement of this kind.
    """
    if series_a.rates != series_b.rates:
        raise ConfigurationError("series were swept over different rates")
    diffs = [a - b for a, b in zip(series_a.means, series_b.means)]
    for index in range(1, len(diffs)):
        if diffs[index - 1] == 0 or diffs[index] == 0:
            continue
        if (diffs[index - 1] < 0) != (diffs[index] < 0):
            return (series_a.rates[index - 1], series_a.rates[index])
    return None
