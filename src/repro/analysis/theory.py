"""Closed-form models used to anchor the simulators.

Every formula here has a published source and a matching simulation in the
test suite; when a simulator and its formula disagree beyond statistical
noise, the simulator is wrong.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError


def harmonic_number(n: int) -> float:
    """The harmonic number ``H(n) = sum_{j=1..n} 1/j``.

    >>> round(harmonic_number(99), 4)
    5.1774
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return sum(1.0 / j for j in range(1, n + 1))


def dhb_saturation_bandwidth(n_segments: int) -> float:
    """DHB's average bandwidth plateau at high request rates.

    Under sustained load DHB transmits segment ``S_j`` once every ``j``
    slots ("the protocol will never schedule more than one instance of
    segment S_i once every i slots"), so the average stream count converges
    to ``H(n)`` — about 5.18 streams for the 99 segments of Figure 7.
    """
    return harmonic_number(n_segments)


def optimal_patching_window(rate_per_second: float, duration: float) -> float:
    """Patching window that minimises the expected server cost rate.

    For Poisson arrivals at rate λ and a video of length ``D``, a renewal
    cycle consists of one complete stream (cost ``D``) plus one patch of
    expected length ``w/2`` for each of the ``λ w`` requests landing inside
    the window, and ends ``1/λ`` after the window closes.  Minimising

    ``cost(w) = (D + λ w²/2) / (w + 1/λ)``

    gives the classic result ``w* = (sqrt(1 + 2 λ D) - 1) / λ``.

    >>> round(optimal_patching_window(0.0, 7200.0), 1)
    7200.0
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    if rate_per_second < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate_per_second}")
    if rate_per_second == 0:
        # No sharing is possible; any window up to D behaves identically.
        return duration
    return (math.sqrt(1.0 + 2.0 * rate_per_second * duration) - 1.0) / rate_per_second


def patching_cost_rate(
    rate_per_second: float, duration: float, window: float = -1.0
) -> float:
    """Expected server bandwidth (streams) of threshold patching.

    ``window < 0`` selects the optimal window.  The unit is concurrent
    streams of the video consumption rate, directly comparable to Figure 7's
    y-axis.

    >>> patching_cost_rate(0.0, 7200.0)
    0.0
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    if rate_per_second < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate_per_second}")
    if rate_per_second == 0:
        return 0.0
    if window < 0:
        window = optimal_patching_window(rate_per_second, duration)
    lam = rate_per_second
    return (duration + lam * window**2 / 2.0) / (window + 1.0 / lam)


def batching_cost_rate(rate_per_second: float, duration: float, window: float) -> float:
    """Expected server bandwidth (streams) of window batching.

    A batch opens on the first request and is served one complete stream
    after ``window`` seconds; the next cycle starts with the next arrival,
    ``1/λ`` later in expectation.
    """
    if duration <= 0 or window < 0:
        raise ConfigurationError("need duration > 0 and window >= 0")
    if rate_per_second < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate_per_second}")
    if rate_per_second == 0:
        return 0.0
    return duration / (window + 1.0 / rate_per_second)


def evz_lower_bound(
    rate_per_second: float, duration: float, wait: float = 0.0
) -> float:
    """Eager–Vernon–Zahorjan lower bound on on-demand delivery bandwidth.

    The minimum average server bandwidth of *any* protocol that starts every
    client within ``wait`` seconds is ``ln(1 + D / (wait + 1/λ))`` streams
    [Eager, Vernon & Zahorjan 1999] — the paper's Section 3 notes DHB's
    scheduling rule "is not very different from that used in [6] to derive a
    lower bound".  Two limits sanity-check it: as λ → ∞ it approaches the
    harmonic bound ``ln(D/wait) ~ H(D/wait)``; with ``wait = 0`` it is
    ``ln(1 + λD)``.

    >>> round(evz_lower_bound(0.1, 7200.0, wait=0.0), 2)
    6.58
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    if wait < 0:
        raise ConfigurationError(f"wait must be >= 0, got {wait}")
    if rate_per_second < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate_per_second}")
    if rate_per_second == 0:
        return 0.0
    return math.log(1.0 + duration / (wait + 1.0 / rate_per_second))


def suffix_saturation_bandwidth(n_segments: int, prefix_segments: int) -> float:
    """Origin saturation bandwidth for clients holding a cached prefix.

    A client that already has segments ``1..k`` joins the broadcast needing
    only the suffix; under sustained load DHB still transmits segment
    ``S_j`` at most once every ``j`` slots, so the plateau over segments
    ``k+1..n`` is ``H(n) - H(k)`` streams.  ``k = 0`` recovers
    :func:`dhb_saturation_bandwidth`; ``k = n`` costs the origin nothing.

    >>> round(suffix_saturation_bandwidth(99, 0), 4)
    5.1774
    >>> suffix_saturation_bandwidth(99, 99)
    0.0
    """
    if n_segments < 1:
        raise ConfigurationError(f"n must be >= 1, got {n_segments}")
    if not 0 <= prefix_segments <= n_segments:
        raise ConfigurationError(
            f"prefix must be in [0, {n_segments}], got {prefix_segments}"
        )
    if prefix_segments == 0:
        return harmonic_number(n_segments)
    return harmonic_number(n_segments) - harmonic_number(prefix_segments)


def edge_backbone_savings_bound(
    probabilities, prefixes, n_segments: int
) -> float:
    """Analytic fraction of backbone bandwidth an edge cache can save.

    At saturation the pure origin spends ``H(n)`` streams per title; with
    per-title cached prefixes ``k_i`` it spends ``H(n) - H(k_i)``, so the
    popularity-weighted savings fraction is
    ``sum(p_i * H(k_i)) / H(n)`` — the scalable-VoD-style upper bound the
    budget study overlays on its measured curve.  Measured savings land
    below it because real load is finite (the origin is not saturated for
    every title) and deferrals shift joins.

    >>> edge_backbone_savings_bound([1.0], [0], 99)
    0.0
    >>> round(edge_backbone_savings_bound([1.0], [99], 99), 4)
    1.0
    """
    if n_segments < 1:
        raise ConfigurationError(f"n must be >= 1, got {n_segments}")
    if len(probabilities) != len(prefixes):
        raise ConfigurationError(
            f"{len(probabilities)} shares for {len(prefixes)} prefixes"
        )
    saving = 0.0
    for p, k in zip(probabilities, prefixes):
        if p < 0:
            raise ConfigurationError("title shares must be >= 0")
        if not 0 <= k <= n_segments:
            raise ConfigurationError(
                f"prefix must be in [0, {n_segments}], got {k}"
            )
        if k > 0:
            saving += p * harmonic_number(k)
    return saving / harmonic_number(n_segments)


def evz_suffix_lower_bound(
    rate_per_second: float,
    duration: float,
    prefix_seconds: float,
    wait: float = 0.0,
) -> float:
    """EVZ lower bound when the first ``prefix_seconds`` come from a cache.

    With the prefix served locally, any origin protocol effectively delivers
    a video of length ``D - prefix`` to clients that tolerate an extra
    ``prefix`` seconds of origin startup slack, so the bound becomes
    ``ln(1 + (D - prefix) / (prefix + wait + 1/λ))``.  ``prefix = 0``
    recovers :func:`evz_lower_bound`.

    >>> evz_suffix_lower_bound(0.1, 7200.0, 7200.0)
    0.0
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    if not 0 <= prefix_seconds <= duration:
        raise ConfigurationError(
            f"prefix must be in [0, {duration}], got {prefix_seconds}"
        )
    if wait < 0:
        raise ConfigurationError(f"wait must be >= 0, got {wait}")
    if rate_per_second < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate_per_second}")
    if rate_per_second == 0 or prefix_seconds == duration:
        return 0.0
    return math.log(
        1.0
        + (duration - prefix_seconds)
        / (prefix_seconds + wait + 1.0 / rate_per_second)
    )


def fb_bandwidth(n_segments: int) -> int:
    """FB's fixed bandwidth in streams for ``n_segments`` segments."""
    if n_segments < 1:
        raise ConfigurationError(f"n must be >= 1, got {n_segments}")
    return int(math.ceil(math.log2(n_segments + 1)))


def staggered_catching_cost_rate(
    rate_per_second: float, duration: float, n_channels: int
) -> float:
    """Expected bandwidth of selective catching with ``n_channels`` loops.

    ``n_channels`` dedicated channels broadcast the video staggered every
    ``D / C`` seconds; each request additionally needs a catch-up patch of
    expected length ``D / (2C)``.
    """
    if n_channels < 1:
        raise ConfigurationError(f"need >= 1 channel, got {n_channels}")
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    if rate_per_second < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate_per_second}")
    return n_channels + rate_per_second * duration / (2.0 * n_channels)


def optimal_catching_channels(rate_per_second: float, duration: float) -> int:
    """Channel count minimising :func:`staggered_catching_cost_rate`.

    Balancing ``C`` against ``λD/(2C)`` gives ``C* = sqrt(λD/2)``; the
    discrete optimum is one of its two integer neighbours (at least 1).
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    if rate_per_second < 0:
        raise ConfigurationError(f"rate must be >= 0, got {rate_per_second}")
    ideal = math.sqrt(max(rate_per_second, 0.0) * duration / 2.0)
    floor_c = max(1, int(math.floor(ideal)))
    ceil_c = max(1, int(math.ceil(ideal)))
    candidates = {floor_c, ceil_c}
    return min(
        candidates,
        key=lambda c: staggered_catching_cost_rate(rate_per_second, duration, c),
    )
