"""Task kinds: what a :class:`~repro.runtime.spec.RunSpec` can ask for.

A *kind* maps a spec to the domain function that executes it.  Handlers
take ``(payload, observation)`` and return a picklable value; the domain
logic itself stays in the owning layer (``experiments``, ``cluster``) and
is imported lazily so the runtime package never drags the whole experiment
stack in at import time (and so pool workers resolve handlers by importing
this module alone).

Built-in kinds
--------------
``sweep-point``
    One figure-sweep grid cell: ``(name, label, point, SweepConfig)`` →
    :class:`~repro.analysis.metrics.BandwidthPoint`, where ``point`` is a
    stationary rate (req/hour) or a digest-keyed
    :class:`~repro.workload.spec.WorkloadSpec` (nonstationary sweeps);
    float payloads are bit-identical to pre-workload runs.  Slotted cells
    run on the columnar slotted hot path (arrival traces are numpy arrays)
    unless a per-slot trace sink is attached, so every entry point that
    fans work through the Engine — figure sweeps, ablations, catalog
    studies, the CLI — gets batched admission for free.
``fig9-series``
    One Figure-9 series: ``(series_name, SweepConfig, video | None)`` →
    :class:`~repro.analysis.metrics.ProtocolSeries`.
``ablation-series``
    One ablation arm swept over every rate: ``(study, arm, SweepConfig)``
    → :class:`~repro.analysis.metrics.ProtocolSeries`.
``catalog-title``
    One catalog title: ``(rank, rate, SweepConfig)`` → per-protocol mean
    bandwidths.
``cluster-scenario``
    One multi-server scenario: ``(ClusterScenario,)`` →
    :class:`~repro.cluster.scenario.ClusterResult`.
``edge-scenario``
    One origin+edge hierarchy run: ``(HierarchyScenario,)`` →
    :class:`~repro.edge.scenario.HierarchyResult`.  Budget sweeps
    (cache budget × Zipf skew × arrival rate) fan these out across any
    backend with checkpointed resume, like every other kind.
``adaptive-arm``
    One arm of the adaptive-DHB day study: ``(arm, AdaptiveStudyConfig)``
    → :class:`~repro.experiments.adaptive.ArmResult`, where ``arm`` is
    ``"static"`` or ``"adaptive"``.  Both arms replay the same
    digest-keyed nonstationary arrival trace.
``figure-render``
    The deterministic Figures 1–5 renderings: ``()`` or ``(figure,)`` →
    ``str``.

Custom kinds registered via :func:`register_kind` exist only in the
registering process; pooled execution of a custom kind requires the
registration to happen at import time of a module the workers import.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..errors import ConfigurationError
from ..obs.registry import MetricsRegistry
from ..obs.trace import MemoryTraceSink, Observation
from .spec import RunResult, RunSpec

Handler = Callable[[tuple, Optional[Observation]], Any]


def _run_sweep_point(payload: tuple, observation: Optional[Observation]) -> Any:
    from ..experiments.runner import measure_sweep_point

    name, label, point, config = payload
    return measure_sweep_point(name, label, point, config, observation=observation)


def _run_fig9_series(payload: tuple, observation: Optional[Observation]) -> Any:
    from ..experiments.fig9 import measure_fig9_series

    series_name, config, video = payload
    return measure_fig9_series(series_name, config, video, observation=observation)


def _run_ablation_series(payload: tuple, observation: Optional[Observation]) -> Any:
    from ..experiments.ablations import run_ablation_series

    study, arm, config = payload
    return run_ablation_series(study, arm, config, observation=observation)


def _run_catalog_title(payload: tuple, observation: Optional[Observation]) -> Any:
    from ..experiments.catalog import measure_catalog_title

    rank, rate, config = payload
    return measure_catalog_title(rank, rate, config, observation=observation)


def _run_cluster_scenario(payload: tuple, observation: Optional[Observation]) -> Any:
    from ..cluster.scenario import run_scenario

    (scenario,) = payload
    return run_scenario(scenario, observation=observation)


def _run_edge_scenario(payload: tuple, observation: Optional[Observation]) -> Any:
    from ..edge.scenario import run_hierarchy

    (scenario,) = payload
    return run_hierarchy(scenario, observation=observation)


def _run_adaptive_arm(payload: tuple, observation: Optional[Observation]) -> Any:
    from ..experiments.adaptive import run_adaptive_arm

    arm, study = payload
    return run_adaptive_arm(arm, study, observation=observation)


def _run_figure_render(payload: tuple, observation: Optional[Observation]) -> Any:
    from ..experiments.fig1to5 import render_all_figures, render_figure

    if payload:
        return render_figure(payload[0])
    return render_all_figures()


#: The kinds every process knows about (workers resolve these by import).
BUILTIN_KINDS: Dict[str, Handler] = {
    "sweep-point": _run_sweep_point,
    "fig9-series": _run_fig9_series,
    "ablation-series": _run_ablation_series,
    "catalog-title": _run_catalog_title,
    "cluster-scenario": _run_cluster_scenario,
    "edge-scenario": _run_edge_scenario,
    "adaptive-arm": _run_adaptive_arm,
    "figure-render": _run_figure_render,
}

_KINDS: Dict[str, Handler] = dict(BUILTIN_KINDS)


def register_kind(kind: str, handler: Handler) -> None:
    """Register a custom task kind (current process only; see module doc)."""
    if kind in _KINDS:
        raise ConfigurationError(f"task kind {kind!r} is already registered")
    _KINDS[kind] = handler


def resolve_kind(kind: str) -> Handler:
    """The handler for ``kind``; raises on unknown kinds."""
    handler = _KINDS.get(kind)
    if handler is None:
        raise ConfigurationError(
            f"unknown task kind {kind!r}; known: {sorted(_KINDS)}"
        )
    return handler


#: In-process count of execute_spec invocations — the checkpoint layer's
#: "completed specs are not re-executed" probe.  Per process: pool and
#: socket workers each count their own executions.
_EXECUTIONS = 0


def execution_count() -> int:
    """How many specs this process has executed (see :data:`_EXECUTIONS`)."""
    return _EXECUTIONS


def reset_execution_count() -> None:
    """Zero the in-process execution probe (tests and benches)."""
    global _EXECUTIONS
    _EXECUTIONS = 0


def execute_spec(spec: RunSpec, want_metrics: bool, want_trace: bool) -> RunResult:
    """Execute one spec under a fresh, cell-local registry/sink.

    This is the function workers run — pool processes and socket workers
    alike: module-level (picklable by reference), and everything it
    returns is a plain value.  Without observability it adds nothing to
    the handler call — the disabled path costs no allocations.
    """
    global _EXECUTIONS
    _EXECUTIONS += 1
    handler = resolve_kind(spec.kind)
    if not want_metrics:
        return RunResult(handler(spec.payload, None), {}, [])
    registry = MetricsRegistry()
    sink = MemoryTraceSink() if want_trace else None
    value = handler(spec.payload, Observation(metrics=registry, trace=sink))
    return RunResult(
        value=value,
        metrics=registry.to_dict(),
        trace=sink.records if sink is not None else [],
    )
