"""The Engine: every entry point's one execution core.

``Engine.run`` takes a batch of :class:`~repro.runtime.spec.RunSpec` values
and returns their :class:`~repro.runtime.spec.RunResult` outcomes in input
order, fanning across the shared process pool (:mod:`repro.runtime.pool`)
when configured for more than one worker.  Figure sweeps, cluster scenario
batches, ablations, the catalog study, and the benches all route through
here, so parallelism, caching, determinism, and observability behave
identically under every entry point — and future scaling work (batching,
async, other backends) lands in exactly one place.

Determinism contract
--------------------
Pooled execution is **bit-for-bit** identical to serial execution:

* every spec is a deterministic pure function of its value (seeds are
  derived, never drawn from global state — :mod:`repro.runtime.seeds`);
* results are reassembled in task order regardless of completion order;
* with an :class:`~repro.obs.trace.Observation`, every cell runs under its
  own fresh registry (and in-memory trace buffer when the observation has
  a sink); the parent merges registries and re-emits trace records in task
  order, so the merged observability state is identical however the cells
  were scheduled.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..obs.trace import Observation
from .config import DEFAULT_CONFIG, RuntimeConfig
from .pool import run_ordered
from .spec import RunResult, RunSpec
from .tasks import execute_spec


class Engine:
    """Executes RunSpec batches serially or across the shared pool.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``None`` defers to ``config`` and then the
        ``REPRO_SWEEP_JOBS`` environment variable (serial by default);
        negative means "all cores".  See
        :meth:`~repro.runtime.config.RuntimeConfig.resolve_n_jobs`.
    config:
        Runtime knobs; defaults to the process-wide
        :data:`~repro.runtime.config.DEFAULT_CONFIG`.

    Examples
    --------
    >>> from repro.experiments.config import SweepConfig
    >>> cfg = SweepConfig().quick(rates_per_hour=(30.0,), base_hours=2.0,
    ...                           min_requests=10)
    >>> engine = Engine(n_jobs=1)
    >>> spec = RunSpec("sweep-point", ("npb", "npb", 30.0, cfg))
    >>> engine.run_values([spec])[0].rate_per_hour
    30.0
    """

    def __init__(
        self,
        n_jobs: Optional[int] = None,
        config: Optional[RuntimeConfig] = None,
    ):
        self.config = config if config is not None else DEFAULT_CONFIG
        self.n_jobs = self.config.resolve_n_jobs(n_jobs)

    def run(
        self,
        specs: Sequence[RunSpec],
        observation: Optional[Observation] = None,
    ) -> List[RunResult]:
        """Execute every spec, preserving input order.

        With an ``observation``, each cell's metrics snapshot is merged
        into ``observation.metrics`` and its trace records re-emitted to
        ``observation.trace`` in task order (see the module docstring for
        why that makes pooled runs bit-for-bit serial).
        """
        want_metrics = observation is not None
        want_trace = want_metrics and observation.trace is not None
        results = run_ordered(
            execute_spec,
            [(spec, want_metrics, want_trace) for spec in specs],
            self.n_jobs,
        )
        if observation is not None:
            for result in results:
                observation.metrics.merge_dict(result.metrics)
                if observation.trace is not None:
                    for record in result.trace:
                        observation.trace.emit(record)
        return results

    def run_values(
        self,
        specs: Sequence[RunSpec],
        observation: Optional[Observation] = None,
    ) -> List[Any]:
        """:meth:`run`, reduced to the handler return values."""
        return [result.value for result in self.run(specs, observation=observation)]
