"""The Engine: every entry point's one execution core.

``Engine.run`` takes a batch of :class:`~repro.runtime.spec.RunSpec` values
and returns their :class:`~repro.runtime.spec.RunResult` outcomes in input
order, executing them on one pluggable
:class:`~repro.runtime.backends.base.ExecutionBackend` — inline, across
the local process pool, or across registered socket workers
(:mod:`repro.runtime.backends`).  Figure sweeps, cluster scenario batches,
ablations, the catalog study, and the benches all route through here, so
parallelism, caching, determinism, checkpointing, and observability behave
identically under every entry point.

Determinism contract
--------------------
Execution on any backend is **bit-for-bit** identical to serial execution:

* every spec is a deterministic pure function of its value (seeds are
  derived, never drawn from global state — :mod:`repro.runtime.seeds`);
* results are reassembled in task order regardless of completion order
  or which worker (process, socket peer) ran them;
* with an :class:`~repro.obs.trace.Observation`, every cell runs under its
  own fresh registry (and in-memory trace buffer when the observation has
  a sink); the parent merges registries and re-emits trace records in task
  order, so the merged observability state is identical however the cells
  were scheduled.

Checkpoint/resume
-----------------
Pass ``checkpoint=CheckpointStore(path)`` (to the constructor or to
:meth:`Engine.run`) and every completed result is journaled under its
spec's stable content digest as it lands; on a re-run over the same store,
digested-complete specs are **not re-executed** — their journaled results
slot back into task order, so the resumed run's outputs and merged
observability state are identical to an uninterrupted run's.  See
:mod:`repro.runtime.checkpoint` for the journal format.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..obs.trace import Observation
from .backends import ExecutionBackend, resolve_backend
from .checkpoint import CheckpointStore, spec_digest
from .config import DEFAULT_CONFIG, RuntimeConfig
from .spec import RunResult, RunSpec
from .tasks import execute_spec


class Engine:
    """Executes RunSpec batches on one resolved execution backend.

    Parameters
    ----------
    n_jobs:
        Worker count.  ``None`` defers to ``config`` and then the
        ``REPRO_SWEEP_JOBS`` environment variable (serial by default);
        negative means "all cores".  See
        :meth:`~repro.runtime.config.RuntimeConfig.resolve_n_jobs`.
    config:
        Runtime knobs; defaults to the process-wide
        :data:`~repro.runtime.config.DEFAULT_CONFIG`.
    backend:
        An :class:`~repro.runtime.backends.base.ExecutionBackend`
        instance or name (``"serial"``, ``"process"``, ``"socket"``).
        ``None`` defers to ``config``/``REPRO_BACKEND``, then to the
        worker-count default: serial for one worker, the local process
        pool otherwise.
    checkpoint:
        Optional :class:`~repro.runtime.checkpoint.CheckpointStore`
        journaling every completed result (and replaying completed specs
        on resume) for all this Engine's runs.

    Examples
    --------
    >>> from repro.experiments.config import SweepConfig
    >>> cfg = SweepConfig().quick(rates_per_hour=(30.0,), base_hours=2.0,
    ...                           min_requests=10)
    >>> engine = Engine(n_jobs=1)
    >>> spec = RunSpec("sweep-point", ("npb", "npb", 30.0, cfg))
    >>> engine.run_values([spec])[0].rate_per_hour
    30.0
    """

    def __init__(
        self,
        n_jobs: Optional[int] = None,
        config: Optional[RuntimeConfig] = None,
        backend: Any = None,
        checkpoint: Optional[CheckpointStore] = None,
    ):
        self.config = config if config is not None else DEFAULT_CONFIG
        self.n_jobs = self.config.resolve_n_jobs(n_jobs)
        if backend is None:
            backend = self.config.resolve_backend()
        self.backend: ExecutionBackend = resolve_backend(backend, self.n_jobs)
        self.checkpoint = checkpoint

    def run(
        self,
        specs: Sequence[RunSpec],
        observation: Optional[Observation] = None,
        checkpoint: Optional[CheckpointStore] = None,
    ) -> List[RunResult]:
        """Execute every spec, preserving input order.

        With an ``observation``, each cell's metrics snapshot is merged
        into ``observation.metrics`` and its trace records re-emitted to
        ``observation.trace`` in task order (see the module docstring for
        why that makes backend choice invisible in the outputs).  With a
        ``checkpoint`` (argument, else the Engine's), completed results
        are journaled as they land and already-journaled specs are served
        from the store without re-executing.
        """
        store = checkpoint if checkpoint is not None else self.checkpoint
        want_metrics = observation is not None
        want_trace = want_metrics and observation.trace is not None
        tasks = [(spec, want_metrics, want_trace) for spec in specs]
        degraded_before = self.backend.degraded_events
        if store is None:
            results = self.backend.submit_ordered(execute_spec, tasks)
        else:
            digests = [
                spec_digest(spec, want_metrics, want_trace) for spec in specs
            ]
            results = [store.get(digest) for digest in digests]
            fresh = [index for index, result in enumerate(results) if result is None]

            def journal(position: int, result: RunResult) -> None:
                store.record(digests[fresh[position]], result)

            for position, result in zip(
                fresh,
                self.backend.submit_ordered(
                    execute_spec, [tasks[index] for index in fresh], journal
                ),
            ):
                results[position] = result
        if observation is not None:
            degraded = self.backend.degraded_events - degraded_before
            if degraded:
                observation.metrics.counter("runtime.pool.degraded").inc(degraded)
            for result in results:
                observation.metrics.merge_dict(result.metrics)
                if observation.trace is not None:
                    for record in result.trace:
                        observation.trace.emit(record)
        return results

    def run_values(
        self,
        specs: Sequence[RunSpec],
        observation: Optional[Observation] = None,
        checkpoint: Optional[CheckpointStore] = None,
    ) -> List[Any]:
        """:meth:`run`, reduced to the handler return values."""
        return [
            result.value
            for result in self.run(specs, observation=observation, checkpoint=checkpoint)
        ]

    def close(self) -> None:
        """Release the backend's workers and the checkpoint journal."""
        self.backend.close()
        if self.checkpoint is not None:
            self.checkpoint.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
