"""Uniform observability threading: attach metrics/manifest/trace once.

Before the runtime existed, the sweep runner, the CLI, and the cluster
layer each wired their own ``MetricsRegistry`` + ``ManifestRecorder`` +
``TraceSink`` combination.  :func:`observed_run` is the one way to do it:
a context manager that opens a manifest around the run, yields an
:class:`ObservedRun` whose ``observation`` is ready to hand to an
:class:`~repro.runtime.engine.Engine`, and completes the manifest on exit.

>>> with observed_run("demo", protocols=["npb"], seed=1) as run:
...     run.observation.metrics.counter("demo.events").inc()
>>> run.manifest.experiment
'demo'
>>> run.metrics_document()["metrics"]["counters"]["demo.events"]
1
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence

from ..obs.manifest import ManifestRecorder, RunManifest
from ..obs.registry import MetricsRegistry
from ..obs.trace import Observation, TraceSink


@dataclass
class ObservedRun:
    """One observed run: its live observation plus the completed manifest."""

    observation: Observation
    recorder: ManifestRecorder

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry every layer emitted into."""
        return self.observation.metrics

    @property
    def manifest(self) -> RunManifest:
        """The run manifest (complete once the ``with`` block exits)."""
        return self.recorder.manifest

    def metrics_document(self) -> Dict:
        """The JSON document ``--metrics-out`` writes: manifest + metrics."""
        return {
            "schema": 1,
            "manifest": self.manifest.to_dict(),
            "metrics": self.metrics.to_dict(),
        }


@contextlib.contextmanager
def observed_run(
    experiment: str,
    protocols: Sequence[str] = (),
    params: Optional[Dict] = None,
    seed: Optional[int] = None,
    trace: Optional[TraceSink] = None,
) -> Iterator[ObservedRun]:
    """Open the standard observability session around one run.

    Creates a fresh registry, attaches the optional trace sink, and
    records a manifest over the block.  The caller threads
    ``run.observation`` through the Engine (or any measured function) and
    reads ``run.manifest`` / ``run.metrics_document()`` afterwards.
    """
    recorder = ManifestRecorder(
        experiment, protocols=protocols, params=params, seed=seed
    )
    run = ObservedRun(
        observation=Observation(metrics=MetricsRegistry(), trace=trace),
        recorder=recorder,
    )
    with recorder:
        yield run
