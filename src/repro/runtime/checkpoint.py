"""Checkpoint/resume for Engine batches: an append-only result journal.

A thousand-scenario catalog or a multi-hour cluster study must survive
interruption.  The contract that makes this possible is the same one that
makes pooled execution bit-for-bit serial: every
:class:`~repro.runtime.spec.RunSpec` is a *complete* description of its
work, so a completed :class:`~repro.runtime.spec.RunResult` can be keyed
by a stable content digest of the spec and replayed instead of re-executed.

Journal format
--------------
A :class:`CheckpointStore` file is the 6-byte magic ``RPCK1\\n`` followed
by framed records, each::

    !I body-length | !I CRC-32 of body | body = pickle((digest, (value, metrics, trace)))

Records are appended and flushed as results complete (backends deliver
them through ``on_result`` streaming, so a batch interrupted mid-flight
keeps every finished cell).  On open, the store replays the journal; a
truncated or corrupted *trailing* record — the signature of a crash mid-
write — is dropped and the file truncated to the last intact record
rather than failing the resume.  Corruption anywhere earlier is a real
error and raises.

Digests
-------
:func:`spec_digest` hashes a canonical encoding of ``(kind, payload)``
plus the observability mode (a result recorded without metrics must not
satisfy a resume that needs them).  The encoding recurses through
dataclasses, mappings, sequences, and numpy arrays by *value*, so the
digest is stable across processes and runs — unlike ``hash()`` — and two
specs describing the same work always collide onto one journal entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import struct
import warnings
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from .spec import RunResult, RunSpec

#: Journal file magic: format name + version, newline-terminated.
MAGIC = b"RPCK1\n"

_FRAME = struct.Struct("!II")  # body length, CRC-32 of body


class CheckpointCorruptionError(RuntimeError):
    """A journal record before the trailing one failed to decode."""


# -- digests ---------------------------------------------------------------


def _canonical(value: Any, out: "hashlib._Hash") -> None:
    """Feed a canonical, type-tagged encoding of ``value`` to the hash."""
    if value is None or isinstance(value, (bool, int)):
        out.update(f"#{value!r};".encode())
    elif isinstance(value, float):
        out.update(f"f{value!r};".encode())
    elif isinstance(value, str):
        raw = value.encode()
        out.update(b"s%d:" % len(raw) + raw)
    elif isinstance(value, bytes):
        out.update(b"b%d:" % len(value) + value)
    elif isinstance(value, (tuple, list)):
        out.update(b"(")
        for item in value:
            _canonical(item, out)
        out.update(b")")
    elif isinstance(value, (dict,)):
        out.update(b"{")
        for key in sorted(value, key=repr):
            _canonical(key, out)
            _canonical(value[key], out)
        out.update(b"}")
    elif isinstance(value, (set, frozenset)):
        out.update(b"<")
        for item in sorted(value, key=repr):
            _canonical(item, out)
        out.update(b">")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.update(f"@{type(value).__qualname__}".encode())
        out.update(b"{")
        for field in dataclasses.fields(value):
            _canonical(field.name, out)
            _canonical(getattr(value, field.name), out)
        out.update(b"}")
    elif type(value).__module__ == "numpy" and hasattr(value, "tobytes"):
        out.update(
            f"np{getattr(value, 'dtype', '?')}{getattr(value, 'shape', '?')}:".encode()
        )
        out.update(value.tobytes())
    else:
        # Last resort: pickle is deterministic for a fixed value graph
        # within one Python/pickle version, which is also the scope in
        # which a journal may be resumed.
        out.update(f"!{type(value).__qualname__}:".encode())
        out.update(pickle.dumps(value, protocol=4))


def spec_digest(
    spec: RunSpec, want_metrics: bool = False, want_trace: bool = False
) -> str:
    """The stable content key for one spec under one observability mode."""
    digest = hashlib.sha256()
    _canonical(
        ("repro-spec", 1, spec.kind, spec.payload, bool(want_metrics), bool(want_trace)),
        digest,
    )
    return digest.hexdigest()


# -- the journal -----------------------------------------------------------


class CheckpointStore:
    """Digest-keyed append-only journal of completed :class:`RunResult` values.

    >>> import tempfile, pathlib
    >>> path = pathlib.Path(tempfile.mkdtemp()) / "sweep.ckpt"
    >>> with CheckpointStore(path) as store:
    ...     store.record("abc", RunResult("value", {}, []))
    >>> with CheckpointStore(path) as store:
    ...     ("abc" in store, store.get("abc").value, len(store))
    (True, 'value', 1)
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._results: Dict[str, RunResult] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()
        else:
            self.path.write_bytes(MAGIC)
        self._fh = open(self.path, "ab")

    def _iter_records(self, raw: bytes) -> Iterator[Tuple[int, str, RunResult]]:
        """Yield ``(end_offset, digest, result)`` for each intact record.

        Stops (without raising) at a truncated or CRC-corrupt record —
        the caller decides whether that is the tolerated trailing write
        or mid-file damage worth raising over.
        """
        offset = len(MAGIC)
        while offset < len(raw):
            header = raw[offset : offset + _FRAME.size]
            if len(header) < _FRAME.size:
                return
            length, checksum = _FRAME.unpack(header)
            body = raw[offset + _FRAME.size : offset + _FRAME.size + length]
            if len(body) < length or zlib.crc32(body) != checksum:
                return
            try:
                digest, payload = pickle.loads(body)
                result = RunResult(*payload)
            except Exception:
                return
            offset += _FRAME.size + length
            yield offset, digest, result

    def _load(self) -> None:
        raw = self.path.read_bytes()
        if raw[: len(MAGIC)] != MAGIC:
            raise CheckpointCorruptionError(
                f"{self.path} is not a repro checkpoint journal "
                f"(bad magic {raw[:len(MAGIC)]!r})"
            )
        good_end = len(MAGIC)
        for end, digest, result in self._iter_records(raw):
            self._results[digest] = result
            good_end = end
        if good_end < len(raw):
            # A crash mid-append leaves a torn trailing record; drop it so
            # the journal is clean for the appends this run will make.
            warnings.warn(
                f"checkpoint {self.path}: dropping {len(raw) - good_end} "
                "trailing bytes (torn record from an interrupted run)",
                RuntimeWarning,
                stacklevel=2,
            )
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)

    # -- recording ---------------------------------------------------------

    def record(self, digest: str, result: RunResult) -> None:
        """Append one completed result and flush it to disk."""
        body = pickle.dumps((digest, tuple(result)), protocol=4)
        self._fh.write(_FRAME.pack(len(body), zlib.crc32(body)) + body)
        self._fh.flush()
        self._results[digest] = result

    # -- lookup ------------------------------------------------------------

    def get(self, digest: str) -> Optional[RunResult]:
        """The journaled result for ``digest``, or ``None``."""
        return self._results.get(digest)

    def __contains__(self, digest: str) -> bool:
        return digest in self._results

    def __len__(self) -> int:
        return len(self._results)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.path)!r}, completed={len(self)})"
