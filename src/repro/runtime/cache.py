"""The bounded shared result/trace cache (LRU, introspectable).

One process-wide :class:`LRUCache` memoises the seeded arrival traces every
entry point shares (see :mod:`repro.runtime.seeds`).  Unlike the unbounded
dict it replaces, the cache evicts least-recently-used entries beyond a
configurable bound (``REPRO_TRACE_CACHE_SIZE`` / ``RuntimeConfig``), so
long multi-figure sweeps hold a flat amount of trace memory.

:func:`cache_info` exposes hit/miss/size counters in the style of
``functools.lru_cache``; :func:`record_cache_metrics` copies them into a
:class:`~repro.obs.registry.MetricsRegistry` as gauges for callers that
want cache behaviour in their metrics documents.  The Engine does **not**
attach them automatically: cache hits differ between serial runs (one
process, warm cache) and pooled runs (cold per-worker caches), and the
merged observability state must stay bit-for-bit identical across the two.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, NamedTuple, Optional

from .config import DEFAULT_CONFIG


class CacheInfo(NamedTuple):
    """Point-in-time cache statistics (``functools.lru_cache`` style)."""

    hits: int
    misses: int
    size: int
    max_entries: int


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    >>> cache = LRUCache(max_entries=2)
    >>> cache.get_or_create("a", lambda: 1)
    1
    >>> cache.get_or_create("b", lambda: 2)
    2
    >>> cache.get_or_create("a", lambda: -1)    # hit: factory not called
    1
    >>> cache.get_or_create("c", lambda: 3)     # evicts "b" (least recent)
    3
    >>> cache.info()
    CacheInfo(hits=1, misses=3, size=2, max_entries=2)
    """

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        if self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """The cached value for ``key``, creating it via ``factory`` on miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._hits += 1
            self._entries.move_to_end(key)
            return entry
        self._misses += 1
        entry = self._entries[key] = factory()
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    def resize(self, max_entries: int) -> None:
        """Change the bound, evicting oldest entries if now over it."""
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def info(self) -> CacheInfo:
        """Current hit/miss/size counters."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            size=len(self._entries),
            max_entries=self.max_entries,
        )


#: The process-wide arrival-trace cache, bounded per the runtime config.
ARRIVAL_CACHE = LRUCache(DEFAULT_CONFIG.resolve_trace_cache_size())


def cache_info() -> CacheInfo:
    """Statistics of the shared arrival-trace cache (``runtime.cache_info()``)."""
    return ARRIVAL_CACHE.info()


def clear_cache() -> None:
    """Drop every memoised arrival trace (tests, memory-sensitive callers)."""
    ARRIVAL_CACHE.clear()


def configure_cache(max_entries: Optional[int] = None) -> None:
    """Re-bound the shared cache (``None`` re-reads config/environment)."""
    ARRIVAL_CACHE.resize(DEFAULT_CONFIG.resolve_trace_cache_size(max_entries))


def record_cache_metrics(metrics) -> None:
    """Publish :func:`cache_info` as ``runtime.cache.*`` gauges.

    Opt-in: see the module docstring for why the Engine never calls this
    on the observation it merges worker state into.
    """
    info = cache_info()
    metrics.gauge("runtime.cache.hits").set(info.hits)
    metrics.gauge("runtime.cache.misses").set(info.misses)
    metrics.gauge("runtime.cache.size").set(info.size)
    metrics.gauge("runtime.cache.max_entries").set(info.max_entries)
