"""The local process-pool backend (the pre-backend ``pool.run_ordered``).

Semantics carried over from the original single pool, plus one fix:

* **Order-preserving.**  Results return in task order regardless of
  completion order — what makes pooled observability merges deterministic.
* **Serial short-circuit.**  One worker (or a single task) never touches
  pool machinery.
* **Graceful degradation at spawn.**  Environments that forbid pools
  (restricted sandboxes, missing semaphores) raise ``OSError`` /
  ``PermissionError`` when the executor starts; the batch then runs
  serially instead of failing.
* **Graceful degradation mid-batch.**  A worker dying under the batch
  (OOM-kill, segfault) used to surface as ``BrokenProcessPool`` and abort
  the whole run; now the batch is re-run serially once, the event is
  counted in :attr:`~repro.runtime.backends.base.ExecutionBackend.degraded_events`,
  and the Engine reports it as the ``runtime.pool.degraded`` metric.
  Tasks are deterministic pure functions of their picklable arguments
  (the bit-for-bit serial/parallel contract), so the re-run reproduces
  any already-collected results exactly.

Exceptions raised *by the task function* propagate to the caller — only
infrastructure failure degrades.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Set

from .base import ExecutionBackend, ResultCallback, Task

#: Sentinel marking a task whose result has not been collected yet.
_PENDING = object()


class ProcessPoolBackend(ExecutionBackend):
    """Fans a batch across ``n_jobs`` local worker processes.

    ``fn`` must be a module-level callable and every task tuple picklable
    (worker processes re-import and re-invoke them).
    """

    name = "process"
    supports_remote = False

    def __init__(self, n_jobs: int):
        self.n_jobs = max(1, int(n_jobs))
        self.degraded_events = 0

    def submit_ordered(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Task],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Any]:
        if self.n_jobs == 1 or len(tasks) <= 1:
            return self.run_serial(fn, tasks, on_result)
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool

        workers = min(self.n_jobs, len(tasks))
        results: List[Any] = [_PENDING] * len(tasks)
        delivered: Set[int] = set()
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(fn, *task): index
                    for index, task in enumerate(tasks)
                }
                for future in as_completed(futures):
                    index = futures[future]
                    results[index] = future.result()
                    if on_result is not None:
                        on_result(index, results[index])
                        delivered.add(index)
            return results
        except (OSError, PermissionError, BrokenProcessPool):
            # Spawn failure or a worker dying mid-batch: run the batch
            # serially once rather than aborting.  Determinism makes the
            # re-run reproduce every already-collected result bit for bit;
            # `delivered` keeps journals from double-recording them.
            self.degraded_events += 1
            return self.run_serial(fn, tasks, on_result, skip=delivered)

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(n_jobs={self.n_jobs})"
