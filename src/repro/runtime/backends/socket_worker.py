"""The socket-worker backend: a TCP coordinator fed by worker processes.

This is the multi-host execution path.  The backend owns a listening
socket; any number of ``repro-cli worker --connect HOST:PORT`` processes —
on this box or others sharing the code and Python version — dial in,
register, and then execute tasks streamed to them as length-prefixed
pickle messages:

.. code-block:: text

    worker → coordinator   {"type": "register", "pid": ...}
    coordinator → worker   {"type": "task", "batch": b, "index": i,
                            "fn": callable, "args": tuple}
    worker → coordinator   {"type": "result", "batch": b, "index": i,
                            "ok": bool, "value"/"error": ...}
    coordinator → worker   {"type": "shutdown"}

Every frame is ``struct('!Q')`` body length followed by a pickle of one
dict.  ``fn`` is pickled *by reference* (a module-level callable — in
practice :func:`repro.runtime.tasks.execute_spec`), so workers only need
the package importable; results are whole :class:`RunResult` values, so
the Engine's task-order observability merge works unchanged.

Failure handling mirrors the process pool's discipline:

* a worker that disconnects mid-task has its task **reassigned** to the
  next idle worker (up to ``max_retries`` per task, then the coordinator
  runs the task inline — a task that keeps killing workers must not loop
  forever);
* if *every* worker is gone, the remaining tasks run inline in the
  coordinator and the event is counted in ``degraded_events``;
* an exception raised *inside* the task propagates to the caller as
  :class:`RemoteTaskError` carrying the worker's traceback.

For local use the backend can spawn its own loopback workers
(``spawn_workers=N`` — what ``--backend socket`` does); for multi-host
runs, bind a public address and start workers by hand.  The pickle
protocol implies the usual trust model: only run workers and coordinators
on hosts you control.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import selectors
import socket
import struct
import subprocess
import sys
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...errors import ConfigurationError
from .base import ExecutionBackend, ResultCallback, Task

_LENGTH = struct.Struct("!Q")

#: Sentinel marking a task whose result has not been collected yet.
_PENDING = object()


class RemoteTaskError(RuntimeError):
    """A task function raised on a worker; carries the remote traceback."""


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; raises on malformed input."""
    host, separator, port = address.rpartition(":")
    if not separator or not host:
        raise ConfigurationError(
            f"worker address must be HOST:PORT, got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ConfigurationError(
            f"worker address port must be an integer, got {address!r}"
        ) from None


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """One length-prefixed pickle frame."""
    body = pickle.dumps(message, protocol=4)
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Exactly ``n`` bytes; ``None`` on clean EOF before the first byte."""
    chunks: List[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """One frame, or ``None`` on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    body = _recv_exact(sock, length)
    if body is None:
        raise ConnectionError("peer closed between header and body")
    return pickle.loads(body)


class SocketWorkerBackend(ExecutionBackend):
    """Coordinates registered TCP workers; see the module docstring.

    Parameters
    ----------
    host, port:
        Bind address.  The default binds loopback on an ephemeral port
        (read :attr:`address` to learn it); bind ``"0.0.0.0"`` with a
        fixed port for multi-host runs.
    spawn_workers:
        Launch this many local ``repro-cli worker`` subprocesses pointed
        at the coordinator (0 = external workers only).
    min_workers:
        Registrations to wait for before dispatching the first batch.
        Defaults to ``spawn_workers`` when spawning, else 1.
    register_timeout:
        Seconds to wait for ``min_workers``; on expiry the batch proceeds
        with whatever registered.
    require_workers:
        What to do when the deadline expires with *zero* registrations.
        ``True`` raises :class:`~repro.errors.ConfigurationError` — the
        default for external-worker mode (``spawn_workers=0``), where
        silently computing the whole batch inline on the coordinator
        would defeat the user's explicit distribution request.  ``False``
        degrades to inline execution (counted in ``degraded_events``) —
        the default when the backend spawns its own loopback workers,
        where a spawn hiccup should not abort the run.
    max_retries:
        Reassignments per task before the coordinator runs it inline.
    """

    name = "socket"
    supports_remote = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: int = 0,
        min_workers: Optional[int] = None,
        register_timeout: float = 60.0,
        require_workers: Optional[bool] = None,
        max_retries: int = 2,
    ):
        self.degraded_events = 0
        self.spawn_workers = max(0, int(spawn_workers))
        self.min_workers = (
            min_workers
            if min_workers is not None
            else (self.spawn_workers if self.spawn_workers else 1)
        )
        self.register_timeout = register_timeout
        self.require_workers = (
            require_workers
            if require_workers is not None
            else self.spawn_workers == 0
        )
        self.max_retries = max(0, int(max_retries))
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._selector.register(self._listener, selectors.EVENT_READ)
        self._workers: List[socket.socket] = []
        self._spawned: List[subprocess.Popen] = []
        self._batch = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The coordinator's actual (host, port)."""
        return self._listener.getsockname()[:2]

    def _spawn_local(self, count: int) -> None:
        """Launch loopback ``repro-cli worker`` subprocesses."""
        host, port = self.address
        connect_host = "127.0.0.1" if host in ("0.0.0.0", "::") else host
        source_root = pathlib.Path(__file__).resolve().parents[3]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(source_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        for _ in range(count):
            self._spawned.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.cli",
                        "worker",
                        "--connect",
                        f"{connect_host}:{port}",
                    ],
                    stdout=subprocess.DEVNULL,
                    env=env,
                )
            )

    def _accept_worker(self) -> None:
        """Complete one registration handshake on the listener."""
        try:
            connection, _ = self._listener.accept()
        except (BlockingIOError, OSError):
            return
        connection.settimeout(10.0)
        try:
            hello = recv_message(connection)
        except (OSError, ConnectionError, pickle.UnpicklingError, EOFError):
            connection.close()
            return
        if not hello or hello.get("type") != "register":
            connection.close()
            return
        connection.settimeout(None)
        self._workers.append(connection)
        self._selector.register(connection, selectors.EVENT_READ)

    def _drop_worker(self, worker: socket.socket) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            self._selector.unregister(worker)
        except (KeyError, ValueError):
            pass
        worker.close()

    def _ensure_workers(self) -> None:
        """Spawn (once) and wait for ``min_workers`` registrations.

        With ``require_workers`` (the external-worker default), a deadline
        expiring with an *empty* fleet raises
        :class:`~repro.errors.ConfigurationError` instead of silently
        running the batch inline on the coordinator.
        """
        if self.spawn_workers and not self._spawned:
            self._spawn_local(self.spawn_workers)
        deadline = time.monotonic() + self.register_timeout
        while len(self._workers) < self.min_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            for key, _ in self._selector.select(timeout=min(remaining, 0.2)):
                if key.fileobj is self._listener:
                    self._accept_worker()
        if not self._workers and self.require_workers:
            host, port = self.address
            raise ConfigurationError(
                f"socket backend: no workers registered on {host}:{port} "
                f"within {self.register_timeout:.0f}s (expected "
                f"{self.min_workers}); start them with "
                f"'repro-cli worker --connect {host}:{port}', raise "
                "--register-timeout, or pass require_workers=False to "
                "allow degraded inline execution"
            )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in list(self._workers):
            try:
                send_message(worker, {"type": "shutdown"})
            except OSError:
                pass
            self._drop_worker(worker)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()
        for process in self._spawned:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    # -- dispatch ----------------------------------------------------------

    def _run_inline(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Task],
        index: int,
        results: List[Any],
        on_result: Optional[ResultCallback],
    ) -> None:
        results[index] = fn(*tasks[index])
        if on_result is not None:
            on_result(index, results[index])

    def submit_ordered(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Task],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Any]:
        if self._closed:
            raise ConfigurationError("SocketWorkerBackend is closed")
        if not tasks:
            return []
        self._ensure_workers()
        self._batch += 1
        batch = self._batch
        results: List[Any] = [_PENDING] * len(tasks)
        pending = deque(range(len(tasks)))
        attempts = [0] * len(tasks)
        inflight: Dict[socket.socket, int] = {}
        idle = list(self._workers)
        remaining = len(tasks)

        def assign() -> None:
            while pending and idle:
                index = pending.popleft()
                worker = idle.pop()
                try:
                    send_message(
                        worker,
                        {
                            "type": "task",
                            "batch": batch,
                            "index": index,
                            "fn": fn,
                            "args": tuple(tasks[index]),
                        },
                    )
                except OSError:
                    self._drop_worker(worker)
                    pending.appendleft(index)
                    continue
                inflight[worker] = index

        def reassign(index: int) -> None:
            nonlocal remaining
            attempts[index] += 1
            if attempts[index] > self.max_retries:
                # The task keeps losing its worker; stop betting on the
                # fleet and run it here so the batch still completes.
                self.degraded_events += 1
                self._run_inline(fn, tasks, index, results, on_result)
                remaining -= 1
            else:
                pending.append(index)

        while remaining:
            assign()
            if not self._workers and remaining:
                # Every worker is gone: finish inline rather than hanging.
                self.degraded_events += 1
                leftovers = sorted(set(pending) | set(inflight.values()))
                pending.clear()
                inflight.clear()
                for index in leftovers:
                    self._run_inline(fn, tasks, index, results, on_result)
                    remaining -= 1
                break
            for key, _ in self._selector.select(timeout=0.5):
                sock = key.fileobj
                if sock is self._listener:
                    self._accept_worker()
                    for worker in self._workers:
                        if worker not in inflight and worker not in idle:
                            idle.append(worker)
                    continue
                try:
                    message = recv_message(sock)
                except (OSError, ConnectionError, pickle.UnpicklingError, EOFError):
                    message = None
                if message is None:
                    lost = inflight.pop(sock, None)
                    if sock in idle:
                        idle.remove(sock)
                    self._drop_worker(sock)
                    if lost is not None:
                        reassign(lost)
                    continue
                if message.get("type") != "result":
                    continue
                inflight.pop(sock, None)
                if sock in self._workers and sock not in idle:
                    idle.append(sock)
                if message.get("batch") != batch:
                    continue  # stale result from an aborted batch
                index = message["index"]
                if not message.get("ok"):
                    raise RemoteTaskError(
                        f"task {index} failed on a socket worker:\n"
                        f"{message.get('error', '<no traceback>')}"
                    )
                if results[index] is _PENDING:
                    results[index] = message["value"]
                    if on_result is not None:
                        on_result(index, message["value"])
                    remaining -= 1
        return results

    def __repr__(self) -> str:
        host, port = self.address if not self._closed else ("closed", 0)
        return (
            f"SocketWorkerBackend({host}:{port}, workers={len(self._workers)}, "
            f"spawn={self.spawn_workers})"
        )


def worker_main(address: str) -> int:
    """The ``repro-cli worker`` loop: register, execute tasks, repeat.

    Connects to the coordinator at ``HOST:PORT``, executes each streamed
    task, and replies with its result (or the formatted traceback on
    failure).  Returns when the coordinator shuts it down or the
    connection closes.
    """
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=30.0)
    sock.settimeout(None)
    try:
        send_message(sock, {"type": "register", "pid": os.getpid()})
        while True:
            message = recv_message(sock)
            if message is None or message.get("type") == "shutdown":
                return 0
            if message.get("type") != "task":
                continue
            try:
                reply = {
                    "type": "result",
                    "batch": message.get("batch"),
                    "index": message["index"],
                    "ok": True,
                    "value": message["fn"](*message["args"]),
                }
            except BaseException:  # the traceback travels; the worker lives
                reply = {
                    "type": "result",
                    "batch": message.get("batch"),
                    "index": message["index"],
                    "ok": False,
                    "error": traceback.format_exc(),
                }
            send_message(sock, reply)
    finally:
        sock.close()
