"""The execution-backend interface: where batches of tasks actually run.

An :class:`ExecutionBackend` turns ``(fn, tasks)`` into an ordered result
list.  The Engine never touches pools or sockets itself — it resolves one
backend (explicit instance > name > ``REPRO_BACKEND`` > worker-count
default) and calls :meth:`~ExecutionBackend.submit_ordered`.  Three
implementations ship with the runtime:

* :class:`~repro.runtime.backends.serial.SerialBackend` — a plain loop in
  the calling process (the historical ``n_jobs == 1`` short-circuit);
* :class:`~repro.runtime.backends.process_pool.ProcessPoolBackend` — the
  shared local process pool, with graceful serial degradation on spawn
  failure and on mid-batch worker death;
* :class:`~repro.runtime.backends.socket_worker.SocketWorkerBackend` — a
  TCP coordinator fed by ``repro-cli worker`` processes (same box or
  remote), with reassignment on worker loss.

Contract
--------
``submit_ordered(fn, tasks, on_result=None)`` applies ``fn(*task)`` to
every task and returns the results **in task order** regardless of
completion order.  ``on_result(index, result)`` — when given — fires once
per task *as results complete* (possibly out of order); the checkpoint
layer journals through it so an interrupted batch keeps its finished
cells.  Exceptions raised by ``fn`` itself propagate to the caller;
infrastructure failures (a dying worker) are the backend's to absorb,
counted in :attr:`~ExecutionBackend.degraded_events`.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ...errors import ConfigurationError

Task = Tuple[Any, ...]
ResultCallback = Callable[[int, Any], None]


class ExecutionBackend(abc.ABC):
    """Executes ordered task batches; see the module docstring for the contract."""

    #: Registry name (what ``--backend`` and ``REPRO_BACKEND`` accept).
    name: str = "abstract"

    #: Whether workers may live outside this process (other hosts included).
    supports_remote: bool = False

    #: Infrastructure failures absorbed so far (spawn failure, worker death).
    degraded_events: int = 0

    @abc.abstractmethod
    def submit_ordered(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Task],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Any]:
        """Apply ``fn(*task)`` to every task, results in task order."""

    def close(self) -> None:
        """Release workers/sockets; the backend is unusable afterwards."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def run_serial(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Task],
        on_result: Optional[ResultCallback] = None,
        skip: Optional[set] = None,
    ) -> List[Any]:
        """The shared in-process fallback loop every backend degrades to.

        ``skip`` lists indexes whose ``on_result`` already fired (a batch
        re-run after partial delivery must not journal a cell twice).
        """
        results: List[Any] = []
        for index, task in enumerate(tasks):
            result = fn(*task)
            results.append(result)
            if on_result is not None and (skip is None or index not in skip):
                on_result(index, result)
        return results


def resolve_backend(
    backend: Any,
    n_jobs: int = 1,
) -> ExecutionBackend:
    """An :class:`ExecutionBackend` instance from a name, instance, or ``None``.

    ``None`` picks the historical default: serial for one worker, the
    local process pool otherwise.  Accepted names: ``"serial"``,
    ``"process"`` (alias ``"process-pool"``), ``"socket"`` (spawns
    ``max(1, n_jobs)`` loopback workers; construct
    :class:`SocketWorkerBackend` directly for multi-host runs).
    """
    from .process_pool import ProcessPoolBackend
    from .serial import SerialBackend
    from .socket_worker import SocketWorkerBackend

    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        if n_jobs == 1:
            return SerialBackend()
        return ProcessPoolBackend(n_jobs)
    if backend == "serial":
        return SerialBackend()
    if backend in ("process", "process-pool"):
        return ProcessPoolBackend(max(1, n_jobs))
    if backend == "socket":
        return SocketWorkerBackend(spawn_workers=max(1, n_jobs))
    raise ConfigurationError(
        f"unknown execution backend {backend!r}; "
        "known: serial, process, socket (or an ExecutionBackend instance)"
    )
