"""repro.runtime.backends — where task batches actually execute.

The one corner of the codebase allowed to import ``concurrent.futures``,
``multiprocessing``, or ``socket`` (lint rule RT100 / ruff TID251):
everything else submits :class:`~repro.runtime.spec.RunSpec` batches to
the Engine, which resolves exactly one :class:`ExecutionBackend`:

* :class:`SerialBackend` — inline loop, the determinism baseline;
* :class:`ProcessPoolBackend` — local process pool with graceful serial
  degradation (spawn failure *and* mid-batch worker death);
* :class:`SocketWorkerBackend` — TCP coordinator + ``repro-cli worker``
  processes, local or remote, with task reassignment on worker loss.

All three satisfy the same contract — results in task order, bit-for-bit
identical to serial — pinned by ``tests/runtime/test_backends.py``.
"""

from .base import ExecutionBackend, resolve_backend
from .process_pool import ProcessPoolBackend
from .serial import SerialBackend
from .socket_worker import (
    RemoteTaskError,
    SocketWorkerBackend,
    parse_address,
    worker_main,
)

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "RemoteTaskError",
    "SerialBackend",
    "SocketWorkerBackend",
    "parse_address",
    "resolve_backend",
    "worker_main",
]
