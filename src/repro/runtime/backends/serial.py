"""The serial backend: a plain loop in the calling process.

This is the historical Engine short-circuit path promoted to a backend:
no pickling, no subprocesses, no import cost — and the reference
implementation every other backend must match bit for bit.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from .base import ExecutionBackend, ResultCallback, Task


class SerialBackend(ExecutionBackend):
    """Runs every task inline, in order; the determinism baseline."""

    name = "serial"
    supports_remote = False

    def submit_ordered(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Task],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Any]:
        return self.run_serial(fn, tasks, on_result)

    def __repr__(self) -> str:
        return "SerialBackend()"
