"""repro.runtime — the unified execution core.

One pipeline under every entry point::

    RunSpec  --Engine-->  RunResult
      |                      |
      seeds (deterministic derivation)   observability (merged in task order)
      cache (bounded shared LRU)         pool (the one process pool)

Figure sweeps, cluster scenario batches, ablations, the catalog study, the
CLI, and the benches all describe their work as :class:`RunSpec` batches
and execute them through one :class:`Engine`, which provides parallelism
(``REPRO_SWEEP_JOBS`` / ``n_jobs``), bounded trace caching, deterministic
seed derivation, and uniform metrics/manifest/trace threading — bit-for-bit
identical results in serial and pooled modes.

See ``docs/ARCHITECTURE.md`` for the layering diagram and the migration
notes for the pre-runtime entry points
(:mod:`repro.experiments.parallel` is now a thin shim over this package).
"""

from .cache import (
    ARRIVAL_CACHE,
    CacheInfo,
    LRUCache,
    cache_info,
    clear_cache,
    configure_cache,
    record_cache_metrics,
)
from .config import (
    DEFAULT_CONFIG,
    DEFAULT_SEED,
    N_JOBS_ENV,
    TRACE_CACHE_ENV,
    RuntimeConfig,
    resolve_n_jobs,
)
from .engine import Engine
from .observing import ObservedRun, observed_run
from .seeds import arrival_trace, derive_stream, replication_seed
from .spec import RunResult, RunSpec
from .tasks import BUILTIN_KINDS, execute_spec, register_kind, resolve_kind

__all__ = [
    "ARRIVAL_CACHE",
    "BUILTIN_KINDS",
    "CacheInfo",
    "DEFAULT_CONFIG",
    "DEFAULT_SEED",
    "Engine",
    "LRUCache",
    "N_JOBS_ENV",
    "ObservedRun",
    "RunResult",
    "RunSpec",
    "RuntimeConfig",
    "TRACE_CACHE_ENV",
    "arrival_trace",
    "cache_info",
    "clear_cache",
    "configure_cache",
    "derive_stream",
    "execute_spec",
    "observed_run",
    "record_cache_metrics",
    "register_kind",
    "replication_seed",
    "resolve_kind",
    "resolve_n_jobs",
]
