"""repro.runtime — the unified execution core.

One pipeline under every entry point::

    RunSpec  --Engine-->  RunResult
      |          |             |
      |       backend          observability (merged in task order)
      |       (serial ·        checkpoint (digest-keyed result journal)
      |        process pool ·
      |        socket workers)
      seeds (deterministic derivation) · cache (bounded shared LRU)

Figure sweeps, cluster scenario batches, ablations, the catalog study, the
CLI, and the benches all describe their work as :class:`RunSpec` batches
and execute them through one :class:`Engine`, which resolves exactly one
:class:`~repro.runtime.backends.base.ExecutionBackend`
(``--backend``/``REPRO_BACKEND``/worker count), journals completed results
when given a :class:`CheckpointStore`, and threads metrics/manifest/trace
state uniformly — bit-for-bit identical results on every backend, and on
a resumed run versus an uninterrupted one.

See ``docs/ARCHITECTURE.md`` for the layering diagram and the migration
notes for the pre-runtime entry points
(:mod:`repro.experiments.parallel` is now a thin shim over this package).
"""

from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    RemoteTaskError,
    SerialBackend,
    SocketWorkerBackend,
    resolve_backend,
)
from .cache import (
    ARRIVAL_CACHE,
    CacheInfo,
    LRUCache,
    cache_info,
    clear_cache,
    configure_cache,
    record_cache_metrics,
)
from .checkpoint import CheckpointStore, spec_digest
from .config import (
    BACKEND_ENV,
    DEFAULT_CONFIG,
    DEFAULT_SEED,
    N_JOBS_ENV,
    TRACE_CACHE_ENV,
    RuntimeConfig,
    resolve_n_jobs,
)
from .engine import Engine
from .observing import ObservedRun, observed_run
from .seeds import arrival_trace, derive_stream, replication_seed
from .spec import RunResult, RunSpec
from .tasks import (
    BUILTIN_KINDS,
    execute_spec,
    execution_count,
    register_kind,
    reset_execution_count,
    resolve_kind,
)

__all__ = [
    "ARRIVAL_CACHE",
    "BACKEND_ENV",
    "BUILTIN_KINDS",
    "CacheInfo",
    "CheckpointStore",
    "DEFAULT_CONFIG",
    "DEFAULT_SEED",
    "Engine",
    "ExecutionBackend",
    "LRUCache",
    "N_JOBS_ENV",
    "ObservedRun",
    "ProcessPoolBackend",
    "RemoteTaskError",
    "RunResult",
    "RunSpec",
    "RuntimeConfig",
    "SerialBackend",
    "SocketWorkerBackend",
    "TRACE_CACHE_ENV",
    "arrival_trace",
    "cache_info",
    "clear_cache",
    "configure_cache",
    "derive_stream",
    "execute_spec",
    "execution_count",
    "observed_run",
    "record_cache_metrics",
    "register_kind",
    "replication_seed",
    "reset_execution_count",
    "resolve_backend",
    "resolve_kind",
    "resolve_n_jobs",
    "spec_digest",
]
