"""Runtime knobs, consolidated: one place reads the environment.

Every execution-layer setting — worker counts, the arrival-trace cache
bound, the default sweep horizons — lives here, with one documented
precedence chain::

    environment variable  <  RuntimeConfig field  <  explicit argument

i.e. an explicit function argument always wins, an unset argument falls
back to the :class:`RuntimeConfig` object in play, and an unset config
field falls back to the environment (then to the baked-in default).
Before this module existed, ``experiments.parallel.resolve_n_jobs`` and
the cluster scenario pool each read ``REPRO_SWEEP_JOBS`` independently;
now both route through :meth:`RuntimeConfig.resolve_n_jobs`.

Environment variables
---------------------
``REPRO_SWEEP_JOBS``
    Worker processes for any :class:`~repro.runtime.engine.Engine` fan-out
    (``-1`` means "all cores"; unset means serial).
``REPRO_BACKEND``
    Default execution backend name (``serial`` or ``process``; ``socket``
    needs addresses, so it is CLI/constructor-only).
``REPRO_TRACE_CACHE_SIZE``
    Maximum entries kept by the shared arrival-trace cache
    (:mod:`repro.runtime.cache`); default 64.

The environment is *advisory*: a malformed value (``REPRO_SWEEP_JOBS=4x``,
an unknown backend name) must never blow up deep inside an experiment the
user launched without thinking about the runtime, so it falls back to the
baked-in default with a :class:`RuntimeWarning`.  Explicit arguments and
config fields are code, and invalid ones raise
:class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError

#: Environment variable naming the default Engine worker count.
N_JOBS_ENV = "REPRO_SWEEP_JOBS"

#: Environment variable naming the default execution backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Environment variable bounding the shared arrival-trace cache.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE_SIZE"

#: Environment variable bounding each serving session's send queue (frames).
SERVE_QUEUE_ENV = "REPRO_SERVE_QUEUE_FRAMES"

#: Backend names the environment may select (socket needs addresses, so
#: it is constructor/CLI-only; see repro.runtime.backends).
ENV_BACKEND_NAMES = ("serial", "process", "process-pool")

#: Serial execution when neither argument, config, nor environment say more.
DEFAULT_N_JOBS = 1

#: Default bound on the shared (seed, rate, horizon) arrival-trace cache.
DEFAULT_TRACE_CACHE_SIZE = 64

# -- default sweep horizons (shared by SweepConfig and the CLI) ------------

#: Minimum simulated hours per sweep point (paper-scale runs).
DEFAULT_BASE_HOURS = 40.0

#: Minimum simulated requests per sweep point (horizons stretch at low rates).
DEFAULT_MIN_REQUESTS = 400

#: Leading fraction of every horizon discarded as warmup.
DEFAULT_WARMUP_FRACTION = 0.1

#: The repository-wide default workload seed (the paper's publication year).
DEFAULT_SEED = 2001

#: ``SweepConfig.quick()`` horizons: rates, base hours, minimum requests.
QUICK_RATES_PER_HOUR = (2.0, 50.0, 500.0)
QUICK_BASE_HOURS = 6.0
QUICK_MIN_REQUESTS = 40

# -- live serving defaults (repro.serve) -----------------------------------

#: Frames a serving session's send queue may buffer before the daemon
#: evicts the (slow) client; overridable per daemon and via the
#: ``REPRO_SERVE_QUEUE_FRAMES`` environment variable.
DEFAULT_SERVE_QUEUE_FRAMES = 64


def _env_int(name: str) -> Optional[int]:
    """The environment variable as an int; ``None`` when unset/empty.

    Malformed values (``"4x"``, ``"two"``) warn and return ``None`` —
    the environment is advisory (see the module docstring), and a typo'd
    shell export must not abort an experiment mid-sweep.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring {name}={raw!r}: not an integer; using the default",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution settings for one :class:`~repro.runtime.engine.Engine`.

    Unset fields (``None``) defer to the environment, then to the defaults
    above; see the module docstring for the full precedence chain.

    >>> RuntimeConfig(n_jobs=2).resolve_n_jobs()
    2
    >>> RuntimeConfig(n_jobs=2).resolve_n_jobs(3)   # explicit argument wins
    3
    """

    n_jobs: Optional[int] = None
    trace_cache_size: Optional[int] = None
    backend: Optional[str] = None

    def resolve_n_jobs(self, explicit: Optional[int] = None) -> int:
        """The effective worker count (explicit > config > env > serial).

        Negative values mean "all available cores"; zero is rejected —
        except from the environment, where any invalid value (malformed
        or zero) warns and falls back to serial (advisory env contract).
        """
        value = explicit if explicit is not None else self.n_jobs
        from_env = False
        if value is None:
            value = _env_int(N_JOBS_ENV)
            from_env = True
        if value is None:
            return DEFAULT_N_JOBS
        value = int(value)
        if value == 0:
            if from_env:
                warnings.warn(
                    f"ignoring {N_JOBS_ENV}=0: worker count must be >= 1 "
                    "or negative (all cores); running serial",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return DEFAULT_N_JOBS
            raise ConfigurationError("n_jobs must be >= 1 or negative (all cores)")
        if value < 0:
            return os.cpu_count() or 1
        return value

    def resolve_backend(self, explicit: Optional[str] = None) -> Optional[str]:
        """The effective backend *name* (explicit > config > env > ``None``).

        ``None`` means "let the Engine pick from the worker count".  An
        unknown name from the environment warns and is ignored; explicit
        and config values are validated by
        :func:`repro.runtime.backends.resolve_backend` when the Engine
        instantiates them.
        """
        value = explicit if explicit is not None else self.backend
        if value is not None:
            return value
        raw = os.environ.get(BACKEND_ENV, "").strip().lower()
        if not raw:
            return None
        if raw not in ENV_BACKEND_NAMES:
            warnings.warn(
                f"ignoring {BACKEND_ENV}={raw!r}: not one of "
                f"{'/'.join(ENV_BACKEND_NAMES)}; using the worker-count default",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return raw

    def resolve_trace_cache_size(self, explicit: Optional[int] = None) -> int:
        """The effective arrival-trace cache bound (>= 1)."""
        value = explicit
        if value is None:
            value = self.trace_cache_size
        if value is None:
            value = _env_int(TRACE_CACHE_ENV)
        if value is None:
            return DEFAULT_TRACE_CACHE_SIZE
        value = int(value)
        if value < 1:
            raise ConfigurationError(
                f"trace cache size must be >= 1, got {value}"
            )
        return value


#: The process-wide default configuration (all fields deferred to env).
DEFAULT_CONFIG = RuntimeConfig()


def resolve_n_jobs(
    n_jobs: Optional[int] = None, config: Optional[RuntimeConfig] = None
) -> int:
    """Resolve a worker count outside any Engine (legacy call sites).

    Same semantics as :meth:`RuntimeConfig.resolve_n_jobs`; ``config``
    defaults to :data:`DEFAULT_CONFIG`.
    """
    return (config if config is not None else DEFAULT_CONFIG).resolve_n_jobs(n_jobs)
