"""Deprecated shim over :mod:`repro.runtime.backends` (the pre-backend API).

Before the backend refactor this module *was* the one process pool; every
fan-out funnelled through :func:`run_ordered`.  The pool machinery now
lives in :class:`repro.runtime.backends.ProcessPoolBackend` (with the same
order-preserving, serial-short-circuit, degrade-gracefully semantics), and
this module keeps the old entry point for legacy call sites such as
:mod:`repro.experiments.parallel`.  New code should hand an
:class:`~repro.runtime.backends.base.ExecutionBackend` to the Engine.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple


def run_ordered(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    n_jobs: int,
) -> List[Any]:
    """Apply ``fn(*task)`` to every task, preserving input order.

    ``fn`` must be a module-level callable and every task tuple picklable
    when ``n_jobs > 1`` (worker processes re-import and re-invoke them).
    """
    from .backends import resolve_backend

    backend = resolve_backend(None, n_jobs if len(tasks) > 1 else 1)
    try:
        return backend.submit_ordered(fn, list(tasks))
    finally:
        backend.close()
