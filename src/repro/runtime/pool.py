"""The one process-pool in the codebase.

Every fan-out — figure sweeps, cluster scenario batches, benches — funnels
through :func:`run_ordered`.  No other module imports
``concurrent.futures`` or ``multiprocessing`` (``tools/lint.py`` enforces
this), so pool policy — worker caps, degradation, future backends — has
exactly one home.

Semantics:

* **Order-preserving.**  Results come back in task order regardless of
  completion order, which is what makes pooled observability merges
  deterministic.
* **Serial short-circuit.**  ``n_jobs == 1`` (or a single task) never
  touches pool machinery: no pickling, no subprocesses, no import cost.
* **Graceful degradation.**  Environments that forbid pools (restricted
  sandboxes, missing semaphores) raise ``OSError``/``PermissionError`` at
  spawn; the batch then runs serially rather than failing.  Tasks must
  therefore be deterministic pure functions of their (picklable)
  arguments — which they are: that determinism is the bit-for-bit
  serial/parallel contract.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple


def run_ordered(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    n_jobs: int,
) -> List[Any]:
    """Apply ``fn(*task)`` to every task, preserving input order.

    ``fn`` must be a module-level callable and every task tuple picklable
    when ``n_jobs > 1`` (worker processes re-import and re-invoke them).
    """
    if n_jobs == 1 or len(tasks) <= 1:
        return [fn(*task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    workers = min(n_jobs, len(tasks))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, *task) for task in tasks]
            return [future.result() for future in futures]
    except (OSError, PermissionError):
        # Pools need fork/spawn and semaphores; fall back to serial in
        # environments that forbid them rather than failing the run.
        return [fn(*task) for task in tasks]
