"""Deterministic seed derivation: every stream a run uses, named once.

Every random quantity in the system is derived from ``(experiment seed,
stream name)`` through :class:`~repro.sim.rng.RandomStreams`.  This module
is the single registry of those names, so the sweep runner, the cluster
scenarios, and any future entry point derive *identical* streams for
identical specs — the property the bit-for-bit serial/parallel equivalence
rests on.

The arrival-trace helper memoises through the bounded runtime cache
(:mod:`repro.runtime.cache`).  Two key families coexist:

* A scalar rate (the :class:`~repro.workload.arrivals.PoissonArrivals`
  special case) keeps the legacy ``(seed, rate, horizon)`` key and the
  ``arrivals@{rate:g}`` stream name *bit-for-bit* — pre-existing sweeps,
  golden files, and checkpoints are untouched by the workload refactor.
* Any other workload is keyed by the canonical
  :meth:`~repro.workload.spec.WorkloadSpec.digest`, with a stream name
  derived from the same digest — so identical specs share one cache entry
  (and one trace) regardless of which layer, process, or host asks.

Entries are marked read-only so sharing one array across protocols can
never leak state between them.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..sim.rng import RandomStreams
from ..workload.arrivals import ArrivalProcess, PoissonArrivals
from ..workload.spec import WorkloadSpec, as_workload
from .cache import ARRIVAL_CACHE

#: Stream name for the figure sweeps' Poisson arrivals at one rate.
ARRIVALS_STREAM = "arrivals@{rate:g}"

#: Stream name for non-Poisson workloads, keyed by canonical spec digest.
WORKLOAD_STREAM = "arrivals@wl:{digest12}"

#: Stream names of the cluster scenario workload.
CLUSTER_ARRIVALS_STREAM = "cluster-arrivals"
CLUSTER_TITLES_STREAM = "cluster-titles"

#: Prime stride separating replication seeds (see :func:`replication_seed`).
REPLICATION_STRIDE = 7919

#: What :func:`arrival_trace` accepts where a float rate used to be.
WorkloadLike = Union[float, int, str, WorkloadSpec, ArrivalProcess]


def derive_stream(seed: int, name: str) -> np.random.Generator:
    """The independent generator for ``name`` under ``seed``."""
    return RandomStreams(seed).get(name)


def arrivals_stream(seed: int, rate_per_hour: float) -> np.random.Generator:
    """The arrival-trace generator the figure sweeps use at one rate."""
    return derive_stream(seed, ARRIVALS_STREAM.format(rate=rate_per_hour))


def workload_stream(seed: int, spec: WorkloadSpec) -> np.random.Generator:
    """The arrival-trace generator for a digest-keyed workload spec."""
    name = WORKLOAD_STREAM.format(digest12=spec.digest()[:12])
    return derive_stream(seed, name)


def replication_seed(seed: int, replication: int) -> int:
    """The derived seed of replication ``replication`` (0-based).

    A fixed prime stride keeps replication seeds disjoint from each other
    and from the base seed for any realistic replication count.

    >>> replication_seed(2001, 0)
    9920
    """
    return seed + REPLICATION_STRIDE * (replication + 1)


def arrival_trace(
    seed: int, workload: WorkloadLike, horizon_hours: float
) -> np.ndarray:
    """The seeded, memoised arrival trace every protocol shares.

    ``workload`` may be a scalar rate (req/hour), a spec string, a
    :class:`~repro.workload.spec.WorkloadSpec`, or a named
    :class:`~repro.workload.arrivals.ArrivalProcess`.  Deterministic in
    ``(seed, canonical workload, horizon_hours)`` and cached on exactly
    that key in the bounded shared cache; the returned array is read-only.

    Scalar rates — and specs that reduce to plain Poisson — use the
    legacy ``(seed, rate, horizon)`` key and stream, so the refactor is
    invisible to existing sweeps: ``arrival_trace(s, 40.0, h)`` and
    ``arrival_trace(s, WorkloadSpec.poisson(40.0), h)`` return the same
    cached array, bit for bit.
    """
    if isinstance(workload, bool):
        raise TypeError("workload cannot be a bool")
    if isinstance(workload, (int, float)):
        return _poisson_trace(seed, float(workload), horizon_hours)

    spec = as_workload(workload)
    if spec.kind == "poisson":
        return _poisson_trace(seed, spec.mean_rate_per_hour, horizon_hours)

    digest = spec.digest()
    key = (int(seed), "wl:" + digest, float(horizon_hours))

    def generate() -> np.ndarray:
        rng = workload_stream(seed, spec)
        trace = spec.process().generate(horizon_hours * 3600.0, rng)
        trace.setflags(write=False)
        return trace

    return ARRIVAL_CACHE.get_or_create(key, generate)


def _poisson_trace(seed: int, rate_per_hour: float, horizon_hours: float) -> np.ndarray:
    key = (int(seed), float(rate_per_hour), float(horizon_hours))

    def generate() -> np.ndarray:
        rng = arrivals_stream(seed, rate_per_hour)
        trace = PoissonArrivals(rate_per_hour).generate(
            horizon_hours * 3600.0, rng
        )
        trace.setflags(write=False)
        return trace

    return ARRIVAL_CACHE.get_or_create(key, generate)
