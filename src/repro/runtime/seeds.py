"""Deterministic seed derivation: every stream a run uses, named once.

Every random quantity in the system is derived from ``(experiment seed,
stream name)`` through :class:`~repro.sim.rng.RandomStreams`.  This module
is the single registry of those names, so the sweep runner, the cluster
scenarios, and any future entry point derive *identical* streams for
identical specs — the property the bit-for-bit serial/parallel equivalence
rests on.

The arrival-trace helper memoises through the bounded runtime cache
(:mod:`repro.runtime.cache`): a multi-protocol sweep visits each
``(seed, rate, horizon)`` key once per protocol, and every visit after
the first is free.  Entries are marked read-only so sharing one array
across protocols can never leak state between them.
"""

from __future__ import annotations

import numpy as np

from ..sim.rng import RandomStreams
from ..workload.arrivals import PoissonArrivals
from .cache import ARRIVAL_CACHE

#: Stream name for the figure sweeps' Poisson arrivals at one rate.
ARRIVALS_STREAM = "arrivals@{rate:g}"

#: Stream names of the cluster scenario workload.
CLUSTER_ARRIVALS_STREAM = "cluster-arrivals"
CLUSTER_TITLES_STREAM = "cluster-titles"

#: Prime stride separating replication seeds (see :func:`replication_seed`).
REPLICATION_STRIDE = 7919


def derive_stream(seed: int, name: str) -> np.random.Generator:
    """The independent generator for ``name`` under ``seed``."""
    return RandomStreams(seed).get(name)


def arrivals_stream(seed: int, rate_per_hour: float) -> np.random.Generator:
    """The arrival-trace generator the figure sweeps use at one rate."""
    return derive_stream(seed, ARRIVALS_STREAM.format(rate=rate_per_hour))


def replication_seed(seed: int, replication: int) -> int:
    """The derived seed of replication ``replication`` (0-based).

    A fixed prime stride keeps replication seeds disjoint from each other
    and from the base seed for any realistic replication count.

    >>> replication_seed(2001, 0)
    9920
    """
    return seed + REPLICATION_STRIDE * (replication + 1)


def arrival_trace(
    seed: int, rate_per_hour: float, horizon_hours: float
) -> np.ndarray:
    """The seeded, memoised Poisson arrival trace every protocol shares.

    Deterministic in ``(seed, rate_per_hour, horizon_hours)`` and cached on
    exactly that key in the bounded shared cache; the returned array is
    read-only.
    """
    key = (int(seed), float(rate_per_hour), float(horizon_hours))

    def generate() -> np.ndarray:
        rng = arrivals_stream(seed, rate_per_hour)
        trace = PoissonArrivals(rate_per_hour).generate(
            horizon_hours * 3600.0, rng
        )
        trace.setflags(write=False)
        return trace

    return ARRIVAL_CACHE.get_or_create(key, generate)
