"""RunSpec and RunResult: the Engine's unit of work and its outcome.

A :class:`RunSpec` is a *complete, picklable description* of one unit of
work: a kind (which handler runs it — see :mod:`repro.runtime.tasks`) and
a payload of plain values (protocol names, rates, configs, scenarios).
Because the description is the whole input, the same spec always produces
the same result — in this process, on a pool worker, on a socket worker
on another host, today or in CI — which is the determinism contract every
equivalence test pins.  It is also what makes checkpointing sound: a spec
is keyed by a stable content digest of ``(kind, payload)``
(:func:`repro.runtime.checkpoint.spec_digest`), so a journaled result can
be replayed on resume instead of re-executed.

A :class:`RunResult` carries the handler's return value plus the cell's
portable observability state: a metrics snapshot
(:meth:`~repro.obs.registry.MetricsRegistry.to_dict`) and a list of plain
trace-record dicts.  Both are picklable and JSON-safe, so cells cross
process boundaries unchanged and the parent merges them deterministically
in task order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, NamedTuple, Tuple


@dataclass(frozen=True)
class RunSpec:
    """One unit of Engine work.

    Attributes
    ----------
    kind:
        Registered task kind (``"sweep-point"``, ``"cluster-scenario"``,
        ...); see :data:`repro.runtime.tasks.BUILTIN_KINDS`.
    payload:
        Positional arguments for the kind's handler.  Must be picklable
        for pooled execution.
    label:
        Optional display/debug label (not part of the work definition).
    """

    kind: str
    payload: Tuple[Any, ...] = ()
    label: str = field(default="", compare=False)


class RunResult(NamedTuple):
    """One executed spec: its value plus portable observability state."""

    value: Any
    metrics: Dict
    trace: List[Dict]
