"""Cluster topology: bandwidth-capped servers and catalog placement.

The paper measures one video on an unlimited server; a deployment runs a
*fleet* of servers, each with a hard per-slot channel budget, carrying a
catalog whose titles are placed on one or more servers.  This module owns
the static side of that picture:

* :class:`ServerSpec` — one server's identity and per-slot channel capacity;
* :class:`CatalogPlacement` — which servers hold a replica of which title,
  built by one of three strategies:

  - **sharded** — every title lives on exactly one server (round-robin),
    maximal capacity, zero redundancy;
  - **replicated** — every title lives on every server (rotated preference
    order so primaries spread across the fleet), maximal redundancy;
  - **popularity-weighted** — replica counts follow the Zipf share of each
    title (driven by :class:`~repro.workload.popularity.ZipfCatalog`): hot
    titles are widely replicated, the long tail gets the configured minimum.

* :class:`ClusterTopology` — the validated pair of the two.

Placements are deterministic functions of their parameters — no RNG — so a
seeded cluster scenario is reproducible end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ClusterError
from ..workload.popularity import ZipfCatalog

#: Placement strategy names accepted by :func:`build_placement`.
PLACEMENT_NAMES = ("sharded", "replicated", "popularity")


@dataclass(frozen=True)
class ServerSpec:
    """One VOD server: an id and a hard per-slot channel capacity.

    ``capacity`` is in data streams of the video consumption rate ``b`` —
    the same unit as every slot load in the repo — and bounds how many
    segment instances the server can transmit during one slot.
    """

    server_id: int
    capacity: int

    def __post_init__(self):
        if self.server_id < 0:
            raise ClusterError(f"server_id must be >= 0, got {self.server_id}")
        if self.capacity < 1:
            raise ClusterError(
                f"server {self.server_id}: capacity must be >= 1, got {self.capacity}"
            )


@dataclass(frozen=True)
class CatalogPlacement:
    """Which servers hold a replica of which title.

    ``replicas[title]`` is the preference-ordered tuple of server ids that
    carry the title; the first entry is the title's *primary* replica (the
    affinity router's default target).
    """

    replicas: Tuple[Tuple[int, ...], ...]

    @property
    def n_titles(self) -> int:
        """Number of catalog titles the placement covers."""
        return len(self.replicas)

    def replicas_of(self, title: int) -> Tuple[int, ...]:
        """Preference-ordered server ids holding ``title`` (0-based rank)."""
        if not 0 <= title < self.n_titles:
            raise ClusterError(
                f"title {title} outside catalog of {self.n_titles}"
            )
        return self.replicas[title]

    def titles_on(self, server_id: int) -> List[int]:
        """Sorted titles that ``server_id`` holds a replica of."""
        return [
            title
            for title, servers in enumerate(self.replicas)
            if server_id in servers
        ]

    def replica_counts(self) -> List[int]:
        """Replica count per title (most popular first)."""
        return [len(servers) for servers in self.replicas]


def sharded_placement(n_titles: int, n_servers: int) -> CatalogPlacement:
    """Each title on exactly one server, dealt round-robin.

    >>> sharded_placement(4, 2).replicas
    ((0,), (1,), (0,), (1,))
    """
    _check_sizes(n_titles, n_servers)
    return CatalogPlacement(
        replicas=tuple((title % n_servers,) for title in range(n_titles))
    )


def replicated_placement(n_titles: int, n_servers: int) -> CatalogPlacement:
    """Every title on every server, preference order rotated per title.

    The rotation spreads primaries across the fleet so affinity routing
    does not pile every title onto server 0.

    >>> replicated_placement(2, 3).replicas
    ((0, 1, 2), (1, 2, 0))
    """
    _check_sizes(n_titles, n_servers)
    return CatalogPlacement(
        replicas=tuple(
            tuple((title + k) % n_servers for k in range(n_servers))
            for title in range(n_titles)
        )
    )


def popularity_placement(
    n_titles: int,
    n_servers: int,
    theta: float = 1.0,
    min_replicas: int = 1,
) -> CatalogPlacement:
    """Replica counts proportional to each title's Zipf(θ) share.

    The most popular title is fully replicated; title ``r`` gets
    ``ceil(n_servers * p_r / p_0)`` replicas (clamped to
    ``[min_replicas, n_servers]``), so replication decays exactly as fast
    as popularity.  Replica sets start at ``title % n_servers`` and take
    consecutive servers, spreading the catalog around the ring.

    >>> popularity_placement(3, 4, theta=1.0).replica_counts()
    [4, 2, 2]
    """
    _check_sizes(n_titles, n_servers)
    if not 1 <= min_replicas <= n_servers:
        raise ClusterError(
            f"min_replicas must be in [1, {n_servers}], got {min_replicas}"
        )
    catalog = ZipfCatalog(n_videos=n_titles, theta=theta)
    shares = catalog.probabilities
    top = shares[0]
    replicas: List[Tuple[int, ...]] = []
    for title in range(n_titles):
        count = math.ceil(n_servers * shares[title] / top)
        count = max(min_replicas, min(n_servers, count))
        start = title % n_servers
        replicas.append(tuple((start + k) % n_servers for k in range(count)))
    return CatalogPlacement(replicas=tuple(replicas))


def build_placement(
    name: str,
    n_titles: int,
    n_servers: int,
    theta: float = 1.0,
    min_replicas: int = 1,
) -> CatalogPlacement:
    """Build the placement strategy called ``name`` (see :data:`PLACEMENT_NAMES`)."""
    if name == "sharded":
        return sharded_placement(n_titles, n_servers)
    if name == "replicated":
        return replicated_placement(n_titles, n_servers)
    if name == "popularity":
        return popularity_placement(
            n_titles, n_servers, theta=theta, min_replicas=min_replicas
        )
    raise ClusterError(
        f"unknown placement {name!r}; choose from {list(PLACEMENT_NAMES)}"
    )


def _check_sizes(n_titles: int, n_servers: int) -> None:
    if n_titles < 1:
        raise ClusterError(f"need >= 1 title, got {n_titles}")
    if n_servers < 1:
        raise ClusterError(f"need >= 1 server, got {n_servers}")


@dataclass(frozen=True)
class ClusterTopology:
    """A validated fleet: server specs plus a catalog placement.

    Every replica must reference a configured server, and every title must
    have at least one replica — checked eagerly so a broken placement can
    never silently drop a title.
    """

    servers: Tuple[ServerSpec, ...]
    placement: CatalogPlacement

    def __post_init__(self):
        if not self.servers:
            raise ClusterError("topology needs >= 1 server")
        ids = [spec.server_id for spec in self.servers]
        if len(set(ids)) != len(ids):
            raise ClusterError(f"duplicate server ids in {ids}")
        known = set(ids)
        for title, replicas in enumerate(self.placement.replicas):
            if not replicas:
                raise ClusterError(f"title {title} has no replica")
            if len(set(replicas)) != len(replicas):
                raise ClusterError(f"title {title} lists a server twice: {replicas}")
            unknown = set(replicas) - known
            if unknown:
                raise ClusterError(
                    f"title {title} placed on unknown servers {sorted(unknown)}"
                )

    @property
    def n_servers(self) -> int:
        """Fleet size."""
        return len(self.servers)

    @property
    def n_titles(self) -> int:
        """Catalog size."""
        return self.placement.n_titles

    @property
    def total_capacity(self) -> int:
        """Sum of per-slot channel capacities across the fleet."""
        return sum(spec.capacity for spec in self.servers)

    def spec_of(self, server_id: int) -> ServerSpec:
        """The :class:`ServerSpec` with ``server_id``."""
        for spec in self.servers:
            if spec.server_id == server_id:
                return spec
        raise ClusterError(f"unknown server {server_id}")


def uniform_topology(
    n_servers: int,
    capacity: int,
    n_titles: int,
    placement: str = "replicated",
    theta: float = 1.0,
    min_replicas: int = 1,
) -> ClusterTopology:
    """A fleet of ``n_servers`` identical servers under one placement strategy.

    >>> topo = uniform_topology(3, capacity=10, n_titles=5)
    >>> (topo.n_servers, topo.total_capacity, topo.placement.replica_counts()[0])
    (3, 30, 3)
    """
    specs = tuple(ServerSpec(server_id=i, capacity=capacity) for i in range(n_servers))
    built = build_placement(
        placement, n_titles, n_servers, theta=theta, min_replicas=min_replicas
    )
    return ClusterTopology(servers=specs, placement=built)


#: Server-id → titles map, occasionally handy for reports.
def catalog_map(topology: ClusterTopology) -> Dict[int, Sequence[int]]:
    """Server id → sorted titles hosted, for rendering and tests."""
    return {
        spec.server_id: topology.placement.titles_on(spec.server_id)
        for spec in topology.servers
    }


@dataclass(frozen=True)
class EdgeSpec:
    """One edge node: a prefix cache and a capped unicast uplink.

    ``cache_segments`` is the node's prefix-cache budget in video segments
    (the unit every prefix allocation works in — see
    :mod:`repro.edge.cache`); ``uplink_streams`` is the per-slot unicast
    capacity, in streams of the consumption rate ``b``, that the node's
    traffic classes share (:mod:`repro.edge.shaping`).  A budget of zero is
    legal and degrades the node to a pass-through.
    """

    edge_id: int
    cache_segments: int
    uplink_streams: float

    def __post_init__(self):
        if self.edge_id < 0:
            raise ClusterError(f"edge_id must be >= 0, got {self.edge_id}")
        if self.cache_segments < 0:
            raise ClusterError(
                f"edge {self.edge_id}: cache_segments must be >= 0, "
                f"got {self.cache_segments}"
            )
        if self.uplink_streams < 0:
            raise ClusterError(
                f"edge {self.edge_id}: uplink_streams must be >= 0, "
                f"got {self.uplink_streams}"
            )


@dataclass(frozen=True)
class TieredTopology:
    """An origin cluster fronted by a tier of edge nodes.

    The ``origin`` fleet broadcasts (suffixes, in the hierarchy scenarios);
    each :class:`EdgeSpec` caches title prefixes and unicasts them to its
    attached clients.  Client↔edge attachment is a runtime concern (the
    hierarchy scenario deals arrivals round-robin across edges); the
    topology only owns the validated static picture.
    """

    origin: ClusterTopology
    edges: Tuple[EdgeSpec, ...]

    def __post_init__(self):
        if not self.edges:
            raise ClusterError("tiered topology needs >= 1 edge node")
        ids = [spec.edge_id for spec in self.edges]
        if len(set(ids)) != len(ids):
            raise ClusterError(f"duplicate edge ids in {ids}")

    @property
    def n_edges(self) -> int:
        """Number of edge nodes."""
        return len(self.edges)

    @property
    def n_titles(self) -> int:
        """Catalog size (delegates to the origin placement)."""
        return self.origin.n_titles

    @property
    def total_cache_segments(self) -> int:
        """Sum of prefix-cache budgets across the edge tier."""
        return sum(spec.cache_segments for spec in self.edges)


def tiered_topology(
    n_servers: int,
    capacity: int,
    n_titles: int,
    n_edges: int,
    cache_segments: int,
    uplink_streams: float,
    placement: str = "replicated",
    theta: float = 1.0,
    min_replicas: int = 1,
) -> TieredTopology:
    """A uniform origin fleet fronted by ``n_edges`` identical edge nodes.

    >>> topo = tiered_topology(2, capacity=10, n_titles=4, n_edges=2,
    ...                        cache_segments=12, uplink_streams=8.0)
    >>> (topo.n_edges, topo.total_cache_segments, topo.origin.n_servers)
    (2, 24, 2)
    """
    if n_edges < 1:
        raise ClusterError(f"need >= 1 edge node, got {n_edges}")
    origin = uniform_topology(
        n_servers,
        capacity=capacity,
        n_titles=n_titles,
        placement=placement,
        theta=theta,
        min_replicas=min_replicas,
    )
    edges = tuple(
        EdgeSpec(
            edge_id=i,
            cache_segments=cache_segments,
            uplink_streams=uplink_streams,
        )
        for i in range(n_edges)
    )
    return TieredTopology(origin=origin, edges=edges)
