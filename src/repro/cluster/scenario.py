"""Cluster scenarios: the multi-server slotted runner and its results.

A :class:`ClusterScenario` is a complete, frozen description of one run —
topology, router policy, protocol, workload, fault plan, seed — so the same
scenario value always reproduces the same :class:`ClusterResult`, whether it
runs in this process or on a worker (``run_scenarios`` fans a batch across
the runtime Engine with bit-for-bit the serial results, the discipline every
fan-out shares — see :mod:`repro.runtime.engine`).

One simulated slot advances in four steps, preserving the slotted driver's
record-before-deliver convention (:mod:`repro.sim.slotted`):

1. **fault transitions** — recoveries, then crashes; a crash runs the full
   degraded-mode failover (:func:`repro.cluster.faults.fail_over`) *before*
   the slot is finalized, so rescheduled instances may still land in the
   current slot and no admitted client can miss a deadline-now segment;
2. **finalize** — each server applies its (possibly fault-reduced) channel
   cap to the slot's scheduled demand and advances its deferral ledger;
   aggregate and per-title load series are recorded here;
3. **deliver** — the slot's arrivals are routed: the title's replica list is
   filtered to alive servers with admission headroom, the router picks one
   (or rejects), and the chosen server admits the request into its protocol;
4. **release** — per-slot bookkeeping below the current slot is dropped,
   keeping memory flat over long horizons.

The per-title series make the cluster's statistical-multiplexing argument
testable: provisioning each title alone costs the sum of per-title
:meth:`~ClusterResult.title_capacity_for_overflow` values, while the pooled
cluster only needs :meth:`~ClusterResult.capacity_for_overflow` of the
aggregate — strictly less whenever titles peak at different times.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..analysis.tables import format_simple_table
from ..errors import ClusterError
from ..obs.trace import Observation
from ..protocols.registry import SLOTTED_NAMES, ProtocolContext, build_protocol
from ..server.provisioning import ProvisioningResult
from ..sim.rng import RandomStreams
from ..workload.arrivals import PoissonArrivals
from ..workload.popularity import ZipfCatalog
from ..workload.spec import WorkloadSpec, as_workload
from .admission import CappedServer
from .faults import (
    NO_FAULTS,
    CrashWindow,
    FailoverEvent,
    FaultSchedule,
    fail_over,
    supports_rescheduling,
)
from .routing import ROUTER_NAMES, make_router
from .topology import ClusterTopology, uniform_topology

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..runtime import Engine, RunSpec


@dataclass(frozen=True)
class ClusterScenario:
    """One complete cluster experiment, reproducible from its value alone."""

    name: str
    topology: ClusterTopology
    router: str = "affinity"
    protocol: str = "dhb"
    n_segments: int = 60
    slot_duration: float = 20.0
    horizon_slots: int = 720
    warmup_slots: int = 120
    total_rate_per_hour: float = 300.0
    zipf_theta: float = 1.0
    seed: int = 2001
    faults: FaultSchedule = NO_FAULTS
    backlog_limit: Optional[int] = None
    keep_title_series: bool = True
    #: Optional nonstationary aggregate arrival process.  ``None`` keeps the
    #: seeded homogeneous Poisson at ``total_rate_per_hour`` bit-for-bit;
    #: a :class:`~repro.workload.spec.WorkloadSpec` (or spec string / rate,
    #: normalised on construction) replaces it, drawn from a stream named by
    #: the spec's canonical digest.  Titles stay Zipf-assigned either way.
    workload: Optional[WorkloadSpec] = None

    def __post_init__(self):
        if self.workload is not None:
            object.__setattr__(self, "workload", as_workload(self.workload))
        if self.router not in ROUTER_NAMES:
            raise ClusterError(
                f"unknown router {self.router!r}; choose from {list(ROUTER_NAMES)}"
            )
        if self.protocol not in SLOTTED_NAMES:
            raise ClusterError(
                f"cluster scenarios need a slotted protocol, not {self.protocol!r}"
            )
        if self.n_segments < 1:
            raise ClusterError(f"n_segments must be >= 1, got {self.n_segments}")
        if self.slot_duration <= 0:
            raise ClusterError(
                f"slot_duration must be > 0, got {self.slot_duration}"
            )
        if not 0 <= self.warmup_slots < self.horizon_slots:
            raise ClusterError(
                f"need 0 <= warmup ({self.warmup_slots}) < horizon "
                f"({self.horizon_slots})"
            )
        if self.total_rate_per_hour < 0:
            raise ClusterError("total_rate_per_hour must be >= 0")
        self.faults.validate_against(self.topology)
        if self.faults.crashes and not supports_rescheduling(
            build_protocol(self.protocol, self._context())
        ):
            raise ClusterError(
                f"protocol {self.protocol!r} cannot reschedule lost segment "
                "instances; crash scenarios require DHB"
            )

    def _context(self) -> ProtocolContext:
        rate = (
            self.workload.mean_rate_per_hour
            if self.workload is not None
            else self.total_rate_per_hour
        )
        return ProtocolContext(
            n_segments=self.n_segments,
            duration=self.n_segments * self.slot_duration,
            rate_per_hour=max(rate, 1e-9),
        )


@dataclass(frozen=True)
class ServerSummary:
    """Per-server outcome of one scenario run."""

    server_id: int
    capacity: int
    titles: int
    admitted: int
    transmitted_instances: int
    deferred_instance_slots: int
    failover_in: int
    down_slots: int
    mean_load: float
    peak_load: int


@dataclass
class ClusterResult:
    """Everything one scenario run measured.

    ``aggregate`` is the post-warmup per-slot scheduled demand summed over
    alive servers; ``per_title`` (when kept) holds the same series split by
    title, which is what the multiplexing comparison needs.
    """

    scenario: str
    slots_measured: int
    aggregate: np.ndarray
    per_title: Optional[np.ndarray]
    servers: List[ServerSummary]
    admitted: int
    rejected: int
    mean_wait: float
    max_wait: float
    crashes: int
    failovers: List[FailoverEvent] = field(default_factory=list)
    instances_lost: int = 0

    @property
    def mean_streams(self) -> float:
        """Average aggregate cluster demand in streams."""
        return float(self.aggregate.mean()) if len(self.aggregate) else 0.0

    @property
    def peak_streams(self) -> int:
        """Largest observed aggregate demand."""
        return int(self.aggregate.max()) if len(self.aggregate) else 0

    @property
    def deferred_instance_slots(self) -> int:
        """Total client-visible lateness, in instance-slots, fleet-wide."""
        return sum(summary.deferred_instance_slots for summary in self.servers)

    def capacity_for_overflow(self, overflow_probability: float) -> int:
        """Pooled capacity meeting the overflow target on the aggregate."""
        return ProvisioningResult(self.aggregate, []).capacity_for_overflow(
            overflow_probability
        )

    def title_capacity_for_overflow(
        self, title: int, overflow_probability: float
    ) -> int:
        """Capacity meeting the overflow target for one title provisioned alone."""
        if self.per_title is None:
            raise ClusterError(
                "scenario ran with keep_title_series=False; no per-title series"
            )
        if not 0 <= title < len(self.per_title):
            raise ClusterError(
                f"title {title} outside catalog of {len(self.per_title)}"
            )
        return ProvisioningResult(self.per_title[title], []).capacity_for_overflow(
            overflow_probability
        )

    def naive_capacity_sum(self, overflow_probability: float) -> int:
        """Σ per-title capacities — what separate single-title servers cost."""
        if self.per_title is None:
            raise ClusterError(
                "scenario ran with keep_title_series=False; no per-title series"
            )
        return sum(
            self.title_capacity_for_overflow(title, overflow_probability)
            for title in range(len(self.per_title))
        )

    def to_dict(self) -> Dict:
        """JSON-safe snapshot; equality of snapshots is bit-for-bit equality."""
        return {
            "scenario": self.scenario,
            "slots_measured": self.slots_measured,
            "aggregate": [int(v) for v in self.aggregate],
            "per_title": (
                None
                if self.per_title is None
                else [[int(v) for v in row] for row in self.per_title]
            ),
            "servers": [asdict(summary) for summary in self.servers],
            "admitted": self.admitted,
            "rejected": self.rejected,
            "mean_wait": self.mean_wait,
            "max_wait": self.max_wait,
            "crashes": self.crashes,
            "failovers": [asdict(event) for event in self.failovers],
            "instances_lost": self.instances_lost,
        }

    def render(self) -> str:
        """Human-readable per-server table plus the fleet summary."""
        rows = [
            [
                summary.server_id,
                summary.capacity,
                summary.titles,
                summary.admitted,
                summary.failover_in,
                summary.deferred_instance_slots,
                summary.down_slots,
                f"{summary.mean_load:.2f}",
                summary.peak_load,
            ]
            for summary in self.servers
        ]
        table = format_simple_table(
            [
                "server",
                "cap",
                "titles",
                "admitted",
                "failover_in",
                "deferred",
                "down",
                "mean load",
                "peak",
            ],
            rows,
        )
        lines = [
            f"scenario {self.scenario}: {self.admitted} admitted, "
            f"{self.rejected} rejected, {self.crashes} crash(es), "
            f"{len(self.failovers)} failover instance(s), "
            f"{self.instances_lost} lost",
            f"aggregate demand: mean {self.mean_streams:.2f}, "
            f"peak {self.peak_streams} streams over {self.slots_measured} slots; "
            f"q(1e-2) capacity {self.capacity_for_overflow(1e-2)}",
            table,
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class _PendingJoin:
    """An edge-deferred suffix join waiting for its origin slot."""

    title: int
    first_segment: int
    wait: float
    measured: bool


def run_scenario(
    scenario: ClusterScenario,
    observation: Optional[Observation] = None,
    *,
    edge_tier=None,
    router_override=None,
    arrivals_override=None,
) -> ClusterResult:
    """Simulate one cluster scenario over the shared slotted timeline.

    The keyword-only hooks are the origin→edge hierarchy's seam
    (:mod:`repro.edge` — the only intended caller):

    * ``edge_tier`` intercepts every arrival before routing.  Its
      ``begin_slot(slot)`` runs at the top of each slot (the re-allocation
      hook) and ``admit(title, t, slot, slot_end)`` returns a decision: a
      *miss* falls through to the unmodified delivery path, a *hit* either
      joins the origin now for the suffix (``admit_suffix``), joins at a
      later slot (shaper deferral — queued and delivered exactly like an
      arrival of that slot), or never joins (fully cached title).  With no
      tier (the default) the loop is byte-for-byte the pure-cluster path.
    * ``router_override`` substitutes a pre-configured
      :class:`~repro.cluster.routing.Router` instance (the hierarchy's
      prefix-aware router carries the live allocation).
    * ``arrivals_override`` is a ``(times, titles)`` array pair replacing
      the seeded default workload (popularity-drift plans pre-assign titles
      phase by phase).

    Deferred joins whose slot lands past the horizon are dropped
    unmeasured, like arrivals past the horizon.
    """
    topology = scenario.topology
    placement = topology.placement
    streams = RandomStreams(scenario.seed)
    d = scenario.slot_duration
    horizon = scenario.horizon_slots
    warmup = scenario.warmup_slots
    if arrivals_override is not None:
        times, titles = arrivals_override
    else:
        if scenario.workload is None:
            times = PoissonArrivals(scenario.total_rate_per_hour).generate(
                horizon * d, streams.get("cluster-arrivals")
            )
        else:
            stream_name = (
                f"cluster-arrivals@wl:{scenario.workload.digest()[:12]}"
            )
            times = scenario.workload.process().generate(
                horizon * d, streams.get(stream_name)
            )
        titles = ZipfCatalog(topology.n_titles, scenario.zipf_theta).assign(
            len(times), streams.get("cluster-titles")
        )
    context = scenario._context()

    def protocol_factory(title: int):
        return build_protocol(scenario.protocol, context)

    servers = [
        CappedServer(
            spec,
            placement.titles_on(spec.server_id),
            protocol_factory,
            backlog_limit=scenario.backlog_limit,
        )
        for spec in topology.servers
    ]
    by_id = {server.server_id: server for server in servers}
    router = (
        router_override if router_override is not None else make_router(scenario.router)
    )
    metrics = observation.metrics if observation is not None else None
    trace = observation.trace if observation is not None else None
    pending_joins: Dict[int, List[_PendingJoin]] = {}

    measured = horizon - warmup
    aggregate = np.zeros(measured, dtype=np.int64)
    per_title = (
        np.zeros((topology.n_titles, measured), dtype=np.int64)
        if scenario.keep_title_series
        else None
    )
    load_sums = {server.server_id: 0 for server in servers}
    load_peaks = {server.server_id: 0 for server in servers}
    waits: List[float] = []
    rejected = 0
    failover_events: List[FailoverEvent] = []
    crashes = 0
    instances_lost = 0
    arrival_index = 0
    n_arrivals = len(times)
    faults = scenario.faults

    if metrics is not None:
        run_span = metrics.timer("cluster.run_seconds").time()
        run_span.__enter__()

    for slot in range(horizon):
        if edge_tier is not None:
            edge_tier.begin_slot(slot)
        # 1. Fault transitions (recoveries first: a server whose window ends
        # here is back up for the whole slot).
        for server_id in faults.recoveries_at(slot):
            by_id[server_id].recover()
        for server_id in faults.crashes_at(slot):
            crashed = by_id[server_id]
            if not crashed.alive:
                continue

            def survivors_of(title: int, _down: int = server_id):
                return [
                    by_id[replica]
                    for replica in placement.replicas_of(title)
                    if replica != _down and by_id[replica].alive
                ]

            report = fail_over(crashed, survivors_of, slot)
            crashes += 1
            failover_events.extend(report.events)
            instances_lost += report.lost_for_good
            if metrics is not None:
                metrics.counter("cluster.crashes").inc()
                metrics.counter("cluster.failover.instances").inc(len(report.events))
                metrics.counter("cluster.failover.rescheduled").inc(report.rescheduled)
                metrics.counter("cluster.failover.lost").inc(report.lost_for_good)

        # 2. Finalize the slot under each server's effective channel budget.
        # Loads are final here: arrivals of this slot only touch slots >= slot+1
        # and failover (the one writer of the current slot) already ran.
        slot_demand = 0
        server_records = [] if trace is not None else None
        for server in servers:
            cap = faults.effective_capacity(
                server.server_id, server.spec.capacity, slot
            )
            report = server.finalize_slot(slot, cap)
            slot_demand += report.demand
            if slot >= warmup:
                load_sums[server.server_id] += report.demand
                if report.demand > load_peaks[server.server_id]:
                    load_peaks[server.server_id] = report.demand
            if server_records is not None:
                server_records.append(
                    {
                        "id": server.server_id,
                        "streams": report.demand,
                        "transmitted": report.transmitted,
                        "backlog": report.backlog,
                        "capacity": report.capacity,
                        "alive": report.alive,
                    }
                )
        if slot >= warmup:
            aggregate[slot - warmup] = slot_demand
            if per_title is not None:
                for title in range(topology.n_titles):
                    load = 0
                    for replica in placement.replicas_of(title):
                        replica_server = by_id[replica]
                        if replica_server.alive:
                            load += replica_server.protocols[title].slot_load(slot)
                    per_title[title, slot - warmup] = load
            if metrics is not None:
                metrics.histogram("cluster.slot_load").observe(float(slot_demand))

        # 3. Deliver the slot's arrivals through the router.
        slot_start = slot * d
        slot_end = (slot + 1) * d
        slot_admitted = 0
        slot_rejected = 0
        # Edge-deferred suffix joins due now go first: they arrived in an
        # earlier slot, so they precede this slot's fresh arrivals.
        for join in pending_joins.pop(slot, []):
            candidates = [
                by_id[replica]
                for replica in placement.replicas_of(join.title)
                if by_id[replica].alive and by_id[replica].has_headroom()
            ]
            chosen = router.choose(join.title, slot, candidates)
            if chosen is None:
                rejected += 1
                slot_rejected += 1
            else:
                chosen.admit_suffix(join.title, slot, join.first_segment)
                slot_admitted += 1
                if join.measured:
                    waits.append(join.wait)
        while arrival_index < n_arrivals and times[arrival_index] < slot_end:
            t = float(times[arrival_index])
            title = int(titles[arrival_index])
            arrival_index += 1
            if t < slot_start:
                continue
            first_segment = 1
            wait = slot_end - t
            if edge_tier is not None:
                decision = edge_tier.admit(title, t, slot, slot_end)
                if decision.hit:
                    in_window = slot >= warmup
                    if decision.served_fully:
                        if in_window:
                            waits.append(decision.wait)
                        continue
                    if decision.join_slot > slot:
                        pending_joins.setdefault(decision.join_slot, []).append(
                            _PendingJoin(
                                title,
                                decision.first_segment,
                                decision.wait,
                                in_window,
                            )
                        )
                        continue
                    first_segment = decision.first_segment
                    wait = decision.wait
            candidates = [
                by_id[replica]
                for replica in placement.replicas_of(title)
                if by_id[replica].alive and by_id[replica].has_headroom()
            ]
            chosen = router.choose(title, slot, candidates)
            if chosen is None:
                rejected += 1
                slot_rejected += 1
            elif first_segment <= 1:
                chosen.admit(title, slot)
                slot_admitted += 1
                if slot >= warmup:
                    waits.append(wait)
            else:
                chosen.admit_suffix(title, slot, first_segment)
                slot_admitted += 1
                if slot >= warmup:
                    waits.append(wait)

        if trace is not None:
            trace.emit(
                {
                    "kind": "cluster-slot",
                    "scenario": scenario.name,
                    "slot": slot,
                    "streams": slot_demand,
                    "servers": server_records,
                    "arrivals": slot_admitted,
                    "rejected": slot_rejected,
                    "measured": slot >= warmup,
                }
            )

        # 4. Bounded memory: drop bookkeeping below the current slot.
        for server in servers:
            server.release_before(slot)

    admitted = sum(server.admitted for server in servers)
    summaries = [
        ServerSummary(
            server_id=server.server_id,
            capacity=server.spec.capacity,
            titles=len(server.titles),
            admitted=server.admitted,
            transmitted_instances=server.transmitted_instances,
            deferred_instance_slots=server.deferred_instance_slots,
            failover_in=server.failover_clients_in,
            down_slots=server.down_slots,
            mean_load=load_sums[server.server_id] / measured,
            peak_load=load_peaks[server.server_id],
        )
        for server in servers
    ]
    if metrics is not None:
        run_span.__exit__(None, None, None)
        metrics.counter("cluster.slots").inc(horizon)
        metrics.counter("cluster.requests").inc(admitted)
        metrics.counter("cluster.rejected").inc(rejected)
        metrics.gauge("cluster.servers").set(topology.n_servers)
        metrics.gauge("cluster.titles").set(topology.n_titles)
        metrics.gauge("cluster.total_capacity").set(topology.total_capacity)
        for summary in summaries:
            prefix = f"cluster.server.{summary.server_id}"
            metrics.counter(f"{prefix}.admitted").inc(summary.admitted)
            metrics.counter(f"{prefix}.transmitted").inc(
                summary.transmitted_instances
            )
            metrics.counter(f"{prefix}.deferred_instance_slots").inc(
                summary.deferred_instance_slots
            )
            metrics.counter(f"{prefix}.failover_in").inc(summary.failover_in)
            metrics.counter(f"{prefix}.down_slots").inc(summary.down_slots)
    measured_requests = len(waits)
    return ClusterResult(
        scenario=scenario.name,
        slots_measured=measured,
        aggregate=aggregate,
        per_title=per_title,
        servers=summaries,
        admitted=admitted,
        rejected=rejected,
        mean_wait=sum(waits) / measured_requests if measured_requests else 0.0,
        max_wait=max(waits) if waits else 0.0,
        crashes=crashes,
        failovers=failover_events,
        instances_lost=instances_lost,
    )


def scenario_specs(scenarios: Sequence[ClusterScenario]) -> List["RunSpec"]:
    """The batch as runtime ``"cluster-scenario"`` specs, in input order."""
    from ..runtime import RunSpec

    return [
        RunSpec("cluster-scenario", (scenario,), label=scenario.name)
        for scenario in scenarios
    ]


def run_scenarios(
    scenarios: Sequence[ClusterScenario],
    n_jobs: Optional[int] = None,
    observation: Optional[Observation] = None,
    engine: Optional["Engine"] = None,
) -> List[ClusterResult]:
    """Run a batch of scenarios through the runtime Engine.

    Results come back in input order and are bit-for-bit identical to the
    serial path: each scenario is a deterministic function of its value,
    and the Engine merges worker metric/trace snapshots in task order (the
    discipline every runtime fan-out shares — see
    :mod:`repro.runtime.engine`).  ``n_jobs`` resolves through the runtime
    config (explicit argument, then ``REPRO_SWEEP_JOBS``, then serial) and
    is ignored when an ``engine`` is given.  The engine's execution
    backend decides where scenarios run (serial, process pool, socket
    workers); backend failures degrade to serial, and an engine carrying a
    checkpoint store resumes interrupted scenario batches.
    """
    from ..runtime import Engine

    if engine is None:
        engine = Engine(n_jobs=n_jobs)
    return engine.run_values(scenario_specs(scenarios), observation=observation)


def preset_scenarios(seed: int = 2001, quick: bool = False) -> List[ClusterScenario]:
    """The CLI's named scenarios: ``baseline``, ``skewed``, ``crash``.

    * ``baseline`` — replicated catalog, affinity routing, no faults: the
      clean statistical-multiplexing picture.
    * ``skewed`` — popularity-weighted replication with least-loaded
      routing: hot titles fan out, cold titles stay narrow.
    * ``crash`` — baseline topology plus one mid-run server crash: degraded
      mode, failover, and recovery in one run.
    """
    if quick:
        n_servers, capacity, n_titles = 4, 16, 6
        n_segments, horizon, warmup = 30, 240, 40
        rate = 240.0
    else:
        n_servers, capacity, n_titles = 4, 24, 8
        n_segments, horizon, warmup = 60, 720, 120
        rate = 360.0
    common = dict(
        n_segments=n_segments,
        slot_duration=20.0,
        horizon_slots=horizon,
        warmup_slots=warmup,
        total_rate_per_hour=rate,
        seed=seed,
    )
    crash_start = horizon // 2
    crash_end = crash_start + max(horizon // 8, 1)
    return [
        ClusterScenario(
            name="baseline",
            topology=uniform_topology(
                n_servers, capacity=capacity, n_titles=n_titles
            ),
            router="affinity",
            **common,
        ),
        ClusterScenario(
            name="skewed",
            topology=uniform_topology(
                n_servers,
                capacity=capacity,
                n_titles=n_titles,
                placement="popularity",
            ),
            router="least-loaded",
            **common,
        ),
        ClusterScenario(
            name="crash",
            topology=uniform_topology(
                n_servers, capacity=capacity + 8, n_titles=n_titles
            ),
            router="affinity",
            faults=FaultSchedule(
                crashes=(
                    # Server 0 dies mid-run and returns an eighth of the
                    # horizon later with empty schedules.
                    CrashWindow(
                        server_id=0, start_slot=crash_start, end_slot=crash_end
                    ),
                )
            ),
            **common,
        ),
    ]
