"""Request routing: pick a replica for each arriving request, or reject.

A :class:`Router` sees one request at a time — ``(title, slot)`` plus the
title's preference-ordered replica list — and returns the chosen server or
``None`` for a rejection.  Only servers that report headroom (alive, backlog
under the admission limit) are candidates; a request whose every replica is
saturated or down is rejected at the door, which is the cluster-level
analogue of Erlang blocking in :mod:`repro.server.channels`.

Three policies, mirroring the usual trade-off triangle:

* :class:`RoundRobinRouter` — spread requests evenly regardless of load;
  fair, oblivious, and the baseline everything else is measured against.
* :class:`LeastLoadedRouter` — send each request to the candidate with the
  smallest deferral pressure (backlog + next slot's scheduled demand).
  Best at dodging hot servers, but splitting one title's viewers across
  replicas costs broadcast sharing: each replica runs its own protocol
  instance, so a popular title served from k servers pays for k schedules.
* :class:`AffinityRouter` — keep each title on the earliest preferred
  replica with headroom (the placement's rotation spreads primaries).
  Maximizes per-title sharing — the property the multiplexing experiments
  rely on — and falls back down the preference list only under overload
  or failure.

All policies are deterministic: same request sequence, same decisions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence

from ..errors import ClusterError
from .admission import CappedServer

#: Router names accepted by :func:`make_router`.
ROUTER_NAMES = ("round-robin", "least-loaded", "affinity", "prefix-aware")


class Router(ABC):
    """Strategy choosing a replica server for each arriving request."""

    @abstractmethod
    def choose(
        self,
        title: int,
        slot: int,
        candidates: Sequence[CappedServer],
    ) -> Optional[CappedServer]:
        """Pick one of ``candidates`` (preference order) or ``None`` to reject.

        ``candidates`` holds only servers with headroom; it may be empty,
        in which case the router must reject.
        """


class RoundRobinRouter(Router):
    """Deal each title's requests around its replica ring in arrival order."""

    def __init__(self):
        self._next: Dict[int, int] = {}

    def choose(
        self,
        title: int,
        slot: int,
        candidates: Sequence[CappedServer],
    ) -> Optional[CappedServer]:
        if not candidates:
            return None
        turn = self._next.get(title, 0)
        chosen = candidates[turn % len(candidates)]
        self._next[title] = turn + 1
        return chosen


class LeastLoadedRouter(Router):
    """Send the request to the candidate with the least deferral pressure.

    Pressure is ``backlog + demand(slot + 1)`` (see
    :meth:`CappedServer.pressure`); ties break toward the earlier entry in
    the preference order, keeping the policy deterministic.
    """

    def choose(
        self,
        title: int,
        slot: int,
        candidates: Sequence[CappedServer],
    ) -> Optional[CappedServer]:
        if not candidates:
            return None
        best = candidates[0]
        best_pressure = best.pressure(slot)
        for server in candidates[1:]:
            pressure = server.pressure(slot)
            if pressure < best_pressure:
                best, best_pressure = server, pressure
        return best


class AffinityRouter(Router):
    """Stick to the earliest preferred replica that still has headroom.

    Concentrating a title's viewers on one server lets its broadcast
    protocol share segment transmissions across all of them; the fallback
    order is exactly the placement's preference list.
    """

    def choose(
        self,
        title: int,
        slot: int,
        candidates: Sequence[CappedServer],
    ) -> Optional[CappedServer]:
        if not candidates:
            return None
        return candidates[0]


class PrefixAwareRouter(Router):
    """Affinity routing that spends prefix slack only under pressure.

    The origin→edge hierarchy changes what a request *needs* from the
    origin: a client whose title has a cached prefix of ``k`` segments
    joins the broadcast for the suffix only, and its first origin deadline
    is ``k`` slots out — slack the router *may* spend.  Spending it
    eagerly backfires: splitting one title's viewers across replicas costs
    broadcast sharing (each replica runs its own schedule), which at small
    prefixes outweighs any levelling gain.  So the policy stays on the
    affinity primary — preserving per-title sharing — and diverts a
    prefix-hit join to the least-pressured replica only when the primary's
    deferral pressure exceeds that replica's by more than ``k``: exactly
    when the join's slack no longer covers riding out the primary's queue.

    With an empty prefix map (``make_router("prefix-aware")``) every title
    is cold and the policy is exactly :class:`AffinityRouter` — which is
    what makes a zero-budget hierarchy bit-for-bit a pure-cluster run.
    """

    def __init__(self, prefixes: Optional[Dict[int, int]] = None):
        self._prefixes: Dict[int, int] = dict(prefixes) if prefixes else {}

    def set_prefixes(self, prefixes: Dict[int, int]) -> None:
        """Replace the title → cached-prefix-length map (re-allocation hook)."""
        self._prefixes = dict(prefixes)

    def choose(
        self,
        title: int,
        slot: int,
        candidates: Sequence[CappedServer],
    ) -> Optional[CappedServer]:
        if not candidates:
            return None
        slack = self._prefixes.get(title, 0)
        if slack <= 0:
            return candidates[0]
        primary = candidates[0]
        primary_pressure = primary.pressure(slot)
        best = primary
        best_pressure = primary_pressure
        for server in candidates[1:]:
            pressure = server.pressure(slot)
            if pressure < best_pressure:
                best, best_pressure = server, pressure
        if primary_pressure - best_pressure > slack:
            return best
        return primary


def make_router(name: str) -> Router:
    """Build the router policy called ``name`` (see :data:`ROUTER_NAMES`)."""
    if name == "round-robin":
        return RoundRobinRouter()
    if name == "least-loaded":
        return LeastLoadedRouter()
    if name == "affinity":
        return AffinityRouter()
    if name == "prefix-aware":
        return PrefixAwareRouter()
    raise ClusterError(f"unknown router {name!r}; choose from {list(ROUTER_NAMES)}")
