"""Multi-server VOD cluster layer: topology, routing, admission, faults.

The paper measures one protocol on one unlimited server; this package
simulates the deployment picture the ROADMAP aims at — a fleet of
bandwidth-capped servers over a shared slotted timeline, a sharded or
replicated catalog, policy-driven request routing with admission control,
and deterministic fault injection with DHB-powered degraded-mode failover.
See ``docs/CLUSTER.md`` for the model and the ``cluster.*`` metric catalog.
"""

from .admission import CappedServer, SlotReport
from .faults import (
    NO_FAULTS,
    ChannelLoss,
    CrashWindow,
    FailoverEvent,
    FailoverReport,
    FaultSchedule,
    LostInstance,
    fail_over,
    lost_instances,
    random_fault_schedule,
    reschedule_instance,
    supports_rescheduling,
)
from .routing import (
    ROUTER_NAMES,
    AffinityRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from .scenario import (
    ClusterResult,
    ClusterScenario,
    ServerSummary,
    preset_scenarios,
    run_scenario,
    run_scenarios,
)
from .topology import (
    PLACEMENT_NAMES,
    CatalogPlacement,
    ClusterTopology,
    ServerSpec,
    build_placement,
    catalog_map,
    popularity_placement,
    replicated_placement,
    sharded_placement,
    uniform_topology,
)

__all__ = [
    "AffinityRouter",
    "CappedServer",
    "CatalogPlacement",
    "ChannelLoss",
    "ClusterResult",
    "ClusterScenario",
    "ClusterTopology",
    "CrashWindow",
    "FailoverEvent",
    "FailoverReport",
    "FaultSchedule",
    "LeastLoadedRouter",
    "LostInstance",
    "NO_FAULTS",
    "PLACEMENT_NAMES",
    "ROUTER_NAMES",
    "RoundRobinRouter",
    "Router",
    "ServerSpec",
    "ServerSummary",
    "SlotReport",
    "build_placement",
    "catalog_map",
    "fail_over",
    "lost_instances",
    "make_router",
    "popularity_placement",
    "preset_scenarios",
    "random_fault_schedule",
    "replicated_placement",
    "reschedule_instance",
    "run_scenario",
    "run_scenarios",
    "sharded_placement",
    "supports_rescheduling",
    "uniform_topology",
]
