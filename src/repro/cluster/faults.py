"""Deterministic fault injection and degraded-mode failover.

Faults are declared up front as a :class:`FaultSchedule` — crash windows
(server down for a slot range, its whole transmission schedule lost) and
channel-loss windows (a fraction of a server's per-slot capacity gone, e.g.
a failed NIC in a bond) — so a faulted run is exactly as reproducible as a
clean one.  :func:`random_fault_schedule` derives a schedule from a named
RNG stream for randomized experiments; the schedule itself stays explicit
and inspectable.

Degraded mode is where the paper's protocol earns its "dynamic": a crashed
server's clients still hold playout deadlines, and every segment instance
the dead schedule owed them must reappear on a surviving replica within the
remaining delivery window.  DHB can do this because its state *is* a
:class:`~repro.core.schedule.SlotSchedule` — the single-future-instance
index enumerates exactly what was lost (:func:`lost_instances`), and the
window heuristic replaces each loss with a least-loaded placement in
``[crash_slot, due_slot]`` (:func:`reschedule_instance`), sharing an
already-scheduled instance on the survivor when one falls inside the
window.  Map-timing protocols (UD, dnpb) keep no reschedulable state, so
crash scenarios are refused for them (:func:`supports_rescheduling`) rather
than silently dropping segments.

A rescheduled instance may land *earlier* than a survivor's own future
instance of the same segment; the survivor's schedule then briefly carries
two future instances.  That costs a little bandwidth, never correctness —
the index keeps pointing at the later one, so subsequent admissions still
share it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, NamedTuple, Tuple

import numpy as np

from ..core.schedule import SlotSchedule
from ..errors import ClusterError
from .admission import CappedServer
from .topology import ClusterTopology


@dataclass(frozen=True)
class CrashWindow:
    """Server ``server_id`` is down for slots ``[start_slot, end_slot)``.

    The crash takes effect at the *start* of ``start_slot`` — before that
    slot's transmissions are finalized, so every instance the server had
    scheduled for ``start_slot`` or later is lost and must fail over.  The
    server returns (with empty schedules) at the start of ``end_slot``.
    """

    server_id: int
    start_slot: int
    end_slot: int

    def __post_init__(self):
        if self.start_slot < 0:
            raise ClusterError(f"crash start_slot must be >= 0, got {self.start_slot}")
        if self.end_slot <= self.start_slot:
            raise ClusterError(
                f"crash window [{self.start_slot}, {self.end_slot}) is empty"
            )

    def covers(self, slot: int) -> bool:
        """Whether the server is down during ``slot``."""
        return self.start_slot <= slot < self.end_slot


@dataclass(frozen=True)
class ChannelLoss:
    """A fraction of one server's channels is lost for ``[start_slot, end_slot)``.

    The effective capacity during the window is
    ``floor(nominal * (1 - fraction))`` — demand over it defers through the
    admission ledger like any other overload.
    """

    server_id: int
    start_slot: int
    end_slot: int
    fraction: float

    def __post_init__(self):
        if self.start_slot < 0:
            raise ClusterError(f"loss start_slot must be >= 0, got {self.start_slot}")
        if self.end_slot <= self.start_slot:
            raise ClusterError(
                f"loss window [{self.start_slot}, {self.end_slot}) is empty"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ClusterError(f"loss fraction must be in [0, 1], got {self.fraction}")

    def covers(self, slot: int) -> bool:
        """Whether the loss applies during ``slot``."""
        return self.start_slot <= slot < self.end_slot


@dataclass(frozen=True)
class FaultSchedule:
    """The complete, declared-up-front fault plan for one cluster run."""

    crashes: Tuple[CrashWindow, ...] = ()
    losses: Tuple[ChannelLoss, ...] = ()

    def __post_init__(self):
        by_server: dict = {}
        for crash in self.crashes:
            by_server.setdefault(crash.server_id, []).append(crash)
        for server_id, windows in by_server.items():
            windows.sort(key=lambda w: w.start_slot)
            for earlier, later in zip(windows, windows[1:]):
                if later.start_slot < earlier.end_slot:
                    raise ClusterError(
                        f"server {server_id} has overlapping crash windows "
                        f"[{earlier.start_slot}, {earlier.end_slot}) and "
                        f"[{later.start_slot}, {later.end_slot})"
                    )

    @property
    def is_empty(self) -> bool:
        """Whether the schedule injects nothing at all."""
        return not self.crashes and not self.losses

    def validate_against(self, topology: ClusterTopology) -> None:
        """Reject windows that reference servers the topology lacks."""
        known = {spec.server_id for spec in topology.servers}
        for window in (*self.crashes, *self.losses):
            if window.server_id not in known:
                raise ClusterError(
                    f"fault window references unknown server {window.server_id}"
                )

    def crashes_at(self, slot: int) -> List[int]:
        """Server ids whose crash window starts at ``slot``."""
        return [c.server_id for c in self.crashes if c.start_slot == slot]

    def recoveries_at(self, slot: int) -> List[int]:
        """Server ids whose crash window ends at ``slot``."""
        return [c.server_id for c in self.crashes if c.end_slot == slot]

    def is_down(self, server_id: int, slot: int) -> bool:
        """Whether ``server_id`` is inside any crash window during ``slot``."""
        return any(
            c.server_id == server_id and c.covers(slot) for c in self.crashes
        )

    def effective_capacity(self, server_id: int, nominal: int, slot: int) -> int:
        """Per-slot channel budget after applying loss windows.

        Overlapping losses do not stack; the worst (largest) fraction wins.
        """
        fraction = 0.0
        for loss in self.losses:
            if loss.server_id == server_id and loss.covers(slot):
                fraction = max(fraction, loss.fraction)
        if fraction == 0.0:
            return nominal
        return int(math.floor(nominal * (1.0 - fraction)))


#: A schedule that injects nothing — the default for clean scenarios.
NO_FAULTS = FaultSchedule()


def random_fault_schedule(
    topology: ClusterTopology,
    horizon_slots: int,
    rng: np.random.Generator,
    n_crashes: int = 1,
    down_slots: int = 40,
) -> FaultSchedule:
    """Draw ``n_crashes`` non-overlapping single-server crash windows.

    Victims are distinct servers; windows start uniformly in the middle
    half of the horizon (so warmup and drain stay clean) and last
    ``down_slots`` slots, clipped to the horizon.  Deterministic given the
    generator state — use a named :class:`~repro.sim.rng.RandomStreams`
    stream to keep the rest of the workload unperturbed.
    """
    if n_crashes < 0:
        raise ClusterError(f"n_crashes must be >= 0, got {n_crashes}")
    if n_crashes > topology.n_servers:
        raise ClusterError(
            f"cannot crash {n_crashes} of {topology.n_servers} servers"
        )
    if down_slots < 1:
        raise ClusterError(f"down_slots must be >= 1, got {down_slots}")
    ids = [spec.server_id for spec in topology.servers]
    victims = rng.choice(len(ids), size=n_crashes, replace=False)
    low = horizon_slots // 4
    high = max(low + 1, (3 * horizon_slots) // 4)
    crashes = []
    for victim in sorted(int(v) for v in victims):
        start = int(rng.integers(low, high))
        end = min(start + down_slots, horizon_slots)
        crashes.append(
            CrashWindow(server_id=ids[victim], start_slot=start, end_slot=end)
        )
    return FaultSchedule(crashes=tuple(crashes))


# -- degraded-mode failover ----------------------------------------------------


class LostInstance(NamedTuple):
    """One segment instance a crashed server owed its admitted clients."""

    title: int
    segment: int
    due_slot: int


def supports_rescheduling(protocol) -> bool:
    """Whether degraded-mode failover can read and repair this protocol.

    True exactly when the protocol exposes its state as a public
    :class:`~repro.core.schedule.SlotSchedule` (DHB and its variants);
    map-timing protocols keep private, non-reschedulable state.
    """
    return isinstance(getattr(protocol, "schedule", None), SlotSchedule)


def lost_instances(server: CappedServer, crash_slot: int) -> List[LostInstance]:
    """Enumerate the future instances a crash at ``crash_slot`` destroys.

    Must be called *before* :meth:`CappedServer.crash` (which discards the
    schedules).  The single-future-instance invariant makes this a single
    index read per (title, segment): anything at a slot ``>= crash_slot``
    was not yet transmitted, including instances due in the crash slot
    itself (the crash lands before that slot is finalized).
    """
    lost: List[LostInstance] = []
    for title in server.titles:
        protocol = server.protocols[title]
        if not supports_rescheduling(protocol):
            raise ClusterError(
                f"cannot enumerate lost instances of {type(protocol).__name__}; "
                "crash scenarios require a reschedulable protocol (DHB)"
            )
        schedule = protocol.schedule
        for segment in range(1, schedule.n_segments + 1):
            due = schedule.next_transmission(segment)
            if due is not None and due >= crash_slot:
                lost.append(LostInstance(title=title, segment=segment, due_slot=due))
    return lost


@dataclass
class FailoverEvent:
    """One lost instance's fate: shared with or placed on a survivor."""

    slot: int
    title: int
    segment: int
    due_slot: int
    from_server: int
    to_server: int
    placed_slot: int
    shared: bool


@dataclass
class FailoverReport:
    """Everything a crash transition did, for metrics and audits."""

    crashed_server: int
    slot: int
    events: List[FailoverEvent] = field(default_factory=list)
    lost_for_good: int = 0

    @property
    def rescheduled(self) -> int:
        """Instances newly placed on survivors (shared ones cost nothing)."""
        return sum(1 for event in self.events if not event.shared)


def reschedule_instance(
    protocol,
    crash_slot: int,
    segment: int,
    due_slot: int,
) -> Tuple[int, bool]:
    """Repair one lost instance on a survivor's protocol.

    Returns ``(slot, shared)``: if the survivor already transmits
    ``segment`` within ``[crash_slot, due_slot]`` the orphaned clients just
    listen there (``shared=True``); otherwise the window heuristic places a
    fresh instance in the least-loaded slot of that window — which always
    exists, because the window contains at least ``crash_slot`` itself (the
    crash slot's load is not yet finalized when failover runs).
    """
    if not supports_rescheduling(protocol):
        raise ClusterError(
            f"{type(protocol).__name__} cannot reschedule lost segment "
            "instances; degraded mode requires DHB"
        )
    schedule = protocol.schedule
    existing = schedule.next_transmission(segment)
    if existing is not None and crash_slot <= existing <= due_slot:
        return existing, True
    return schedule.place_latest_min(crash_slot, due_slot, segment), False


def fail_over(
    crashed: CappedServer,
    survivors_of_title,
    crash_slot: int,
) -> FailoverReport:
    """Run the full degraded-mode transition for one crashing server.

    ``survivors_of_title(title)`` must return the preference-ordered list
    of *alive* :class:`CappedServer` replicas of ``title``, excluding the
    crashing server.  Every lost instance is shared with or placed on the
    first survivor (failover is forced — admission headroom does not apply,
    because these clients were already admitted); a title with no surviving
    replica counts its instances in ``lost_for_good`` instead of raising,
    so sharded-catalog experiments can measure the damage.
    """
    lost = lost_instances(crashed, crash_slot)
    crashed.crash(crash_slot)
    report = FailoverReport(crashed_server=crashed.server_id, slot=crash_slot)
    for instance in lost:
        survivors = survivors_of_title(instance.title)
        if not survivors:
            report.lost_for_good += 1
            continue
        target = survivors[0]
        placed_slot, shared = reschedule_instance(
            target.protocols[instance.title],
            crash_slot,
            instance.segment,
            instance.due_slot,
        )
        target.failover_clients_in += 1
        report.events.append(
            FailoverEvent(
                slot=crash_slot,
                title=instance.title,
                segment=instance.segment,
                due_slot=instance.due_slot,
                from_server=crashed.server_id,
                to_server=target.server_id,
                placed_slot=placed_slot,
                shared=shared,
            )
        )
    return report
