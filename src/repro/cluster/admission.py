"""Per-server admission control under a hard channel cap.

A :class:`CappedServer` hosts one slotted protocol instance per title it
carries and enforces the server's per-slot channel budget on their summed
demand.  The paper's protocols assume an uncapacitated server; the cap is
applied at transmission time through a *deferral ledger*:

* each slot, the server owes ``demand + backlog`` segment instances;
* it transmits at most ``capacity`` of them; the remainder carries over to
  the next slot as backlog (those instances go out late — the client-visible
  delay is accounted as *instance-slots of lateness*, one per deferred
  instance per slot);
* a server whose backlog reaches the admission limit reports no headroom,
  which is the signal routers use to reject or divert new requests.

The ledger is aggregate — it counts deferred instances without tracking
*which* instance is late.  That keeps the cap enforcement O(titles) per slot
regardless of load, and matches how the provisioning layer reasons about
overflow slots; scenarios that need exact per-segment delivery accounting
(the fault-injection tests) run with enough capacity that the backlog stays
zero, where scheduled and transmitted instances coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ClusterError
from ..sim.slotted import SlottedModel
from .topology import ServerSpec


@dataclass(frozen=True)
class SlotReport:
    """What one server did during one slot.

    Attributes
    ----------
    demand:
        Segment instances the hosted protocols scheduled for the slot.
    transmitted:
        Instances actually sent (``min(demand + entering backlog, capacity)``).
    backlog:
        Instances still owed after the slot (deferred to later slots).
    capacity:
        The effective channel budget applied (post fault injection).
    alive:
        Whether the server was up during the slot.
    """

    demand: int
    transmitted: int
    backlog: int
    capacity: int
    alive: bool


class CappedServer:
    """One bandwidth-capped server running a protocol instance per title.

    Parameters
    ----------
    spec:
        The server's identity and nominal per-slot capacity.
    titles:
        The titles this server holds a replica of.
    protocol_factory:
        ``protocol_factory(title)`` builds a fresh slotted protocol for one
        title; also used to rebuild state after a crash (a crashed server
        loses its schedule).
    backlog_limit:
        Admission threshold in instances: the server reports headroom only
        while its backlog is strictly below this limit.  Defaults to the
        nominal capacity (i.e. less than one full slot of deferred work).
    """

    def __init__(
        self,
        spec: ServerSpec,
        titles: List[int],
        protocol_factory: Callable[[int], SlottedModel],
        backlog_limit: Optional[int] = None,
    ):
        self.spec = spec
        self.titles = list(titles)
        self._factory = protocol_factory
        self.protocols: Dict[int, SlottedModel] = {
            title: protocol_factory(title) for title in titles
        }
        self.backlog_limit = (
            int(backlog_limit) if backlog_limit is not None else spec.capacity
        )
        if self.backlog_limit < 1:
            raise ClusterError(
                f"server {spec.server_id}: backlog_limit must be >= 1"
            )
        self.alive = True
        self.backlog = 0
        # Lifetime counters (never reset, survive crashes).
        self.admitted = 0
        self.failover_clients_in = 0
        self.transmitted_instances = 0
        self.deferred_instance_slots = 0
        self.down_slots = 0

    @property
    def server_id(self) -> int:
        """The server's id (mirrors the spec)."""
        return self.spec.server_id

    # -- admission ------------------------------------------------------------

    def has_headroom(self) -> bool:
        """Whether a router may send a new request here."""
        return self.alive and self.backlog < self.backlog_limit

    def admit(self, title: int, slot: int) -> None:
        """Admit one request for ``title`` that arrived during ``slot``."""
        if not self.alive:
            raise ClusterError(
                f"server {self.server_id} is down; cannot admit title {title}"
            )
        try:
            protocol = self.protocols[title]
        except KeyError:
            raise ClusterError(
                f"server {self.server_id} holds no replica of title {title}"
            ) from None
        protocol.handle_request(slot)
        self.admitted += 1

    def admit_suffix(self, title: int, slot: int, first_segment: int) -> None:
        """Admit a suffix join: the client holds segments ``< first_segment``.

        The origin→edge hierarchy serves prefixes from edge caches; the
        origin only schedules the remaining suffix.  ``first_segment <= 1``
        is a plain admission (bit-for-bit :meth:`admit` — the zero-budget
        pass-through path); anything else requires a protocol exposing
        ``handle_suffix_request`` (DHB — see
        :func:`repro.cluster.faults.supports_rescheduling` for the analogous
        capability check).
        """
        if first_segment <= 1:
            self.admit(title, slot)
            return
        if not self.alive:
            raise ClusterError(
                f"server {self.server_id} is down; cannot admit title {title}"
            )
        try:
            protocol = self.protocols[title]
        except KeyError:
            raise ClusterError(
                f"server {self.server_id} holds no replica of title {title}"
            ) from None
        handle = getattr(protocol, "handle_suffix_request", None)
        if handle is None:
            raise ClusterError(
                f"protocol {type(protocol).__name__} cannot admit suffix "
                "joins; hierarchy scenarios with a cache budget require DHB"
            )
        handle(slot, first_segment)
        self.admitted += 1

    def pressure(self, slot: int) -> int:
        """Routing load signal: backlog plus the next slot's scheduled demand.

        Deterministic and cheap (O(titles)); the least-loaded router ranks
        candidates by it.
        """
        return self.backlog + self.demand(slot + 1)

    # -- the capped timeline --------------------------------------------------

    def demand(self, slot: int) -> int:
        """Segment instances the hosted protocols scheduled for ``slot``."""
        return sum(protocol.slot_load(slot) for protocol in self.protocols.values())

    def finalize_slot(self, slot: int, capacity: Optional[int] = None) -> SlotReport:
        """Apply the channel cap to ``slot`` and advance the deferral ledger.

        ``capacity`` is the effective budget for the slot (fault injection
        may shrink it); ``None`` uses the nominal spec capacity.  Call once
        per slot, before delivering the slot's arrivals (mirroring the
        slotted driver's record-then-deliver order).
        """
        if not self.alive:
            self.down_slots += 1
            return SlotReport(
                demand=0, transmitted=0, backlog=0, capacity=0, alive=False
            )
        cap = self.spec.capacity if capacity is None else int(capacity)
        if cap < 0:
            raise ClusterError(f"effective capacity must be >= 0, got {cap}")
        demand = self.demand(slot)
        owed = self.backlog + demand
        transmitted = min(owed, cap)
        self.backlog = owed - transmitted
        self.transmitted_instances += transmitted
        self.deferred_instance_slots += self.backlog
        return SlotReport(
            demand=demand,
            transmitted=transmitted,
            backlog=self.backlog,
            capacity=cap,
            alive=True,
        )

    def slot_instances(self, slot: int) -> Dict[int, List[int]]:
        """Title → segment numbers scheduled in ``slot`` (for delivery audits)."""
        return {
            title: protocol.slot_instances(slot)
            for title, protocol in self.protocols.items()
        }

    def release_before(self, slot: int) -> None:
        """Drop per-slot bookkeeping for slots ``< slot`` on every title."""
        for protocol in self.protocols.values():
            protocol.release_before(slot)

    # -- fault transitions ----------------------------------------------------

    def crash(self, slot: int) -> None:
        """Take the server down at ``slot``: all scheduled state is lost.

        Hosted protocols are rebuilt fresh (their pending transmissions are
        gone — the degraded-mode machinery reschedules what clients still
        need on surviving replicas) and the deferral backlog is cleared
        (those instances belonged to the lost schedule).
        """
        if not self.alive:
            return
        self.alive = False
        self.backlog = 0
        self.protocols = {title: self._factory(title) for title in self.titles}
        for protocol in self.protocols.values():
            protocol.release_before(slot)

    def recover(self) -> None:
        """Bring the server back up (with the fresh, empty schedules)."""
        self.alive = True
