"""Dependency-free fallback linter for ``make lint``.

Enforces the same rule set as the ``[tool.ruff.lint]`` config in
``pyproject.toml`` so environments without ruff (this repo refuses to pull
dependencies at lint time) still gate the codebase:

* **E501** — line longer than 100 characters;
* **E711** — comparison to ``None`` with ``==`` / ``!=``;
* **E712** — comparison to ``True`` / ``False`` with ``==`` / ``!=``;
* **E714** — ``not x is y`` instead of ``x is not y``;
* **F401** — imported name never used (module files only; ``__init__.py``
  re-exports are exempt, as are names listed in ``__all__`` or aliased to
  themselves ``import x as x``);
* **F632** — ``is`` / ``is not`` against a str/bytes/int literal;
* **RT100** — ``concurrent.futures`` / ``multiprocessing`` / ``socket`` /
  ``socketserver`` / ``selectors`` imported by a ``src/repro`` module
  outside ``repro.runtime.backends``.  The backend layer owns all
  execution plumbing — pools and wire protocols alike (one dispatch
  discipline, one determinism contract); everything else submits
  :class:`RunSpec` batches to the Engine.
* **CH100** — a ``handle_request`` call inside the columnar branch of
  ``repro/sim/slotted.py`` (any function whose name contains
  ``columnar``).  The columnar hot path exists to eliminate the
  per-request Python loop; batching must go through ``handle_batch``.

A trailing ``# noqa`` comment (bare or with codes) suppresses findings on
that line, mirroring ruff.  Exit status is 1 when any finding survives.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys
from typing import Dict, List, Set, Tuple

MAX_LINE = 100

#: Directories scanned relative to the repository root.
SCAN_DIRS = ("src", "tests", "benchmarks", "tools")

_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: Top-level modules only ``repro.runtime.backends`` may import (rule RT100).
POOL_MODULES = (
    "concurrent",
    "multiprocessing",
    "socket",
    "socketserver",
    "selectors",
)


def _pool_guard(path: pathlib.Path, tree: ast.Module) -> List[Tuple[int, str, str]]:
    """RT100 findings: pool/socket imports outside ``repro.runtime.backends``."""
    posix = path.resolve().as_posix()
    if "/src/repro/" not in posix or "/src/repro/runtime/backends/" in posix:
        return []
    findings: List[Tuple[int, str, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            names = [node.module]
        else:
            continue
        for name in names:
            if name.split(".")[0] in POOL_MODULES:
                findings.append(
                    (
                        node.lineno,
                        "RT100",
                        f"{name!r} imported outside repro.runtime.backends "
                        "(submit RunSpecs to the Engine instead)",
                    )
                )
    return findings


def _columnar_guard(
    path: pathlib.Path, tree: ast.Module
) -> List[Tuple[int, str, str]]:
    """CH100 findings: per-request loops inside the columnar branch.

    Within ``repro/sim/slotted.py``, any function whose name mentions
    ``columnar`` must never reference ``handle_request`` — batched
    admission is the whole point of that branch.
    """
    posix = path.resolve().as_posix()
    if not posix.endswith("/repro/sim/slotted.py"):
        return []
    findings: List[Tuple[int, str, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if "columnar" not in node.name.lower():
            continue
        for inner in ast.walk(node):
            referenced = (
                isinstance(inner, ast.Attribute) and inner.attr == "handle_request"
            ) or (isinstance(inner, ast.Name) and inner.id == "handle_request")
            if referenced:
                findings.append(
                    (
                        inner.lineno,
                        "CH100",
                        f"handle_request referenced inside columnar "
                        f"branch {node.name!r} (use handle_batch)",
                    )
                )
    return findings


def _noqa_lines(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to suppressed codes (empty set = all)."""
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if match:
            codes = match.group("codes")
            suppressed[lineno] = (
                {code.strip().upper() for code in codes.split(",") if code.strip()}
                if codes
                else set()
            )
    return suppressed


class _Checker(ast.NodeVisitor):
    """Collects (lineno, code, message) findings from one module's AST."""

    def __init__(self, is_init: bool):
        self.findings: List[Tuple[int, str, str]] = []
        self.is_init = is_init
        self._imports: Dict[str, Tuple[int, str]] = {}  # bound name -> (line, code ref)
        self._used: Set[str] = set()
        self._exported: Set[str] = set()

    # -- imports / usage ---------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.asname == alias.name:  # explicit re-export idiom
                continue
            self._imports[bound] = (node.lineno, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            if alias.asname == alias.name:
                continue
            self._imports[bound] = (node.lineno, alias.name)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._used.add(node.id)
        elif isinstance(node.ctx, ast.Store) and node.id == "__all__":
            self._exported.add("__all__")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)

    # -- comparisons -------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            operands = [node.left, comparator]
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for operand in operands:
                    if isinstance(operand, ast.Constant):
                        if operand.value is None:
                            self.findings.append(
                                (node.lineno, "E711", "comparison to None with ==/!=")
                            )
                        elif operand.value is True or operand.value is False:
                            self.findings.append(
                                (node.lineno, "E712", "comparison to True/False with ==/!=")
                            )
            elif isinstance(op, (ast.Is, ast.IsNot)):
                for operand in operands:
                    if isinstance(operand, ast.Constant) and isinstance(
                        operand.value, (str, bytes, int)
                    ) and not isinstance(operand.value, bool):
                        self.findings.append(
                            (node.lineno, "F632", "is-comparison with a literal")
                        )
        self.generic_visit(node)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        if isinstance(node.op, ast.Not) and isinstance(node.operand, ast.Compare):
            ops = node.operand.ops
            if len(ops) == 1 and isinstance(ops[0], ast.Is):
                self.findings.append(
                    (node.lineno, "E714", "'not ... is ...' should be 'is not'")
                )
        self.generic_visit(node)

    def finish(self, tree: ast.Module, source: str) -> None:
        if self.is_init:
            return  # package __init__ files re-export; F401 does not apply
        exported: Set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                    exported = {
                        element.value
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    }
        for bound, (lineno, ref) in self._imports.items():
            if bound in self._used or bound in exported:
                continue
            # String annotations and doctests reference names the AST walk
            # cannot see; only flag a name the rest of the source never
            # mentions (the import statement itself is the one allowed hit).
            if len(re.findall(rf"\b{re.escape(bound)}\b", source)) >= 2:
                continue
            self.findings.append((lineno, "F401", f"{ref!r} imported but unused"))


def check_file(path: pathlib.Path) -> List[Tuple[int, str, str]]:
    """All findings for one file, ``# noqa`` suppressions applied."""
    source = path.read_text()
    findings: List[Tuple[int, str, str]] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        if len(line) > MAX_LINE:
            findings.append((lineno, "E501", f"line too long ({len(line)} > {MAX_LINE})"))
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(exc.lineno or 0, "E999", f"syntax error: {exc.msg}")]
    checker = _Checker(is_init=path.name == "__init__.py")
    checker.visit(tree)
    checker.finish(tree, source)
    findings.extend(checker.findings)
    findings.extend(_pool_guard(path, tree))
    findings.extend(_columnar_guard(path, tree))
    suppressed = _noqa_lines(source)
    kept = []
    for lineno, code, message in findings:
        codes = suppressed.get(lineno)
        if codes is not None and (not codes or code in codes):
            continue
        kept.append((lineno, code, message))
    return sorted(kept)


def main(argv=None) -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    targets = [pathlib.Path(arg) for arg in (argv or sys.argv[1:])]
    if not targets:
        targets = [root / name for name in SCAN_DIRS]
    files: List[pathlib.Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        elif target.suffix == ".py":
            files.append(target)
    total = 0
    for path in files:
        for lineno, code, message in check_file(path):
            rel = path.relative_to(root) if root in path.parents else path
            print(f"{rel}:{lineno}: {code} {message}")
            total += 1
    if total:
        print(f"{total} finding(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} files: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
