"""Checkpoint/resume: interrupted sweeps recover without re-execution.

Pins the three promises of :mod:`repro.runtime.checkpoint`:

* **Digest stability** — the journal key is a content digest of
  ``(kind, payload)`` (+ observability mode), equal for equal work and
  different for different work, independent of display labels.
* **Journal robustness** — a torn trailing record (crash mid-append) is
  truncated with a warning, never fatal; everything before it replays.
* **Resume equivalence** — a sweep interrupted at ~50% and resumed over
  the same journal reproduces the uninterrupted run's results *and*
  merged observability state exactly, with completed specs demonstrably
  not re-executed (the ``execution_count`` probe).
"""

import pathlib

import pytest

from repro.experiments.config import SweepConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import MemoryTraceSink, Observation
from repro.runtime import (
    CheckpointStore,
    Engine,
    ProcessPoolBackend,
    RunResult,
    RunSpec,
    SerialBackend,
    execution_count,
    reset_execution_count,
    spec_digest,
)
from repro.runtime.checkpoint import MAGIC, CheckpointCorruptionError

CONFIG = SweepConfig().quick(
    rates_per_hour=(30.0, 90.0), base_hours=2.0, min_requests=10
)
SPECS = [
    RunSpec("sweep-point", (name, name, rate, CONFIG), label=name)
    for name in ("npb", "dhb")
    for rate in CONFIG.rates_per_hour
]


def strip_timers(metrics):
    return {key: value for key, value in metrics.items() if key != "timers"}


def observed_run(engine, checkpoint=None):
    sink = MemoryTraceSink()
    observation = Observation(metrics=MetricsRegistry(), trace=sink)
    results = engine.run(SPECS, observation=observation, checkpoint=checkpoint)
    return (
        [result._replace(metrics=strip_timers(result.metrics)) for result in results],
        strip_timers(observation.metrics.to_dict()),
        list(sink.records),
    )


class TestSpecDigest:
    def test_stable_for_equal_specs(self):
        assert spec_digest(SPECS[0]) == spec_digest(
            RunSpec("sweep-point", ("npb", "npb", 30.0, CONFIG))
        )

    def test_label_is_not_part_of_the_work(self):
        relabeled = RunSpec(SPECS[0].kind, SPECS[0].payload, label="other")
        assert spec_digest(relabeled) == spec_digest(SPECS[0])

    def test_distinct_work_distinct_digest(self):
        digests = {spec_digest(spec) for spec in SPECS}
        assert len(digests) == len(SPECS)

    def test_kind_and_observability_mode_matter(self):
        spec = SPECS[0]
        assert spec_digest(spec) != spec_digest(RunSpec("fig9-series", spec.payload))
        assert spec_digest(spec) != spec_digest(spec, want_metrics=True)
        assert spec_digest(spec, True) != spec_digest(spec, True, True)

    def test_config_content_matters(self):
        other = CONFIG.replace(seed=CONFIG.seed + 1)
        assert spec_digest(SPECS[0]) != spec_digest(
            RunSpec("sweep-point", ("npb", "npb", 30.0, other))
        )


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        with CheckpointStore(path) as store:
            store.record("d1", RunResult(1, {}, []))
            store.record("d2", RunResult({"x": 2.5}, {"counters": {}}, [{"a": 1}]))
        with CheckpointStore(path) as store:
            assert len(store) == 2
            assert store.get("d2").value == {"x": 2.5}
            assert "d1" in store and "missing" not in store

    def test_torn_trailing_record_truncated_not_fatal(self, tmp_path):
        path = tmp_path / "run.ckpt"
        with CheckpointStore(path) as store:
            store.record("d1", RunResult(1, {}, []))
            store.record("d2", RunResult(2, {}, []))
        intact = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x01\xffgarbage torn mid-write")
        with pytest.warns(RuntimeWarning, match="torn record"):
            with CheckpointStore(path) as store:
                assert len(store) == 2
                store.record("d3", RunResult(3, {}, []))
        assert path.stat().st_size > intact
        with CheckpointStore(path) as store:
            assert len(store) == 3  # the post-truncation append survived

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "notajournal"
        path.write_bytes(b"something else entirely")
        with pytest.raises(CheckpointCorruptionError):
            CheckpointStore(path)

    def test_empty_file_initialized(self, tmp_path):
        path = tmp_path / "fresh.ckpt"
        with CheckpointStore(path) as store:
            assert len(store) == 0
        assert path.read_bytes() == MAGIC


class _InterruptingStore(CheckpointStore):
    """Journals normally, then dies — a crash after N completed cells."""

    def __init__(self, path, survive: int):
        super().__init__(path)
        self.survive = survive

    def record(self, digest, result):
        if len(self) >= self.survive:
            raise KeyboardInterrupt("simulated mid-sweep kill")
        super().record(digest, result)


class TestResume:
    def uninterrupted(self):
        return observed_run(Engine(backend=SerialBackend()))

    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        baseline = self.uninterrupted()
        path = tmp_path / "sweep.ckpt"
        half = len(SPECS) // 2

        with pytest.raises(KeyboardInterrupt):
            observed_run(
                Engine(backend=SerialBackend()),
                checkpoint=_InterruptingStore(path, survive=half),
            )

        reset_execution_count()
        with CheckpointStore(path) as store:
            assert len(store) == half
            resumed = observed_run(Engine(backend=SerialBackend()), checkpoint=store)
        # Only the unfinished half executed; the journaled half replayed.
        assert execution_count() == len(SPECS) - half
        assert resumed == baseline

    def test_full_journal_executes_nothing(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with CheckpointStore(path) as store:
            first = observed_run(Engine(backend=SerialBackend()), checkpoint=store)
        reset_execution_count()
        with CheckpointStore(path) as store:
            again = observed_run(Engine(backend=SerialBackend()), checkpoint=store)
        assert execution_count() == 0
        assert again == first

    def test_pooled_run_journals_every_cell(self, tmp_path):
        path = tmp_path / "pooled.ckpt"
        with CheckpointStore(path) as store:
            pooled = observed_run(
                Engine(backend=ProcessPoolBackend(2), n_jobs=2), checkpoint=store
            )
            assert len(store) == len(SPECS)
        reset_execution_count()
        with CheckpointStore(path) as store:
            resumed = observed_run(Engine(backend=SerialBackend()), checkpoint=store)
        assert execution_count() == 0
        assert resumed == pooled == self.uninterrupted()

    def test_journal_is_mode_specific(self, tmp_path):
        """Results journaled without observability must not satisfy an
        observed resume (the digest carries the mode)."""
        path = tmp_path / "plain.ckpt"
        with CheckpointStore(path) as store:
            Engine(backend=SerialBackend()).run(SPECS, checkpoint=store)
            assert len(store) == len(SPECS)
            reset_execution_count()
            observed_run(Engine(backend=SerialBackend()), checkpoint=store)
        assert execution_count() == len(SPECS)

    def test_engine_level_checkpoint_attribute(self, tmp_path):
        path = tmp_path / "attr.ckpt"
        with Engine(
            backend=SerialBackend(), checkpoint=CheckpointStore(path)
        ) as engine:
            values = engine.run_values(SPECS)
        reset_execution_count()
        with Engine(
            backend=SerialBackend(), checkpoint=CheckpointStore(path)
        ) as engine:
            assert engine.run_values(SPECS) == values
        assert execution_count() == 0
        assert pathlib.Path(path).exists()
