"""Only ``repro.runtime`` may touch process pools.

The unified runtime owns all process-pool plumbing; any other module
importing ``concurrent.futures`` or ``multiprocessing`` is re-growing a
private pool and bypassing the Engine's determinism contract.  The same
rule gates CI via ``tools/lint.py`` (rule RT100); this test keeps it
enforced even when only pytest runs.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

BANNED_ROOTS = {"concurrent", "multiprocessing"}


def banned_imports(path: pathlib.Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in BANNED_ROOTS:
                    yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module.split(".")[0] in BANNED_ROOTS:
                yield node.lineno, node.module


def test_pool_imports_confined_to_runtime():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.parent == SRC / "runtime":
            continue
        for lineno, module in banned_imports(path):
            offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}: {module}")
    assert not offenders, (
        "process-pool imports outside repro.runtime:\n" + "\n".join(offenders)
    )


def test_runtime_pool_module_does_use_the_pool():
    """The guard is meaningful: the allowed module really holds the import."""
    assert any(banned_imports(SRC / "runtime" / "pool.py"))
