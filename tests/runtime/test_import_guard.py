"""Only ``repro.runtime.backends`` may touch pools and sockets.

The backend layer owns all execution plumbing; any other module importing
``concurrent.futures``, ``multiprocessing``, or the socket machinery is
re-growing a private pool (or a private wire protocol) and bypassing the
Engine's determinism contract.  The same rule gates CI via
``tools/lint.py`` (rule RT100) and ruff's TID251; this test keeps it
enforced even when only pytest runs.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
BACKENDS = SRC / "runtime" / "backends"

BANNED_ROOTS = {
    "concurrent",
    "multiprocessing",
    "socket",
    "socketserver",
    "selectors",
}


def banned_imports(path: pathlib.Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in BANNED_ROOTS:
                    yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module.split(".")[0] in BANNED_ROOTS:
                yield node.lineno, node.module


def test_pool_and_socket_imports_confined_to_backends():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.parent == BACKENDS:
            continue
        for lineno, module in banned_imports(path):
            offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}: {module}")
    assert not offenders, (
        "pool/socket imports outside repro.runtime.backends:\n"
        + "\n".join(offenders)
    )


def test_backend_modules_do_hold_the_imports():
    """The guard is meaningful: the allowed modules really use the plumbing."""
    assert any(banned_imports(BACKENDS / "process_pool.py"))
    assert any(banned_imports(BACKENDS / "socket_worker.py"))


def test_legacy_pool_shim_is_clean():
    """The deprecated ``runtime.pool`` shim no longer owns a pool itself."""
    assert not any(banned_imports(SRC / "runtime" / "pool.py"))
