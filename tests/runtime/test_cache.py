"""The bounded shared trace cache: LRU discipline and introspection."""

import numpy as np
import pytest

from repro.obs.registry import MetricsRegistry
from repro.runtime.cache import (
    ARRIVAL_CACHE,
    LRUCache,
    cache_info,
    clear_cache,
    configure_cache,
    record_cache_metrics,
)
from repro.runtime.seeds import arrival_trace


@pytest.fixture(autouse=True)
def _reset_shared_cache():
    """Leave the process-wide cache the way each test found it."""
    clear_cache()
    yield
    clear_cache()
    configure_cache(None)


class TestLRUCache:
    def test_hit_does_not_invoke_factory(self):
        cache = LRUCache(max_entries=4)
        assert cache.get_or_create("a", lambda: 1) == 1
        assert cache.get_or_create("a", lambda: pytest.fail("hit!")) == 1
        assert cache.info().hits == 1
        assert cache.info().misses == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(max_entries=2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("a", lambda: -1)  # refresh "a"; "b" is now oldest
        cache.get_or_create("c", lambda: 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert len(cache) == 2

    def test_resize_evicts_down(self):
        cache = LRUCache(max_entries=4)
        for key in "abcd":
            cache.get_or_create(key, lambda: key)
        cache.resize(2)
        assert len(cache) == 2
        assert "c" in cache and "d" in cache

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)
        with pytest.raises(ValueError):
            LRUCache(max_entries=2).resize(0)

    def test_clear_keeps_statistics(self):
        cache = LRUCache(max_entries=2)
        cache.get_or_create("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.info().misses == 1


class TestSharedArrivalCache:
    def test_arrival_trace_memoised(self):
        first = arrival_trace(2001, 50.0, 6.0)
        before = cache_info()
        second = arrival_trace(2001, 50.0, 6.0)
        after = cache_info()
        assert second is first
        assert after.hits == before.hits + 1
        assert not first.flags.writeable

    def test_distinct_keys_distinct_traces(self):
        a = arrival_trace(2001, 50.0, 6.0)
        b = arrival_trace(2002, 50.0, 6.0)
        assert not np.array_equal(a, b)

    def test_configure_cache_bounds_entries(self):
        configure_cache(2)
        for rate in (1.0, 2.0, 3.0, 4.0):
            arrival_trace(2001, rate, 1.0)
        assert cache_info().size == 2
        assert cache_info().max_entries == 2

    def test_record_cache_metrics_gauges(self):
        arrival_trace(2001, 5.0, 1.0)
        registry = MetricsRegistry()
        record_cache_metrics(registry)
        gauges = registry.to_dict()["gauges"]
        assert gauges["runtime.cache.size"]["value"] == len(ARRIVAL_CACHE)
        assert set(gauges) >= {
            "runtime.cache.hits",
            "runtime.cache.misses",
            "runtime.cache.max_entries",
        }
