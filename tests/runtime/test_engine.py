"""Engine semantics: ordering, determinism, observability merge, kinds."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SweepConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import MemoryTraceSink, Observation
from repro.runtime import Engine, RunSpec
from repro.runtime.tasks import execute_spec, register_kind, resolve_kind

TINY = SweepConfig().quick(rates_per_hour=(20.0, 200.0), base_hours=1.0,
                           min_requests=10)


def _sweep_specs():
    return [
        RunSpec("sweep-point", (name, name, rate, TINY), label=f"{name}@{rate:g}")
        for name in ("npb", "dhb")
        for rate in TINY.rates_per_hour
    ]


def test_results_preserve_input_order():
    values = Engine(n_jobs=1).run_values(_sweep_specs())
    assert [point.rate_per_hour for point in values] == [20.0, 200.0, 20.0, 200.0]


def test_parallel_values_bit_for_bit_serial():
    specs = _sweep_specs()
    serial = Engine(n_jobs=1).run_values(specs)
    parallel = Engine(n_jobs=2).run_values(specs)
    assert serial == parallel


def test_parallel_observability_merge_matches_serial():
    specs = _sweep_specs()

    def observed(n_jobs):
        observation = Observation(metrics=MetricsRegistry(), trace=MemoryTraceSink())
        Engine(n_jobs=n_jobs).run(specs, observation=observation)
        return observation

    serial = observed(1)
    parallel = observed(2)
    serial_dict, parallel_dict = serial.metrics.to_dict(), parallel.metrics.to_dict()
    # Timer *durations* are wall-clock; everything else must be identical.
    for section in ("counters", "gauges", "histograms"):
        assert serial_dict[section] == parallel_dict[section]
    assert {name: timer["count"] for name, timer in serial_dict["timers"].items()} == {
        name: timer["count"] for name, timer in parallel_dict["timers"].items()
    }
    assert serial.trace.records == parallel.trace.records
    # Records arrive in task order: npb's two rates, then dhb's.
    protocols = [record["protocol"] for record in serial.trace.records]
    assert protocols == sorted(protocols, key=("npb", "dhb").index)


def test_run_without_observation_skips_snapshots():
    result = execute_spec(_sweep_specs()[0], want_metrics=False, want_trace=False)
    assert result.metrics == {} and result.trace == []


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError, match="unknown task kind"):
        Engine(n_jobs=1).run([RunSpec("no-such-kind", ())])


def test_register_kind_roundtrip_and_duplicates():
    register_kind("test-echo", lambda payload, observation: payload[0] * 2)
    assert resolve_kind("test-echo")(("x",), None) == "xx"
    assert Engine(n_jobs=1).run_values([RunSpec("test-echo", (21,))]) == [42]
    with pytest.raises(ConfigurationError, match="already registered"):
        register_kind("test-echo", lambda payload, observation: None)


def test_engine_resolves_jobs_from_environment(monkeypatch):
    from repro.runtime.config import N_JOBS_ENV

    monkeypatch.setenv(N_JOBS_ENV, "2")
    assert Engine().n_jobs == 2
    assert Engine(n_jobs=3).n_jobs == 3
