"""Runtime config: one precedence chain (env < config field < argument)."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.runtime.config import (
    DEFAULT_N_JOBS,
    DEFAULT_TRACE_CACHE_SIZE,
    N_JOBS_ENV,
    TRACE_CACHE_ENV,
    RuntimeConfig,
    resolve_n_jobs,
)


class TestNJobsPrecedence:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(N_JOBS_ENV, raising=False)
        assert resolve_n_jobs() == DEFAULT_N_JOBS == 1

    def test_environment_overrides_default(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "3")
        assert resolve_n_jobs() == 3

    def test_config_field_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "3")
        assert RuntimeConfig(n_jobs=2).resolve_n_jobs() == 2

    def test_explicit_argument_overrides_config(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "3")
        assert RuntimeConfig(n_jobs=2).resolve_n_jobs(5) == 5

    def test_negative_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(N_JOBS_ENV, raising=False)
        assert resolve_n_jobs(-1) == (os.cpu_count() or 1)

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(0)

    def test_unparsable_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "two")
        with pytest.raises(ConfigurationError):
            resolve_n_jobs()

    def test_empty_environment_ignored(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "  ")
        assert resolve_n_jobs() == 1


class TestTraceCacheSize:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        size = RuntimeConfig().resolve_trace_cache_size()
        assert size == DEFAULT_TRACE_CACHE_SIZE

    def test_environment(self, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, "7")
        assert RuntimeConfig().resolve_trace_cache_size() == 7

    def test_config_field_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, "7")
        assert RuntimeConfig(trace_cache_size=9).resolve_trace_cache_size() == 9

    def test_explicit_overrides_config(self):
        assert RuntimeConfig(trace_cache_size=9).resolve_trace_cache_size(4) == 4

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig().resolve_trace_cache_size(0)


def test_shim_reexports_same_objects():
    """The deprecated parallel module forwards the runtime's resolver."""
    from repro.experiments import parallel

    assert parallel.N_JOBS_ENV is N_JOBS_ENV
    assert parallel.resolve_n_jobs is resolve_n_jobs
