"""Runtime config: one precedence chain (env < config field < argument).

The environment is *advisory*: a typo'd shell export (``REPRO_SWEEP_JOBS=4x``)
must warn and fall back to serial, never abort an experiment mid-sweep.
Explicit arguments and config fields are code and still raise.
"""

import os
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.runtime.config import (
    BACKEND_ENV,
    DEFAULT_N_JOBS,
    DEFAULT_TRACE_CACHE_SIZE,
    N_JOBS_ENV,
    TRACE_CACHE_ENV,
    RuntimeConfig,
    resolve_n_jobs,
)

ALL_CORES = os.cpu_count() or 1


class TestNJobsPrecedence:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(N_JOBS_ENV, raising=False)
        assert resolve_n_jobs() == DEFAULT_N_JOBS == 1

    def test_environment_overrides_default(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "3")
        assert resolve_n_jobs() == 3

    def test_config_field_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "3")
        assert RuntimeConfig(n_jobs=2).resolve_n_jobs() == 2

    def test_explicit_argument_overrides_config(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "3")
        assert RuntimeConfig(n_jobs=2).resolve_n_jobs(5) == 5

    def test_negative_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(N_JOBS_ENV, raising=False)
        assert resolve_n_jobs(-1) == ALL_CORES

    def test_zero_argument_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(0)

    def test_zero_config_field_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(n_jobs=0).resolve_n_jobs()


class TestAdvisoryEnvironment:
    """Satellite bugfix: malformed env values warn and fall back, never raise."""

    #: (raw REPRO_SWEEP_JOBS, resolved n_jobs, warns?)
    JOBS_TABLE = [
        ("4", 4, False),
        (" 8 ", 8, False),
        ("-1", ALL_CORES, False),
        ("", DEFAULT_N_JOBS, False),
        ("  ", DEFAULT_N_JOBS, False),
        ("4x", DEFAULT_N_JOBS, True),
        ("two", DEFAULT_N_JOBS, True),
        ("3.5", DEFAULT_N_JOBS, True),
        ("0", DEFAULT_N_JOBS, True),
    ]

    @pytest.mark.parametrize("raw,expected,warns", JOBS_TABLE)
    def test_sweep_jobs_env_table(self, monkeypatch, raw, expected, warns):
        monkeypatch.setenv(N_JOBS_ENV, raw)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_n_jobs() == expected
        assert bool([w for w in caught if w.category is RuntimeWarning]) == warns

    def test_malformed_env_does_not_break_an_engine(self, monkeypatch):
        from repro.runtime import Engine, RunSpec

        monkeypatch.setenv(N_JOBS_ENV, "4x")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            engine = Engine()
        assert engine.n_jobs == 1
        assert engine.run_values([RunSpec("figure-render", (1,))])

    def test_malformed_trace_cache_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, "lots")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            size = RuntimeConfig().resolve_trace_cache_size()
        assert size == DEFAULT_TRACE_CACHE_SIZE

    def test_unknown_backend_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "quantum")
        with pytest.warns(RuntimeWarning, match="quantum"):
            assert RuntimeConfig().resolve_backend() is None

    def test_backend_env_honoured(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "serial")
        assert RuntimeConfig().resolve_backend() == "serial"

    def test_backend_config_field_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "serial")
        assert RuntimeConfig(backend="process").resolve_backend() == "process"

    def test_backend_explicit_overrides_config(self):
        assert RuntimeConfig(backend="process").resolve_backend("serial") == "serial"


class TestTraceCacheSize:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        size = RuntimeConfig().resolve_trace_cache_size()
        assert size == DEFAULT_TRACE_CACHE_SIZE

    def test_environment(self, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, "7")
        assert RuntimeConfig().resolve_trace_cache_size() == 7

    def test_config_field_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, "7")
        assert RuntimeConfig(trace_cache_size=9).resolve_trace_cache_size() == 9

    def test_explicit_overrides_config(self):
        assert RuntimeConfig(trace_cache_size=9).resolve_trace_cache_size(4) == 4

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig().resolve_trace_cache_size(0)


def test_shim_reexports_same_objects():
    """The deprecated parallel module forwards the runtime's resolver."""
    from repro.experiments import parallel

    assert parallel.N_JOBS_ENV is N_JOBS_ENV
    assert parallel.resolve_n_jobs is resolve_n_jobs
