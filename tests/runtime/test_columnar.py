"""The columnar hot path reproduces the pre-runtime goldens exactly.

``golden_runtime.json`` predates the columnar path entirely, so matching it
is the strongest equivalence statement available: the batched driver and the
legacy per-request loop agree bit for bit on the full figure-7 sweep.  This
module also pins *which* path the runtime actually takes, so the golden
match cannot silently degenerate into scalar-vs-scalar.
"""

import json
import pathlib

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.fig7 import FIG7_PROTOCOLS, run_fig7
from repro.experiments.runner import arrivals_for_rate, measure_protocol
from repro.protocols.registry import ProtocolContext, build_protocol
from repro.runtime import Engine
from repro.sim import slotted
from repro.sim.slotted import SlottedModel

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_runtime.json").read_text()
)

QUICK = SweepConfig().quick()


def golden_fig7_points():
    """Flat (name, label, rate, golden point) grid for the quick sweep."""
    for (name, label), series in zip(FIG7_PROTOCOLS, GOLDEN["fig7_quick"]):
        assert series["protocol"] == label
        for rate, point in zip(QUICK.rates_per_hour, series["points"]):
            yield name, label, rate, point


def point_dump(point):
    return {
        "rate_per_hour": point.rate_per_hour,
        "mean_bandwidth": point.mean_bandwidth,
        "max_bandwidth": point.max_bandwidth,
        "mean_wait": point.mean_wait,
        "n_requests": point.n_requests,
    }


def quick_protocol(name, rate):
    return build_protocol(
        name,
        ProtocolContext(
            n_segments=QUICK.n_segments,
            duration=QUICK.duration,
            rate_per_hour=rate,
        ),
    )


@pytest.mark.parametrize("columnar", [True, False])
def test_every_fig7_cell_matches_golden_on_both_paths(columnar):
    for name, label, rate, golden in golden_fig7_points():
        point = measure_protocol(
            quick_protocol(name, rate),
            QUICK,
            rate,
            arrival_times=arrivals_for_rate(QUICK, rate),
            columnar=columnar,
        )
        assert point_dump(point) == golden, (label, rate, columnar)


def test_sweep_points_actually_run_columnar(monkeypatch):
    """The runtime's slotted cells take the batched path, not the fallback."""
    columnar_runs = []
    original = slotted.SlottedSimulation._run_columnar

    def spy(self, arrivals):
        columnar_runs.append(self.protocol)
        return original(self, arrivals)

    monkeypatch.setattr(slotted.SlottedSimulation, "_run_columnar", spy)
    run_fig7(QUICK, engine=Engine(n_jobs=1))
    slotted_cells = sum(
        isinstance(quick_protocol(name, rate), SlottedModel)
        for name, _ in FIG7_PROTOCOLS
        for rate in QUICK.rates_per_hour
    )
    assert len(columnar_runs) == slotted_cells
    assert slotted_cells > 0
