"""Module-level task functions for backend tests.

Backends pickle task functions *by reference*, so anything a pool or
socket worker runs must live in an importable module — not in a test
body.  The crashing variants simulate infrastructure failure (a worker
dying mid-task: OOM-kill, segfault) as opposed to a task raising.
"""

import multiprocessing
import os


def double(x):
    """A trivial deterministic task."""
    return x * 2


def raise_value_error(x):
    """A task that *fails* (exceptions must propagate, never degrade)."""
    raise ValueError(f"task failure for {x!r}")


def crash_if_child_process(x):
    """Dies abruptly in any worker process; succeeds inline.

    ``multiprocessing.parent_process()`` is ``None`` only in the original
    process, so a pool/socket worker running this is killed mid-task
    (exercising BrokenProcessPool / socket-worker loss) while the serial
    degradation re-run in the parent completes normally.
    """
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return x * 2


def crash_if_not_pid(pid, x):
    """Dies abruptly unless running in the process with ``pid``.

    The socket-worker analogue of :func:`crash_if_child_process`:
    coordinators pass their own pid, so every remote worker is killed
    mid-task while the coordinator's inline fallback completes.
    """
    if os.getpid() != pid:
        os._exit(13)
    return x * 2
