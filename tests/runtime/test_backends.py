"""Backend equivalence: Serial == ProcessPool == SocketWorker, bit for bit.

The Engine's contract is that the backend is invisible in the outputs:
the same spec batch must produce identical ``RunResult`` values *and*
identical merged observability state (metrics + re-emitted trace records)
however and wherever the cells ran.  These tests pin that, plus the
failure discipline each backend owes the caller:

* a task *raising* propagates (never silently degrades);
* a *worker dying* degrades gracefully — the process pool re-runs the
  batch serially once, the socket coordinator reassigns and ultimately
  runs stubborn tasks inline — and the event surfaces as the
  ``runtime.pool.degraded`` metric.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import MemoryTraceSink, Observation
from repro.experiments.config import SweepConfig
from repro.runtime import (
    Engine,
    ProcessPoolBackend,
    RemoteTaskError,
    RunSpec,
    SerialBackend,
    SocketWorkerBackend,
    resolve_backend,
)

from . import workerlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: A small heterogeneous batch: two slotted protocols, one reactive, two rates.
CONFIG = SweepConfig().quick(
    rates_per_hour=(30.0, 90.0), base_hours=2.0, min_requests=10
)
SPECS = [
    RunSpec("sweep-point", (name, name, rate, CONFIG), label=name)
    for name in ("npb", "dhb", "stream-tapping")
    for rate in CONFIG.rates_per_hour
]


def strip_timers(metrics):
    """Metrics minus wall-clock timers — the only nondeterministic family."""
    return {key: value for key, value in metrics.items() if key != "timers"}


def run_observed(engine):
    """The batch's results plus merged metrics dict and trace records.

    Everything deterministic is kept exact: values, per-cell and merged
    counters/gauges/histograms, and the re-emitted trace records.  Only
    wall-clock timers are stripped.
    """
    sink = MemoryTraceSink()
    observation = Observation(metrics=MetricsRegistry(), trace=sink)
    with engine:
        results = engine.run(SPECS, observation=observation)
    normalized = [
        result._replace(metrics=strip_timers(result.metrics))
        for result in results
    ]
    return normalized, strip_timers(observation.metrics.to_dict()), list(sink.records)


@pytest.fixture(scope="module")
def serial_outcome():
    return run_observed(Engine(backend=SerialBackend()))


def test_process_pool_matches_serial(serial_outcome):
    pooled = run_observed(Engine(backend=ProcessPoolBackend(2), n_jobs=2))
    assert pooled == serial_outcome


def test_socket_loopback_matches_serial(serial_outcome):
    backend = SocketWorkerBackend(spawn_workers=2)
    outcome = run_observed(Engine(backend=backend, n_jobs=2))
    assert backend.degraded_events == 0
    assert outcome == serial_outcome


def test_resolve_backend_names():
    assert isinstance(resolve_backend(None, 1), SerialBackend)
    assert isinstance(resolve_backend(None, 4), ProcessPoolBackend)
    assert isinstance(resolve_backend("serial", 4), SerialBackend)
    assert isinstance(resolve_backend("process", 4), ProcessPoolBackend)
    backend = SerialBackend()
    assert resolve_backend(backend, 4) is backend


def test_ordered_results_and_streaming_callback():
    """Results return in task order; on_result fires once per task."""
    backend = ProcessPoolBackend(2)
    seen = {}
    tasks = [(i,) for i in range(8)]
    results = backend.submit_ordered(
        workerlib.double, tasks, lambda i, value: seen.setdefault(i, value)
    )
    assert results == [i * 2 for i in range(8)]
    assert seen == {i: i * 2 for i in range(8)}


def test_task_exception_propagates_from_pool():
    backend = ProcessPoolBackend(2)
    with pytest.raises(ValueError):
        backend.submit_ordered(workerlib.raise_value_error, [(1,), (2,)])
    assert backend.degraded_events == 0


class TestPoolDegradation:
    """Satellite bugfix: a worker dying mid-batch must not abort the run."""

    def test_broken_pool_reruns_serially_once(self):
        backend = ProcessPoolBackend(2)
        tasks = [(i,) for i in range(6)]
        results = backend.submit_ordered(workerlib.crash_if_child_process, tasks)
        assert results == [i * 2 for i in range(6)]
        assert backend.degraded_events == 1

    def test_degradation_emits_runtime_pool_degraded_metric(self, monkeypatch):
        # Route the engine's real spec batch through a backend whose pool
        # breaks mid-flight, and check the merged metrics record it.
        backend = ProcessPoolBackend(2)

        def breaking_submit(fn, tasks, on_result=None):
            backend.degraded_events += 1
            return backend.run_serial(fn, tasks, on_result)

        monkeypatch.setattr(backend, "submit_ordered", breaking_submit)
        observation = Observation(metrics=MetricsRegistry())
        Engine(backend=backend).run(SPECS[:2], observation=observation)
        state = observation.metrics.to_dict()
        assert state["counters"]["runtime.pool.degraded"] == 1

    def test_callback_not_doubled_after_degradation(self):
        backend = ProcessPoolBackend(2)
        calls = []
        results = backend.submit_ordered(
            workerlib.crash_if_child_process,
            [(i,) for i in range(6)],
            lambda i, value: calls.append(i),
        )
        assert results == [i * 2 for i in range(6)]
        assert sorted(calls) == list(range(6))  # exactly once per task


class TestSocketWorkers:
    def _external_worker(self, address):
        """One ``repro-cli worker`` able to import this test package."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT), str(REPO_ROOT / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--connect",
                f"{address[0]}:{address[1]}",
            ],
            stdout=subprocess.DEVNULL,
            env=env,
        )

    def test_remote_task_error_carries_traceback(self):
        with SocketWorkerBackend(spawn_workers=0, min_workers=1) as backend:
            worker = self._external_worker(backend.address)
            try:
                with pytest.raises(RemoteTaskError, match="task failure"):
                    backend.submit_ordered(workerlib.raise_value_error, [(1,)])
            finally:
                worker.terminate()
                worker.wait(timeout=10)

    def test_worker_loss_reassigns_then_degrades_inline(self):
        # Every worker dies mid-task; after max_retries reassignments the
        # coordinator runs tasks inline so the batch still completes.
        with SocketWorkerBackend(
            spawn_workers=0, min_workers=2, max_retries=1
        ) as backend:
            workers = [
                self._external_worker(backend.address) for _ in range(2)
            ]
            try:
                tasks = [(os.getpid(), i) for i in range(4)]
                results = backend.submit_ordered(
                    workerlib.crash_if_not_pid, tasks
                )
                assert results == [i * 2 for i in range(4)]
                assert backend.degraded_events >= 1
            finally:
                for worker in workers:
                    worker.terminate()
                    worker.wait(timeout=10)

    def test_empty_batch(self):
        with SocketWorkerBackend(spawn_workers=0) as backend:
            assert backend.submit_ordered(workerlib.double, []) == []


class TestSocketRequireWorkers:
    """Satellite bugfix: an empty fleet at the deadline is a clear error.

    Before, ``--backend socket`` with zero registrations silently computed
    the whole batch inline on the coordinator.  Table-driven like the
    advisory-environment tests in ``test_config.py``.
    """

    #: (require_workers kwarg, expect ConfigurationError?)
    NO_WORKER_TABLE = [
        (None, True),  # external-worker mode defaults to strict
        (True, True),
        (False, False),  # explicit opt-in to degraded inline execution
    ]

    @pytest.mark.parametrize("require,expect_error", NO_WORKER_TABLE)
    def test_no_registrations_at_deadline(self, require, expect_error):
        with SocketWorkerBackend(
            spawn_workers=0,
            min_workers=1,
            register_timeout=0.2,
            require_workers=require,
        ) as backend:
            if expect_error:
                with pytest.raises(
                    ConfigurationError, match="no workers registered"
                ) as excinfo:
                    backend.submit_ordered(workerlib.double, [(2,)])
                # The message must be actionable: how to start a worker.
                assert "repro-cli worker --connect" in str(excinfo.value)
                assert backend.degraded_events == 0
            else:
                assert backend.submit_ordered(workerlib.double, [(2,)]) == [4]
                assert backend.degraded_events == 1

    #: (spawn_workers, resolved require_workers default)
    DEFAULT_TABLE = [
        (0, True),  # waiting on external workers: strict
        (2, False),  # spawning our own: a spawn hiccup degrades gracefully
    ]

    @pytest.mark.parametrize("spawn,expected", DEFAULT_TABLE)
    def test_default_resolution(self, spawn, expected):
        with SocketWorkerBackend(spawn_workers=spawn) as backend:
            assert backend.require_workers is expected
