"""Tests for repro.video.io — trace persistence."""

import numpy as np
import pytest

from repro.errors import VideoModelError
from repro.video.io import load_trace, save_trace


def test_roundtrip(tmp_path, tiny_vbr):
    target = tmp_path / "tiny.trace"
    save_trace(tiny_vbr, target)
    loaded = load_trace(target)
    assert loaded.name == "tiny"
    assert np.allclose(loaded.bytes_per_second, tiny_vbr.bytes_per_second)


def test_name_override(tmp_path, tiny_vbr):
    target = tmp_path / "x.trace"
    save_trace(tiny_vbr, target)
    assert load_trace(target, name="override").name == "override"


def test_headerless_file(tmp_path):
    target = tmp_path / "plain.trace"
    target.write_text("10\n20\n30\n")
    video = load_trace(target)
    assert video.total_bytes == 60.0
    assert video.name == "plain"


def test_blank_lines_skipped(tmp_path):
    target = tmp_path / "gaps.trace"
    target.write_text("10\n\n20\n\n")
    assert load_trace(target).duration == 2.0


def test_missing_file():
    with pytest.raises(VideoModelError):
        load_trace("/nonexistent/path.trace")


def test_malformed_line(tmp_path):
    target = tmp_path / "bad.trace"
    target.write_text("10\nnot-a-number\n")
    with pytest.raises(VideoModelError) as excinfo:
        load_trace(target)
    assert "line" in str(excinfo.value) or ":2:" in str(excinfo.value)


def test_empty_file(tmp_path):
    target = tmp_path / "empty.trace"
    target.write_text("# only a header\n")
    with pytest.raises(VideoModelError):
        load_trace(target)


def test_matrix_trace_roundtrip(tmp_path):
    from repro.video.matrix import matrix_like_video

    video = matrix_like_video()
    target = tmp_path / "matrix.trace"
    save_trace(video, target)
    loaded = load_trace(target)
    assert loaded.duration == video.duration
    assert loaded.average_bandwidth == pytest.approx(video.average_bandwidth)
    assert loaded.peak_bandwidth() == pytest.approx(video.peak_bandwidth())
