"""Tests for repro.video.model."""

import pytest

from repro.errors import VideoModelError
from repro.video.model import CBRVideo


def test_cbr_defaults_to_two_hours_unit_rate():
    video = CBRVideo()
    assert video.duration == 7200.0
    assert video.average_bandwidth == 1.0


def test_cumulative_is_linear():
    video = CBRVideo(duration=100.0, rate=2.0)
    assert video.cumulative_bytes(0.0) == 0.0
    assert video.cumulative_bytes(25.0) == 50.0
    assert video.cumulative_bytes(100.0) == 200.0


def test_cumulative_clamps():
    video = CBRVideo(duration=100.0)
    assert video.cumulative_bytes(-5.0) == 0.0
    assert video.cumulative_bytes(500.0) == 100.0


def test_total_bytes():
    assert CBRVideo(duration=60.0, rate=3.0).total_bytes == 180.0


def test_validation():
    with pytest.raises(VideoModelError):
        CBRVideo(duration=0.0)
    with pytest.raises(VideoModelError):
        CBRVideo(duration=10.0, rate=0.0)


def test_repr_mentions_parameters():
    assert "7200" in repr(CBRVideo())
