"""Tests for repro.video.matrix — the calibrated Section 4 trace."""

import numpy as np
import pytest

from repro.errors import VideoModelError
from repro.units import KILOBYTE
from repro.video.matrix import (
    MATRIX_AVG_KBPS,
    MATRIX_DURATION,
    MATRIX_PEAK_KBPS,
    calibrate_trace,
    matrix_like_video,
)

# Build once; the trace is deterministic and moderately expensive.
VIDEO = matrix_like_video()


def test_duration_matches_paper():
    assert VIDEO.duration == float(MATRIX_DURATION)  # 2 h 16 min 10 s


def test_average_bandwidth_matches_paper():
    assert VIDEO.average_bandwidth / KILOBYTE == pytest.approx(MATRIX_AVG_KBPS, rel=1e-9)


def test_peak_bandwidth_matches_paper():
    assert VIDEO.peak_bandwidth(1) / KILOBYTE == pytest.approx(
        MATRIX_PEAK_KBPS, rel=1e-9
    )


def test_trace_strictly_positive():
    assert float(np.min(VIDEO.bytes_per_second)) > 0


def test_deterministic_given_seed():
    again = matrix_like_video()
    assert np.allclose(VIDEO.bytes_per_second, again.bytes_per_second)


def test_different_seed_different_trace_same_statistics():
    other = matrix_like_video(seed=7)
    assert not np.allclose(VIDEO.bytes_per_second, other.bytes_per_second)
    assert other.average_bandwidth / KILOBYTE == pytest.approx(MATRIX_AVG_KBPS)
    assert other.peak_bandwidth() / KILOBYTE == pytest.approx(MATRIX_PEAK_KBPS)


class TestCalibrateTrace:
    def test_pins_mean_and_max(self):
        trace = np.array([1.0, 2.0, 3.0, 6.0])
        calibrated = calibrate_trace(trace, target_mean=100.0, target_peak=150.0)
        assert calibrated.mean() == pytest.approx(100.0)
        assert calibrated.max() == pytest.approx(150.0)

    def test_preserves_shape(self):
        trace = np.array([1.0, 2.0, 3.0, 6.0])
        calibrated = calibrate_trace(trace, 100.0, 150.0)
        # Affine maps preserve ordering and relative spacing.
        assert np.all(np.diff(calibrated) > 0)
        ratio = (calibrated[1] - calibrated[0]) / (calibrated[2] - calibrated[1])
        original = (trace[1] - trace[0]) / (trace[2] - trace[1])
        assert ratio == pytest.approx(original)

    def test_rejects_peak_below_mean(self):
        with pytest.raises(VideoModelError):
            calibrate_trace(np.array([1.0, 2.0]), 10.0, 10.0)

    def test_rejects_constant_source(self):
        with pytest.raises(VideoModelError):
            calibrate_trace(np.array([5.0, 5.0]), 10.0, 20.0)

    def test_rejects_negative_output(self):
        # Huge spread forced onto a tiny mean drives the floor negative.
        trace = np.array([1.0, 1.0, 1.0, 100.0])
        with pytest.raises(VideoModelError):
            calibrate_trace(trace, target_mean=10.0, target_peak=1000.0)
