"""Tests for repro.video.segmentation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import VideoModelError
from repro.video.model import CBRVideo
from repro.video.segmentation import segment_video, segments_for_wait
from repro.video.vbr import VBRVideo


def test_cbr_segments_equal(tiny_vbr):
    seg = segment_video(CBRVideo(duration=100.0, rate=2.0), 4)
    assert seg.segment_bytes == pytest.approx([50.0] * 4)
    assert seg.segment_duration == 25.0


def test_vbr_segment_bytes_sum_to_total(tiny_vbr):
    seg = segment_video(tiny_vbr, 5)
    assert sum(seg.segment_bytes) == pytest.approx(tiny_vbr.total_bytes)


def test_fractional_boundaries_handled():
    video = VBRVideo([100.0, 100.0, 100.0])
    seg = segment_video(video, 2)  # boundaries at 1.5 s
    assert seg.segment_bytes == pytest.approx([150.0, 150.0])


def test_max_segment_rate(tiny_vbr):
    seg = segment_video(tiny_vbr, 4)
    expected_max = max(seg.segment_bytes) / seg.segment_duration
    assert seg.max_segment_rate == pytest.approx(expected_max)
    # DHB-b rate sits between the average and the 1-second peak.
    assert tiny_vbr.average_bandwidth <= seg.max_segment_rate
    assert seg.max_segment_rate <= tiny_vbr.peak_bandwidth()


def test_segment_rate_lookup(tiny_vbr):
    seg = segment_video(tiny_vbr, 3)
    assert seg.segment_rate(1) == pytest.approx(
        seg.segment_bytes[0] / seg.segment_duration
    )
    with pytest.raises(VideoModelError):
        seg.segment_rate(0)
    with pytest.raises(VideoModelError):
        seg.segment_rate(4)


def test_segments_for_wait_paper_example():
    # 8170-second video, one-minute wait -> 137 segments (Section 4).
    assert segments_for_wait(8170.0, 60.0) == 137


def test_segments_for_wait_exact_division():
    assert segments_for_wait(7200.0, 72.0) == 100


def test_segments_for_wait_validation():
    with pytest.raises(VideoModelError):
        segments_for_wait(0.0, 60.0)
    with pytest.raises(VideoModelError):
        segments_for_wait(100.0, 0.0)


def test_segment_video_validation(tiny_vbr):
    with pytest.raises(VideoModelError):
        segment_video(tiny_vbr, 0)


@given(n=st.integers(1, 30))
def test_waiting_time_bound_holds(n):
    video = CBRVideo(duration=300.0)
    seg = segment_video(video, n)
    # Segment duration is the max wait; n segments cover the whole video.
    assert seg.segment_duration * n == pytest.approx(video.duration)
    assert sum(seg.segment_bytes) == pytest.approx(video.total_bytes)
