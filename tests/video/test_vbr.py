"""Tests for repro.video.vbr."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import VideoModelError
from repro.video.vbr import VBRVideo


def test_basic_statistics(tiny_vbr):
    assert tiny_vbr.duration == 12.0
    assert tiny_vbr.total_bytes == pytest.approx(sum(tiny_vbr.bytes_per_second))
    assert tiny_vbr.peak_bandwidth() == 260.0
    assert tiny_vbr.average_bandwidth == pytest.approx(tiny_vbr.total_bytes / 12.0)


def test_peak_over_window():
    video = VBRVideo([10.0, 100.0, 100.0, 10.0])
    assert video.peak_bandwidth(window_seconds=1) == 100.0
    assert video.peak_bandwidth(window_seconds=2) == 100.0
    assert video.peak_bandwidth(window_seconds=4) == 55.0


def test_peak_window_validation(tiny_vbr):
    with pytest.raises(VideoModelError):
        tiny_vbr.peak_bandwidth(window_seconds=0)
    with pytest.raises(VideoModelError):
        tiny_vbr.peak_bandwidth(window_seconds=13)


def test_cumulative_interpolates_within_seconds():
    video = VBRVideo([100.0, 200.0])
    assert video.cumulative_bytes(0.5) == pytest.approx(50.0)
    assert video.cumulative_bytes(1.5) == pytest.approx(200.0)
    assert video.cumulative_bytes(2.0) == pytest.approx(300.0)


def test_cumulative_clamps():
    video = VBRVideo([100.0])
    assert video.cumulative_bytes(-1.0) == 0.0
    assert video.cumulative_bytes(99.0) == 100.0


def test_playout_time_inverse_of_cumulative(tiny_vbr):
    for offset in [0.0, 10.0, 100.0, 500.0, tiny_vbr.total_bytes]:
        t = tiny_vbr.playout_time_for_bytes(offset)
        assert tiny_vbr.cumulative_bytes(t) == pytest.approx(offset, abs=1e-6)


def test_playout_time_with_idle_seconds():
    video = VBRVideo([100.0, 0.0, 0.0, 100.0])
    # Byte 100 is first consumed when second 3 starts playing.
    assert video.playout_time_for_bytes(100.0) == pytest.approx(1.0)
    assert video.playout_time_for_bytes(150.0) == pytest.approx(3.5)


def test_scaled():
    video = VBRVideo([10.0, 20.0])
    doubled = video.scaled(2.0)
    assert doubled.total_bytes == 60.0
    with pytest.raises(VideoModelError):
        video.scaled(0.0)


def test_trace_is_read_only(tiny_vbr):
    with pytest.raises(ValueError):
        tiny_vbr.bytes_per_second[0] = 999.0


def test_validation():
    with pytest.raises(VideoModelError):
        VBRVideo([])
    with pytest.raises(VideoModelError):
        VBRVideo([1.0, -2.0])
    with pytest.raises(VideoModelError):
        VBRVideo([0.0, 0.0])


@given(
    st.lists(st.floats(0.0, 1e6), min_size=1, max_size=100).filter(
        lambda xs: sum(xs) > 0
    )
)
def test_cumulative_monotone(trace):
    video = VBRVideo(trace)
    samples = np.linspace(0, video.duration, 50)
    values = [video.cumulative_bytes(t) for t in samples]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    assert values[-1] == pytest.approx(video.total_bytes, rel=1e-9)
