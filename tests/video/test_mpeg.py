"""Tests for repro.video.mpeg."""

import numpy as np
import pytest

from repro.errors import VideoModelError
from repro.video.mpeg import MPEGConfig, generate_mpeg_trace


def test_trace_has_requested_duration(rng):
    video = generate_mpeg_trace(120, rng)
    assert video.duration == 120.0


def test_trace_is_reproducible():
    a = generate_mpeg_trace(60, np.random.default_rng(5))
    b = generate_mpeg_trace(60, np.random.default_rng(5))
    assert np.allclose(a.bytes_per_second, b.bytes_per_second)


def test_mean_rate_near_configured(rng):
    config = MPEGConfig()
    video = generate_mpeg_trace(2000, rng, config)
    # Lognormal jitter/scene multipliers are mean-one and the act envelope
    # averages near its own mean, so the realised mean should be within a
    # modest factor of the nominal GOP rate.
    envelope_mean = sum(config.act_envelope) / len(config.act_envelope)
    assert video.average_bandwidth == pytest.approx(
        config.mean_rate * envelope_mean, rel=0.2
    )


def test_trace_is_strictly_positive(rng):
    video = generate_mpeg_trace(500, rng)
    assert float(np.min(video.bytes_per_second)) > 0


def test_quiet_opening(rng):
    config = MPEGConfig()
    video = generate_mpeg_trace(3000, rng, config)
    trace = np.asarray(video.bytes_per_second)
    opening = float(trace[:120].mean())
    overall = float(trace.mean())
    assert opening < 0.75 * overall  # the default envelope opens quiet


def test_gop_structure_means():
    config = MPEGConfig()
    assert config.i_mean > config.p_mean > config.b_mean
    expected = (config.i_mean + 3 * config.p_mean + 8 * config.b_mean) / 12
    assert config.mean_frame_size == pytest.approx(expected)


def test_config_validation(rng):
    with pytest.raises(VideoModelError):
        generate_mpeg_trace(0, rng)
    with pytest.raises(VideoModelError):
        MPEGConfig(fps=0).validate()
    with pytest.raises(VideoModelError):
        MPEGConfig(gop_pattern="XYZ").validate()
    with pytest.raises(VideoModelError):
        MPEGConfig(gop_pattern="PBB").validate()  # no I frame
    with pytest.raises(VideoModelError):
        MPEGConfig(i_mean=0.0).validate()
    with pytest.raises(VideoModelError):
        MPEGConfig(frame_jitter_sigma=-0.1).validate()
    with pytest.raises(VideoModelError):
        MPEGConfig(scene_mean_length=0.0).validate()
    with pytest.raises(VideoModelError):
        MPEGConfig(act_envelope=()).validate()
    with pytest.raises(VideoModelError):
        MPEGConfig(act_envelope=(1.0, 0.0)).validate()


def test_scene_level_autocorrelation(rng):
    # Scene modulation should make adjacent seconds more similar than
    # distant ones.
    video = generate_mpeg_trace(3000, rng)
    trace = np.asarray(video.bytes_per_second, dtype=float)
    trace = trace / trace.mean() - 1.0
    lag1 = float(np.corrcoef(trace[:-1], trace[1:])[0, 1])
    lag100 = float(np.corrcoef(trace[:-100], trace[100:])[0, 1])
    assert lag1 > 0.3
    assert lag1 > lag100
