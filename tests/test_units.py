"""Tests for repro.units."""

import pytest

from repro.errors import ConfigurationError
from repro import units


def test_rate_conversions_roundtrip():
    assert units.per_hour_to_per_second(3600.0) == 1.0
    assert units.per_second_to_per_hour(1.0) == 3600.0
    assert units.per_second_to_per_hour(
        units.per_hour_to_per_second(77.0)
    ) == pytest.approx(77.0)


def test_time_helpers():
    assert units.hours(2.0) == 7200.0
    assert units.minutes(1.5) == 90.0
    assert units.TWO_HOURS == 7200.0


def test_byte_helpers():
    assert units.kb_per_s(1.0) == 1024.0
    assert units.bytes_to_kb(2048.0) == 2.0
    assert units.bytes_to_mb(units.MEGABYTE) == 1.0


def test_negative_rates_rejected():
    with pytest.raises(ConfigurationError):
        units.per_hour_to_per_second(-1.0)
    with pytest.raises(ConfigurationError):
        units.per_second_to_per_hour(-1.0)
