"""Tests for repro.workload.arrivals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.units import HOUR
from repro.workload.arrivals import (
    DeterministicArrivals,
    MMPPArrivals,
    NonHomogeneousPoisson,
    PoissonArrivals,
    TraceArrivals,
    expected_count,
    merge_arrivals,
)


class TestPoissonArrivals:
    def test_sorted_and_in_range(self, rng):
        times = PoissonArrivals(100.0).generate(10 * HOUR, rng)
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0
        assert times[-1] < 10 * HOUR

    def test_mean_rate(self, rng):
        horizon = 200 * HOUR
        times = PoissonArrivals(50.0).generate(horizon, rng)
        observed = len(times) / (horizon / HOUR)
        assert observed == pytest.approx(50.0, rel=0.05)

    def test_interarrival_distribution_is_exponential(self, rng):
        times = PoissonArrivals(3600.0).generate(10 * HOUR, rng)
        gaps = np.diff(times)
        # Exponential(1): mean ~= std.
        assert np.mean(gaps) == pytest.approx(1.0, rel=0.05)
        assert np.std(gaps) == pytest.approx(1.0, rel=0.1)

    def test_zero_rate(self, rng):
        assert len(PoissonArrivals(0.0).generate(HOUR, rng)) == 0

    def test_reproducible(self):
        a = PoissonArrivals(10.0).generate(HOUR, np.random.default_rng(1))
        b = PoissonArrivals(10.0).generate(HOUR, np.random.default_rng(1))
        assert np.allclose(a, b)

    def test_negative_rate_rejected(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(-1.0)

    def test_bad_horizon_rejected(self, rng):
        with pytest.raises(WorkloadError):
            PoissonArrivals(1.0).generate(0.0, rng)

    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(1.0, 5000.0), horizon_hours=st.floats(0.5, 20.0))
    def test_all_arrivals_inside_horizon(self, rate, horizon_hours):
        rng = np.random.default_rng(0)
        horizon = horizon_hours * HOUR
        times = PoissonArrivals(rate).generate(horizon, rng)
        if len(times):
            assert times[-1] < horizon
            assert times[0] >= 0.0


class TestDeterministicArrivals:
    def test_even_spacing(self, rng):
        times = DeterministicArrivals(interval=10.0).generate(35.0, rng)
        assert list(times) == [0.0, 10.0, 20.0, 30.0]

    def test_offset(self, rng):
        times = DeterministicArrivals(interval=10.0, offset=5.0).generate(30.0, rng)
        assert list(times) == [5.0, 15.0, 25.0]

    def test_one_request_per_slot_workload(self, rng):
        # The paper's saturation workload: at least one request every slot.
        times = DeterministicArrivals(interval=1.0, offset=0.5).generate(100.0, rng)
        slots = np.floor(times).astype(int)
        assert set(slots) == set(range(100))

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            DeterministicArrivals(interval=0.0)
        with pytest.raises(WorkloadError):
            DeterministicArrivals(interval=1.0, offset=-1.0)


class TestTraceArrivals:
    def test_sorts_and_clips(self, rng):
        trace = TraceArrivals([5.0, 1.0, 3.0, 100.0])
        assert list(trace.generate(50.0, rng)) == [1.0, 3.0, 5.0]

    def test_negative_times_rejected(self):
        with pytest.raises(WorkloadError):
            TraceArrivals([-1.0, 2.0])


class TestNonHomogeneousPoisson:
    def test_rate_modulation(self, rng):
        # Rate 100/h in the first half, 0 after.
        process = NonHomogeneousPoisson(
            lambda t: 100.0 if t < 50 * HOUR else 0.0, max_rate_per_hour=100.0
        )
        times = process.generate(100 * HOUR, rng)
        assert np.all(times < 50 * HOUR)
        observed = len(times) / 50.0
        assert observed == pytest.approx(100.0, rel=0.1)

    def test_rate_bound_violation_detected(self, rng):
        process = NonHomogeneousPoisson(lambda t: 50.0, max_rate_per_hour=10.0)
        with pytest.raises(WorkloadError):
            process.generate(10 * HOUR, rng)

    def test_invalid_max_rate(self):
        with pytest.raises(WorkloadError):
            NonHomogeneousPoisson(lambda t: 1.0, max_rate_per_hour=0.0)


class TestMMPP:
    def test_rates_realised(self, rng):
        process = MMPPArrivals(
            rates_per_hour=[10.0, 200.0], mean_sojourn=[HOUR, HOUR]
        )
        times = process.generate(200 * HOUR, rng)
        observed = len(times) / 200.0
        assert observed == pytest.approx(105.0, rel=0.25)
        assert np.all(np.diff(times) >= 0)

    def test_single_state_degenerates_to_poisson_rate(self, rng):
        process = MMPPArrivals(rates_per_hour=[60.0], mean_sojourn=[HOUR])
        times = process.generate(100 * HOUR, rng)
        assert len(times) / 100.0 == pytest.approx(60.0, rel=0.1)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            MMPPArrivals([], [])
        with pytest.raises(WorkloadError):
            MMPPArrivals([1.0], [0.0])
        with pytest.raises(WorkloadError):
            MMPPArrivals([-1.0], [1.0])


def test_merge_arrivals():
    merged = merge_arrivals(np.array([1.0, 3.0]), np.array([2.0, 4.0]))
    assert list(merged) == [1.0, 2.0, 3.0, 4.0]
    assert len(merge_arrivals()) == 0


def test_expected_count():
    assert expected_count(PoissonArrivals(3600.0), 10.0) == pytest.approx(10.0)
    assert expected_count(DeterministicArrivals(2.0), 10.0) == pytest.approx(6.0)
    with pytest.raises(WorkloadError):
        expected_count(TraceArrivals([1.0]), 10.0)
