"""Tests for repro.workload.requests."""

import pytest

from repro.errors import WorkloadError
from repro.workload.requests import Request, interleave, requests_from_times


def test_request_ids_are_unique_and_increasing():
    a = Request(time=1.0)
    b = Request(time=2.0)
    assert b.request_id > a.request_id


def test_request_validation():
    with pytest.raises(WorkloadError):
        Request(time=-1.0)
    with pytest.raises(WorkloadError):
        Request(time=0.0, video_id=-2)


def test_requests_from_times():
    requests = requests_from_times([1.0, 2.0, 3.0], video_id=4)
    assert [r.time for r in requests] == [1.0, 2.0, 3.0]
    assert all(r.video_id == 4 for r in requests)


def test_requests_from_times_rejects_unsorted():
    with pytest.raises(WorkloadError):
        requests_from_times([2.0, 1.0])


def test_interleave_orders_by_time():
    requests = [Request(time=3.0), Request(time=1.0), Request(time=2.0)]
    assert [r.time for r in interleave(requests)] == [1.0, 2.0, 3.0]


def test_interleave_stable_for_simultaneous_requests():
    early = Request(time=1.0)
    late = Request(time=1.0)
    ordered = list(interleave([late, early]))
    assert ordered[0].request_id < ordered[1].request_id
