"""Tests for repro.workload.diurnal."""

import pytest

from repro.errors import WorkloadError
from repro.units import HOUR
from repro.workload.diurnal import (
    DiurnalProfile,
    adult_evening_profile,
    child_daytime_profile,
)


def test_flat_profile_constant_rate():
    profile = DiurnalProfile([10.0] * 24)
    for t in [0.0, HOUR / 2, 13 * HOUR, 23.9 * HOUR, 60 * HOUR]:
        assert profile.rate_at(t) == pytest.approx(10.0)


def test_profile_is_periodic():
    profile = child_daytime_profile(100.0)
    assert profile.rate_at(5 * HOUR) == pytest.approx(
        profile.rate_at(5 * HOUR + 24 * HOUR)
    )


def test_rate_at_hour_midpoint_equals_control_value():
    rates = [float(h) for h in range(24)]
    profile = DiurnalProfile(rates)
    assert profile.rate_at(6.5 * HOUR) == pytest.approx(6.0)


def test_interpolation_between_hours():
    rates = [0.0] * 24
    rates[6] = 10.0
    rates[7] = 20.0
    profile = DiurnalProfile(rates)
    assert profile.rate_at(7.0 * HOUR) == pytest.approx(15.0)


def test_child_profile_peaks_in_daytime():
    profile = child_daytime_profile(100.0)
    assert profile.rate_at(12.5 * HOUR) > 10 * profile.rate_at(3.5 * HOUR)
    assert profile.max_rate_per_hour == pytest.approx(100.0)


def test_adult_profile_peaks_in_evening():
    profile = adult_evening_profile(100.0)
    assert profile.rate_at(21.5 * HOUR) > 5 * profile.rate_at(9.5 * HOUR)


def test_profiles_are_complementary():
    child = child_daytime_profile(100.0)
    adult = adult_evening_profile(100.0)
    # At lunchtime children dominate, at night adults do — the paper's
    # motivating opposition.
    assert child.rate_at(13 * HOUR) > adult.rate_at(13 * HOUR)
    assert adult.rate_at(22 * HOUR) > child.rate_at(22 * HOUR)


def test_mean_rate():
    profile = DiurnalProfile([0.0] * 12 + [24.0] * 12)
    assert profile.mean_rate_per_hour == pytest.approx(12.0)


def test_validation():
    with pytest.raises(WorkloadError):
        DiurnalProfile([1.0] * 23)
    with pytest.raises(WorkloadError):
        DiurnalProfile([-1.0] + [1.0] * 23)
    with pytest.raises(WorkloadError):
        child_daytime_profile(0.0)
    with pytest.raises(WorkloadError):
        adult_evening_profile(-5.0)


def test_negative_time_wraps():
    profile = child_daytime_profile(100.0)
    assert profile.rate_at(-HOUR) == pytest.approx(profile.rate_at(23 * HOUR))
