"""Tests for repro.workload.popularity."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.popularity import ZipfCatalog


def test_probabilities_sum_to_one():
    catalog = ZipfCatalog(n_videos=50, theta=1.0)
    assert sum(catalog.probabilities) == pytest.approx(1.0)


def test_theta_zero_is_uniform():
    catalog = ZipfCatalog(n_videos=4, theta=0.0)
    assert catalog.probabilities == pytest.approx([0.25] * 4)


def test_popularity_is_decreasing():
    probs = ZipfCatalog(n_videos=10, theta=1.0).probabilities
    assert all(probs[i] >= probs[i + 1] for i in range(9))


def test_zipf_ratio():
    probs = ZipfCatalog(n_videos=10, theta=1.0).probabilities
    assert probs[0] / probs[1] == pytest.approx(2.0)
    assert probs[0] / probs[4] == pytest.approx(5.0)


def test_rate_split_conserves_total():
    catalog = ZipfCatalog(n_videos=7, theta=0.8)
    total = sum(catalog.rate_for(rank, 100.0) for rank in range(7))
    assert total == pytest.approx(100.0)


def test_rate_for_validation():
    catalog = ZipfCatalog(n_videos=3)
    with pytest.raises(WorkloadError):
        catalog.rate_for(3, 10.0)
    with pytest.raises(WorkloadError):
        catalog.rate_for(0, -1.0)


def test_assignment_follows_distribution(rng):
    catalog = ZipfCatalog(n_videos=3, theta=1.0)
    draws = catalog.assign(30_000, rng)
    frequencies = np.bincount(draws, minlength=3) / 30_000
    assert frequencies == pytest.approx(catalog.probabilities, abs=0.02)


def test_invalid_catalog():
    with pytest.raises(WorkloadError):
        ZipfCatalog(n_videos=0)
    with pytest.raises(WorkloadError):
        ZipfCatalog(n_videos=3, theta=-0.1)
