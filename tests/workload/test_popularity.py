"""Tests for repro.workload.popularity."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.popularity import ZipfCatalog


def test_probabilities_sum_to_one():
    catalog = ZipfCatalog(n_videos=50, theta=1.0)
    assert sum(catalog.probabilities) == pytest.approx(1.0)


def test_theta_zero_is_uniform():
    catalog = ZipfCatalog(n_videos=4, theta=0.0)
    assert catalog.probabilities == pytest.approx([0.25] * 4)


def test_popularity_is_decreasing():
    probs = ZipfCatalog(n_videos=10, theta=1.0).probabilities
    assert all(probs[i] >= probs[i + 1] for i in range(9))


def test_zipf_ratio():
    probs = ZipfCatalog(n_videos=10, theta=1.0).probabilities
    assert probs[0] / probs[1] == pytest.approx(2.0)
    assert probs[0] / probs[4] == pytest.approx(5.0)


def test_rate_split_conserves_total():
    catalog = ZipfCatalog(n_videos=7, theta=0.8)
    total = sum(catalog.rate_for(rank, 100.0) for rank in range(7))
    assert total == pytest.approx(100.0)


def test_rate_for_validation():
    catalog = ZipfCatalog(n_videos=3)
    with pytest.raises(WorkloadError):
        catalog.rate_for(3, 10.0)
    with pytest.raises(WorkloadError):
        catalog.rate_for(0, -1.0)


def test_assignment_follows_distribution(rng):
    catalog = ZipfCatalog(n_videos=3, theta=1.0)
    draws = catalog.assign(30_000, rng)
    frequencies = np.bincount(draws, minlength=3) / 30_000
    assert frequencies == pytest.approx(catalog.probabilities, abs=0.02)


def test_invalid_catalog():
    with pytest.raises(WorkloadError):
        ZipfCatalog(n_videos=0)
    with pytest.raises(WorkloadError):
        ZipfCatalog(n_videos=3, theta=-0.1)


class TestResample:
    def test_deterministic_under_a_fixed_seed(self):
        runs = []
        for _ in range(2):
            rng = np.random.default_rng(11)
            drifted = ZipfCatalog(n_videos=6, theta=1.0).resample(0.4, rng)
            runs.append(drifted.probabilities)
        assert runs[0] == runs[1]
        assert sum(runs[0]) == pytest.approx(1.0)

    def test_zero_drift_reproduces_shares_but_consumes_the_stream(self):
        catalog = ZipfCatalog(n_videos=5, theta=0.8)
        rng = np.random.default_rng(3)
        still = catalog.resample(0.0, rng)
        assert still.probabilities == pytest.approx(catalog.probabilities)
        # The batch of normals is consumed even at drift 0, so a staged
        # drift plan (0, 0, 0.4, ...) stays aligned with an always-on one.
        consumed = np.random.default_rng(3)
        consumed.standard_normal(5)
        follow_up = catalog.resample(0.4, rng)
        aligned = catalog.resample(0.4, consumed)
        assert follow_up.probabilities == pytest.approx(aligned.probabilities)

    def test_chained_resamples_walk_the_simplex(self):
        catalog = ZipfCatalog(n_videos=4, theta=1.0)
        rng = np.random.default_rng(5)
        for _ in range(3):
            catalog = catalog.resample(0.5, rng)
            assert sum(catalog.probabilities) == pytest.approx(1.0)
            assert all(p > 0 for p in catalog.probabilities)

    def test_negative_drift_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(WorkloadError):
            ZipfCatalog(n_videos=3).resample(-0.1, rng)
