"""Tests for repro.workload.spec: the grammar, digests, and coercions.

Covers the nonstationary-workload contract end to end: table-driven
parsing (valid and malformed specs), label round-trips, cross-process
digest stability (the property the digest-keyed trace cache and
checkpoint keys rest on), `as_workload` coercions, plus hypothesis
properties of the arrival processes the specs materialize (NHPP thinning
counts against the integrated rate; FlashCrowd / MMPP / EventRings mean
rates against their closed forms).
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.units import HOUR
from repro.workload import (
    EventRings,
    FlashCrowd,
    MMPPArrivals,
    NonHomogeneousPoisson,
    PoissonArrivals,
    SuperposedArrivals,
    WorkloadSpec,
    as_workload,
    parse_workload,
    workload_or_none,
)
from repro.workload.arrivals import DeterministicArrivals, TraceArrivals

# ---------------------------------------------------------------------------
# Grammar: valid specs
# ---------------------------------------------------------------------------

VALID_SPECS = [
    ("40", "poisson", 40.0),
    ("40.5", "poisson", 40.5),
    ("poisson:40", "poisson", 40.0),
    ("deterministic:interval=90", "deterministic", HOUR / 90),
    ("deterministic:interval=90,offset=5", "deterministic", HOUR / 90),
    ("diurnal:child,peak=120", "diurnal", None),
    ("diurnal:adult,peak=80", "diurnal", None),
    ("flash:peak=400,decay=1.5", "flash", None),
    ("flash:peak=400,decay=1.5,base=10,start=19", "flash", None),
    ("mmpp:rates=20|200,sojourn=600|60", "mmpp", None),
    ("ring:peak=300,rings=3,delay=0.5,atten=0.5,decay=1.0", "ring", None),
    ("ring:peak=300,rings=2,delay=0.25,atten=0.8,decay=2.0,base=5,start=18", "ring", None),
    ("diurnal:child,peak=100+flash:peak=300,decay=1", "superpose", None),
    ("10+20+30", "superpose", 60.0),
]


@pytest.mark.parametrize("text,kind,mean", VALID_SPECS)
def test_valid_specs_parse(text, kind, mean):
    spec = parse_workload(text)
    assert spec.kind == kind
    assert spec.mean_rate_per_hour > 0
    if mean is not None:
        assert spec.mean_rate_per_hour == pytest.approx(mean)


def test_trace_spec_parses_from_file(tmp_path):
    path = tmp_path / "times.txt"
    path.write_text("# recorded arrivals\n0.5\n3.25\n\n9.0\n")
    spec = parse_workload(f"trace:{path}")
    assert spec.kind == "trace"
    assert spec._get("times") == (0.5, 3.25, 9.0)


# ---------------------------------------------------------------------------
# Grammar: malformed specs → ConfigurationError carrying the grammar
# ---------------------------------------------------------------------------

MALFORMED_SPECS = [
    "",
    "   ",
    "bogus:1",
    "poisson:",
    "poisson:abc",
    "poisson:-5",
    "0",
    "-3",
    "deterministic:interval=0",
    "deterministic:offset=5",
    "deterministic:interval=90,unknown=1",
    "diurnal:goth,peak=100",
    "diurnal:child",
    "diurnal:child,peak=bogus",
    "flash:peak=400",
    "flash:decay=1.5",
    "flash:peak=400,decay=0",
    "flash:peak=400,decay=1.5,start=-2",
    "mmpp:rates=20|200",
    "mmpp:rates=20|200,sojourn=600",
    "mmpp:rates=20|x,sojourn=600|60",
    "ring:peak=300",
    "ring:peak=300,rings=0,delay=0.5,atten=0.5,decay=1.0",
    "ring:peak=300,rings=3,delay=0.5,atten=1.5,decay=1.0",
    "trace:/nonexistent/arrivals.txt",
    "40+",
    "+40",
]


@pytest.mark.parametrize("text", MALFORMED_SPECS)
def test_malformed_specs_raise_with_grammar(text):
    with pytest.raises(ConfigurationError) as excinfo:
        parse_workload(text)
    assert "workload spec grammar" in str(excinfo.value)


def test_trace_file_with_garbage_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("1.0\nnot-a-number\n")
    with pytest.raises(ConfigurationError):
        parse_workload(f"trace:{path}")


# ---------------------------------------------------------------------------
# Labels round-trip (except trace, whose label is a summary)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "text", [text for text, kind, _ in VALID_SPECS if kind != "trace"]
)
def test_label_round_trips(text):
    spec = parse_workload(text)
    assert parse_workload(spec.label()) == spec


def test_trace_label_is_a_summary():
    spec = WorkloadSpec.trace([1.0, 2.0, 3.0])
    assert spec.label() == "trace:3pts"


# ---------------------------------------------------------------------------
# Digests: canonical, order-insensitive in source text, process-stable
# ---------------------------------------------------------------------------

def test_digest_ignores_parameter_spelling():
    assert (
        parse_workload("flash:decay=1.5,peak=400").digest()
        == parse_workload("flash:peak=400.0,decay=1.50").digest()
    )


def test_digest_distinguishes_kinds_and_values():
    specs = {parse_workload(text) for text, _, _ in VALID_SPECS}
    digests = {spec.digest() for spec in specs}
    assert len(digests) == len(specs)
    # "40" and "poisson:40" are the same spec, so they share one digest.
    assert parse_workload("40").digest() == parse_workload("poisson:40").digest()


def test_digest_stable_across_processes(tmp_path):
    """The cache/checkpoint key must not depend on hash randomization."""
    specs = [
        "diurnal:child,peak=120+flash:peak=400,decay=1.5,start=19",
        "mmpp:rates=20|200,sojourn=600|60",
    ]
    trace_path = tmp_path / "trace.txt"
    trace_path.write_text("0.25\n1.5\n7.75\n")
    specs.append(f"trace:{trace_path}")
    script = (
        "import sys\n"
        "from repro.workload.spec import parse_workload\n"
        "for text in sys.argv[1:]:\n"
        "    print(parse_workload(text).digest())\n"
    )
    local = [parse_workload(text).digest() for text in specs]
    for _ in range(2):
        result = subprocess.run(
            [sys.executable, "-c", script, *specs],
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.split() == local


# ---------------------------------------------------------------------------
# as_workload coercions
# ---------------------------------------------------------------------------

def test_as_workload_accepts_numbers_strings_specs_and_processes():
    forty = WorkloadSpec.poisson(40.0)
    assert as_workload(40) == forty
    assert as_workload(40.0) == forty
    assert as_workload("poisson:40") == forty
    assert as_workload(forty) is forty
    assert as_workload(PoissonArrivals(40.0)) == forty
    assert as_workload(DeterministicArrivals(90.0, 5.0)) == WorkloadSpec.deterministic(
        90.0, 5.0
    )
    assert as_workload(FlashCrowd(400.0, 1.5)).kind == "flash"
    assert as_workload(MMPPArrivals([20, 200], [600, 60])).kind == "mmpp"
    assert as_workload(TraceArrivals([1.0, 2.0])).kind == "trace"


def test_as_workload_event_rings_not_swallowed_by_flash():
    """EventRings subclasses NonHomogeneousPoisson like FlashCrowd; the
    coercion must dispatch on the most specific type."""
    rings = EventRings(300.0, 3, 0.5, 0.5, 1.0)
    assert as_workload(rings).kind == "ring"


def test_as_workload_rejects_bools_and_opaque_processes():
    with pytest.raises((ConfigurationError, TypeError)):
        as_workload(True)
    with pytest.raises(ConfigurationError) as excinfo:
        as_workload(NonHomogeneousPoisson(lambda t: 5.0, 10.0))
    assert "WorkloadSpec" in str(excinfo.value)


def test_workload_or_none():
    assert workload_or_none(None) is None
    assert workload_or_none(40.0) == WorkloadSpec.poisson(40.0)


# ---------------------------------------------------------------------------
# Materialization: process() types and superposition
# ---------------------------------------------------------------------------

def test_process_types():
    assert isinstance(parse_workload("40").process(), PoissonArrivals)
    assert isinstance(
        parse_workload("diurnal:child,peak=100").process(), NonHomogeneousPoisson
    )
    assert isinstance(parse_workload("flash:peak=100,decay=1").process(), FlashCrowd)
    assert isinstance(
        parse_workload("mmpp:rates=10|50,sojourn=60|60").process(), MMPPArrivals
    )
    assert isinstance(
        parse_workload("ring:peak=100,rings=2,delay=0.5,atten=0.5,decay=1").process(),
        EventRings,
    )
    composite = parse_workload("20+flash:peak=100,decay=1").process()
    assert isinstance(composite, SuperposedArrivals)
    assert len(composite.processes) == 2


# ---------------------------------------------------------------------------
# Hypothesis: thinning counts track the integrated rate
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    peak=st.floats(200.0, 2000.0),
    decay=st.floats(0.5, 3.0),
)
def test_nhpp_window_counts_match_integrated_rate(seed, peak, decay):
    """Counts in a window are Poisson(∫λ); check a 6-sigma envelope."""
    process = FlashCrowd(peak, decay)
    horizon = 4 * decay * 3600.0
    times = process.generate(horizon, np.random.default_rng(seed))
    expected = process.expected_requests(horizon)
    sigma = max(np.sqrt(expected), 1.0)
    assert abs(len(times) - expected) < 6.0 * sigma
    # Window counts: the first decay-constant worth of time holds
    # (1 - e^-1) of a pure surge's mass; same envelope.
    window_expected = process.expected_requests(decay * 3600.0)
    window_count = int(np.searchsorted(times, decay * 3600.0))
    assert abs(window_count - window_expected) < 6.0 * max(
        np.sqrt(window_expected), 1.0
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    low=st.floats(5.0, 50.0),
    high=st.floats(200.0, 800.0),
)
def test_mmpp_mean_rate_between_state_rates(seed, low, high):
    process = MMPPArrivals([low, high], [900.0, 900.0])
    horizon = 20 * 3600.0
    times = process.generate(horizon, np.random.default_rng(seed))
    hourly = len(times) / 20.0
    assert low * 0.25 <= hourly <= high * 1.25


def test_mmpp_spec_mean_rate_is_sojourn_weighted():
    spec = WorkloadSpec.mmpp([30.0, 300.0], [1800.0, 600.0])
    expected = (30.0 * 1800.0 + 300.0 * 600.0) / 2400.0
    assert spec.mean_rate_per_hour == pytest.approx(expected)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_event_rings_counts_match_closed_form(seed):
    process = EventRings(600.0, 3, 0.5, 0.5, 1.0, base_rate_per_hour=10.0)
    horizon = 12 * 3600.0
    times = process.generate(horizon, np.random.default_rng(seed))
    expected = process.expected_requests(horizon)
    assert abs(len(times) - expected) < 6.0 * np.sqrt(expected)


def test_event_rings_rate_peaks_at_ignitions():
    process = EventRings(600.0, 3, 0.5, 0.5, 1.0)
    for ring, ignition in enumerate(process.ignition_seconds()):
        jump = process.rate_at(ignition) - process.rate_at(ignition - 1e-6)
        assert jump == pytest.approx(600.0 * 0.5**ring, rel=1e-6)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_superposition_count_is_sum_of_parts(seed):
    """Superposed expected counts add; check the composite against it."""
    spec = parse_workload("diurnal:child,peak=120+flash:peak=400,decay=1.5")
    horizon = 24 * 3600.0
    times = spec.process().generate(horizon, np.random.default_rng(seed))
    expected = spec.mean_rate_per_hour * 24.0
    assert abs(len(times) - expected) < 6.0 * np.sqrt(expected)
    assert np.all(np.diff(times) >= 0)
