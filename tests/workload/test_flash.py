"""Tests for repro.workload.flash — the premiere surge model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.units import HOUR
from repro.workload.flash import FlashCrowd


def test_rate_decays_exponentially():
    crowd = FlashCrowd(peak_rate_per_hour=100.0, decay_hours=1.0)
    assert crowd.rate_at(0.0) == pytest.approx(100.0)
    assert crowd.rate_at(HOUR) == pytest.approx(100.0 * np.exp(-1.0))
    assert crowd.rate_at(10 * HOUR) < 0.01 * crowd.rate_at(0.0)


def test_base_rate_floor():
    crowd = FlashCrowd(100.0, 1.0, base_rate_per_hour=7.0)
    assert crowd.rate_at(100 * HOUR) == pytest.approx(7.0, rel=1e-6)
    assert crowd.rate_at(-5.0) == 7.0


def test_expected_requests_closed_form():
    crowd = FlashCrowd(peak_rate_per_hour=120.0, decay_hours=2.0,
                       base_rate_per_hour=10.0)
    horizon = 6 * HOUR
    expected = (
        120.0 / HOUR * 2 * HOUR * (1 - np.exp(-3.0)) + 10.0 / HOUR * horizon
    )
    assert crowd.expected_requests(horizon) == pytest.approx(expected)


def test_generation_matches_expectation(rng):
    crowd = FlashCrowd(peak_rate_per_hour=400.0, decay_hours=1.5,
                       base_rate_per_hour=20.0)
    horizon = 12 * HOUR
    times = crowd.generate(horizon, rng)
    assert len(times) == pytest.approx(crowd.expected_requests(horizon), rel=0.1)
    # The first hour is far busier than the last.
    first = np.sum(times < HOUR)
    last = np.sum(times > horizon - HOUR)
    assert first > 5 * last


def test_generation_sorted_and_bounded(rng):
    crowd = FlashCrowd(50.0, 1.0)
    times = crowd.generate(4 * HOUR, rng)
    assert np.all(np.diff(times) >= 0)
    if len(times):
        assert 0 <= times[0] and times[-1] < 4 * HOUR


def test_validation():
    with pytest.raises(WorkloadError):
        FlashCrowd(-1.0, 1.0)
    with pytest.raises(WorkloadError):
        FlashCrowd(10.0, 0.0)
    with pytest.raises(WorkloadError):
        FlashCrowd(0.0, 1.0, base_rate_per_hour=0.0)
    crowd = FlashCrowd(10.0, 1.0)
    with pytest.raises(WorkloadError):
        crowd.expected_requests(-1.0)
