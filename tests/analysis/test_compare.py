"""Tests for repro.analysis.compare."""

import pytest

from repro.analysis.compare import compare_series, crossover_rate, dominance
from repro.analysis.metrics import BandwidthPoint, ProtocolSeries
from repro.errors import ConfigurationError


def series(name, means, rates=None):
    rates = rates or list(range(1, len(means) + 1))
    points = [
        BandwidthPoint(rate_per_hour=float(r), mean_bandwidth=m, max_bandwidth=m)
        for r, m in zip(rates, means)
    ]
    return ProtocolSeries(name, points)


def test_winners_per_rate():
    comparison = compare_series(
        [series("A", [1.0, 5.0, 5.0]), series("B", [2.0, 2.0, 2.0])]
    )
    assert comparison.winners == ["A", "B", "B"]


def test_winner_above_threshold():
    comparison = compare_series(
        [series("A", [1.0, 5.0, 5.0]), series("B", [2.0, 2.0, 2.0])]
    )
    assert comparison.winner_above(2.0) == "B"
    assert comparison.winner_above(1.0) is None


def test_dominance():
    result = dominance(
        [series("DHB", [1.0, 2.0]), series("UD", [1.5, 1.5]), series("NPB", [6.0, 6.0])],
        subject="DHB",
    )
    assert result["UD"] == [1.0]
    assert result["NPB"] == [1.0, 2.0]


def test_dominance_unknown_subject():
    with pytest.raises(ConfigurationError):
        dominance([series("A", [1.0])], subject="Z")


def test_crossover_found():
    a = series("A", [1.0, 3.0, 5.0])
    b = series("B", [2.0, 2.0, 2.0])
    assert crossover_rate(a, b) == (1.0, 2.0)


def test_no_crossover():
    a = series("A", [1.0, 1.0])
    b = series("B", [2.0, 2.0])
    assert crossover_rate(a, b) is None


def test_mismatched_rates_rejected():
    a = series("A", [1.0], rates=[1.0])
    b = series("B", [1.0], rates=[2.0])
    with pytest.raises(ConfigurationError):
        crossover_rate(a, b)
    with pytest.raises(ConfigurationError):
        compare_series([a, b])


def test_empty_comparison_rejected():
    with pytest.raises(ConfigurationError):
        compare_series([])
