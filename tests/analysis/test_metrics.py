"""Tests for repro.analysis.metrics."""

import pytest

from repro.analysis.metrics import BandwidthPoint, ProtocolSeries, series_by_name
from repro.errors import ConfigurationError


def point(rate, mean, peak=None):
    return BandwidthPoint(
        rate_per_hour=rate, mean_bandwidth=mean, max_bandwidth=peak or mean
    )


def test_series_accessors():
    series = ProtocolSeries("DHB")
    series.add(point(1.0, 1.5, 3.0))
    series.add(point(10.0, 4.0, 7.0))
    assert series.rates == [1.0, 10.0]
    assert series.means == [1.5, 4.0]
    assert series.maxima == [3.0, 7.0]


def test_at_rate():
    series = ProtocolSeries("DHB", [point(1.0, 2.0), point(5.0, 3.0)])
    assert series.at_rate(5.0).mean_bandwidth == 3.0
    with pytest.raises(ConfigurationError):
        series.at_rate(99.0)


def test_series_by_name():
    a = ProtocolSeries("A")
    b = ProtocolSeries("B")
    indexed = series_by_name([a, b])
    assert indexed["A"] is a
    with pytest.raises(ConfigurationError):
        series_by_name([a, ProtocolSeries("A")])


def test_point_is_frozen():
    p = point(1.0, 2.0)
    with pytest.raises(AttributeError):
        p.mean_bandwidth = 5.0
