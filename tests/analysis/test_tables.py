"""Tests for repro.analysis.tables."""

import pytest

from repro.analysis.metrics import BandwidthPoint, ProtocolSeries
from repro.analysis.tables import format_series_table, format_simple_table
from repro.errors import ConfigurationError


def test_simple_table_alignment():
    table = format_simple_table(["name", "v"], [["a", 1], ["long-name", 22]])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert "long-name" in lines[3]
    # All rows align on the second column.
    assert lines[2].index("1") == lines[0].index("v")


def test_simple_table_validation():
    with pytest.raises(ConfigurationError):
        format_simple_table([], [])
    with pytest.raises(ConfigurationError):
        format_simple_table(["a"], [["x", "y"]])


def _series(name, means, maxima=None):
    maxima = maxima or means
    points = [
        BandwidthPoint(rate_per_hour=r, mean_bandwidth=m, max_bandwidth=x)
        for r, m, x in zip([1.0, 10.0], means, maxima)
    ]
    return ProtocolSeries(name, points)


def test_series_table_mean():
    table = format_series_table([_series("A", [1.5, 2.5]), _series("B", [3.0, 4.0])])
    assert "req/hour" in table
    assert "1.500" in table and "4.000" in table


def test_series_table_max_and_precision():
    table = format_series_table(
        [_series("A", [1.4, 2.4], maxima=[3.0, 6.0])], value="max", precision=0
    )
    assert "3" in table and "6" in table
    assert "1.4" not in table


def test_series_table_unit_scale():
    table = format_series_table([_series("A", [2048.0, 4096.0])], unit_scale=1024.0)
    assert "2.000" in table and "4.000" in table


def test_series_table_validation():
    with pytest.raises(ConfigurationError):
        format_series_table([])
    with pytest.raises(ConfigurationError):
        format_series_table([_series("A", [1.0, 2.0])], value="median")
    mismatched = ProtocolSeries(
        "B", [BandwidthPoint(rate_per_hour=7.0, mean_bandwidth=1.0, max_bandwidth=1.0)]
    )
    with pytest.raises(ConfigurationError):
        format_series_table([_series("A", [1.0, 2.0]), mismatched])
