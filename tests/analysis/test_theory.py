"""Tests for repro.analysis.theory."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.theory import (
    batching_cost_rate,
    dhb_saturation_bandwidth,
    edge_backbone_savings_bound,
    evz_lower_bound,
    evz_suffix_lower_bound,
    fb_bandwidth,
    harmonic_number,
    optimal_catching_channels,
    optimal_patching_window,
    patching_cost_rate,
    staggered_catching_cost_rate,
    suffix_saturation_bandwidth,
)
from repro.errors import ConfigurationError


def test_harmonic_number_values():
    assert harmonic_number(1) == 1.0
    assert harmonic_number(2) == 1.5
    assert harmonic_number(99) == pytest.approx(5.177, abs=1e-3)


def test_harmonic_number_asymptotics():
    n = 10_000
    assert harmonic_number(n) == pytest.approx(
        math.log(n) + 0.5772156649, abs=1e-4
    )


def test_dhb_saturation_is_harmonic():
    assert dhb_saturation_bandwidth(99) == harmonic_number(99)


class TestPatchingWindow:
    def test_closed_form_minimises_cost(self):
        lam, duration = 30.0 / 3600.0, 7200.0
        best = optimal_patching_window(lam, duration)
        cost_best = patching_cost_rate(lam, duration, best)
        for window in np.linspace(best * 0.2, best * 3.0, 60):
            assert cost_best <= patching_cost_rate(lam, duration, window) + 1e-9

    def test_zero_rate(self):
        assert optimal_patching_window(0.0, 7200.0) == 7200.0
        assert patching_cost_rate(0.0, 7200.0) == 0.0

    def test_window_shrinks_with_rate(self):
        windows = [
            optimal_patching_window(rate / 3600.0, 7200.0)
            for rate in [1.0, 10.0, 100.0, 1000.0]
        ]
        assert all(a > b for a, b in zip(windows, windows[1:]))

    def test_cost_grows_sublinearly(self):
        c10 = patching_cost_rate(10 / 3600.0, 7200.0)
        c1000 = patching_cost_rate(1000 / 3600.0, 7200.0)
        assert c1000 < 100 * c10  # ~sqrt growth

    @given(rate=st.floats(0.1, 2000.0))
    def test_cost_positive_and_bounded_by_unshared(self, rate):
        lam = rate / 3600.0
        cost = patching_cost_rate(lam, 7200.0)
        assert 0 < cost <= lam * 7200.0 + 1.0  # unshared = one stream each


def test_batching_cost_rate():
    assert batching_cost_rate(0.0, 7200.0, 300.0) == 0.0
    # Huge window -> cost approaches D/window regardless of rate.
    assert batching_cost_rate(1.0, 7200.0, 72000.0) == pytest.approx(0.1, rel=0.01)
    with pytest.raises(ConfigurationError):
        batching_cost_rate(1.0, 0.0, 10.0)


class TestEVZBound:
    def test_limits(self):
        assert evz_lower_bound(0.0, 7200.0) == 0.0
        # lambda -> infinity with wait w approaches ln(1 + D/w).
        almost = evz_lower_bound(1e9, 7200.0, wait=72.0)
        assert almost == pytest.approx(math.log(1 + 100), rel=1e-3)

    def test_monotone_in_rate(self):
        values = [evz_lower_bound(r / 3600.0, 7200.0) for r in [1, 10, 100, 1000]]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_wait_reduces_bound(self):
        assert evz_lower_bound(0.01, 7200.0, wait=100.0) < evz_lower_bound(
            0.01, 7200.0, wait=0.0
        )

    def test_bound_below_patching_cost(self):
        for rate in [1.0, 10.0, 100.0, 1000.0]:
            lam = rate / 3600.0
            assert evz_lower_bound(lam, 7200.0) <= patching_cost_rate(lam, 7200.0)


class TestSuffixBandwidth:
    def test_limits_recover_the_full_and_empty_cases(self):
        assert suffix_saturation_bandwidth(99, 0) == dhb_saturation_bandwidth(99)
        assert suffix_saturation_bandwidth(99, 99) == 0.0

    def test_is_the_harmonic_tail(self):
        assert suffix_saturation_bandwidth(60, 15) == pytest.approx(
            harmonic_number(60) - harmonic_number(15)
        )

    def test_monotone_in_prefix(self):
        values = [suffix_saturation_bandwidth(60, k) for k in range(0, 61, 10)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            suffix_saturation_bandwidth(0, 0)
        with pytest.raises(ConfigurationError):
            suffix_saturation_bandwidth(10, 11)


class TestEdgeSavingsBound:
    def test_limits(self):
        assert edge_backbone_savings_bound([1.0], [0], 99) == 0.0
        assert edge_backbone_savings_bound([1.0], [99], 99) == pytest.approx(1.0)

    def test_weights_by_popularity(self):
        # Caching the hot title's prefix saves more than the cold title's.
        hot = edge_backbone_savings_bound([0.8, 0.2], [10, 0], 60)
        cold = edge_backbone_savings_bound([0.8, 0.2], [0, 10], 60)
        assert hot == pytest.approx(4 * cold)
        assert hot == pytest.approx(
            0.8 * harmonic_number(10) / harmonic_number(60)
        )

    def test_monotone_in_every_prefix(self):
        shares = [0.5, 0.3, 0.2]
        previous = -1.0
        for k in range(0, 61, 12):
            bound = edge_backbone_savings_bound(shares, [k, k, k], 60)
            assert bound > previous
            previous = bound

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            edge_backbone_savings_bound([1.0], [0, 1], 10)
        with pytest.raises(ConfigurationError):
            edge_backbone_savings_bound([-0.1], [1], 10)
        with pytest.raises(ConfigurationError):
            edge_backbone_savings_bound([1.0], [11], 10)


class TestEVZSuffixBound:
    def test_zero_prefix_recovers_the_plain_bound(self):
        lam = 100.0 / 3600.0
        assert evz_suffix_lower_bound(lam, 7200.0, 0.0) == pytest.approx(
            evz_lower_bound(lam, 7200.0)
        )

    def test_full_prefix_costs_nothing(self):
        assert evz_suffix_lower_bound(0.1, 7200.0, 7200.0) == 0.0

    def test_prefix_relaxes_the_bound(self):
        lam = 100.0 / 3600.0
        values = [
            evz_suffix_lower_bound(lam, 7200.0, prefix)
            for prefix in [0.0, 600.0, 1800.0, 3600.0]
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            evz_suffix_lower_bound(1.0, 7200.0, -1.0)
        with pytest.raises(ConfigurationError):
            evz_suffix_lower_bound(1.0, 7200.0, 8000.0)
        with pytest.raises(ConfigurationError):
            evz_suffix_lower_bound(1.0, 7200.0, 0.0, wait=-1.0)


def test_fb_bandwidth():
    assert fb_bandwidth(7) == 3
    assert fb_bandwidth(8) == 4
    assert fb_bandwidth(99) == 7
    with pytest.raises(ConfigurationError):
        fb_bandwidth(0)


class TestCatching:
    def test_cost_rate_formula(self):
        assert staggered_catching_cost_rate(0.0, 7200.0, 3) == 3.0
        lam = 100.0 / 3600.0
        assert staggered_catching_cost_rate(lam, 7200.0, 4) == pytest.approx(
            4 + lam * 900.0
        )

    def test_optimal_channels_minimise(self):
        lam = 200.0 / 3600.0
        best = optimal_catching_channels(lam, 7200.0)
        cost_best = staggered_catching_cost_rate(lam, 7200.0, best)
        for channels in range(1, 60):
            assert cost_best <= staggered_catching_cost_rate(lam, 7200.0, channels) + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            staggered_catching_cost_rate(1.0, 7200.0, 0)
        with pytest.raises(ConfigurationError):
            optimal_catching_channels(-1.0, 7200.0)


@pytest.mark.parametrize(
    "fn",
    [
        lambda: harmonic_number(0),
        lambda: optimal_patching_window(-1.0, 10.0),
        lambda: optimal_patching_window(1.0, 0.0),
        lambda: patching_cost_rate(1.0, -5.0),
        lambda: evz_lower_bound(1.0, 10.0, wait=-1.0),
    ],
)
def test_validation_errors(fn):
    with pytest.raises(ConfigurationError):
        fn()
