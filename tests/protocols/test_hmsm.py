"""Tests for repro.protocols.hmsm — hierarchical multicast stream merging."""

import numpy as np
import pytest

from repro.analysis.theory import evz_lower_bound, patching_cost_rate
from repro.errors import ConfigurationError
from repro.protocols.hmsm import HMSMProtocol
from repro.sim.continuous import ContinuousSimulation
from repro.workload.arrivals import PoissonArrivals


def collect(protocol, times, horizon):
    intervals = []
    for t in times:
        intervals.extend(protocol.handle_request(t))
    intervals.extend(protocol.finish(horizon))
    return sorted(intervals)


def test_single_request_full_stream():
    hmsm = HMSMProtocol(duration=100.0)
    assert collect(hmsm, [0.0], 1000.0) == [(0.0, 100.0)]


def test_second_request_merges_after_gap():
    hmsm = HMSMProtocol(duration=100.0)
    intervals = collect(hmsm, [0.0, 10.0], 1000.0)
    assert intervals == [(0.0, 100.0), (10.0, 20.0)]
    assert hmsm.merges == 1


def test_chain_merges_hierarchically():
    """Three arrivals: the third merges into the second, then both ride the
    root; the second's own stream lives for its gap to the root."""
    hmsm = HMSMProtocol(duration=1000.0)
    intervals = collect(hmsm, [0.0, 10.0, 14.0], 5000.0)
    by_start = {start: end for start, end in intervals}
    assert by_start[0.0] == 1000.0
    # Stream started at 10 targets the root (gap 10): merges at 20.
    assert by_start[10.0] == 20.0
    # Stream started at 14 targets stream@10 (gap 4): would merge at 18,
    # and 18 < 20 so its target is still alive — no re-targeting needed.
    assert by_start[14.0] == 18.0


def test_retargeting_extends_stream_conservatively():
    """When the target dies first, the listener re-targets with a larger
    effective gap."""
    hmsm = HMSMProtocol(duration=1000.0)
    # Stream B at t=10 merges into root at t=20.  Stream C at t=19 targeted
    # B (gap 9, would merge at 28), but B dies at 20: C re-targets the root
    # with effective gap (20 - 0) = 20, so C's stream runs until 10 + ...
    intervals = collect(hmsm, [0.0, 10.0, 19.0], 5000.0)
    by_start = {start: end for start, end in intervals}
    assert by_start[10.0] == 20.0
    # C (started 19) now needs to cover [0, 20): merges at 19 + 20 = 39.
    assert by_start[19.0] == 39.0


def test_group_expires_and_restarts():
    hmsm = HMSMProtocol(duration=100.0)
    intervals = collect(hmsm, [0.0, 150.0], 1000.0)
    assert (0.0, 100.0) in intervals
    assert (150.0, 250.0) in intervals


def test_streams_never_outlive_video():
    hmsm = HMSMProtocol(duration=100.0)
    rng = np.random.default_rng(0)
    times = np.sort(rng.uniform(0, 500.0, size=80))
    intervals = collect(hmsm, [float(t) for t in times], 2000.0)
    for start, end in intervals:
        assert end - start <= 100.0 + 1e-9
        assert end > start >= 0.0


def test_cost_between_evz_bound_and_patching(rng):
    duration, rate = 7200.0, 50.0
    horizon = 150 * 3600.0
    protocol = HMSMProtocol(duration)
    sim = ContinuousSimulation(protocol, horizon, warmup=horizon * 0.05)
    times = PoissonArrivals(rate).generate(horizon, rng)
    result = sim.run(times)
    lam = rate / 3600.0
    assert result.mean_streams >= evz_lower_bound(lam, duration) * 0.95
    assert result.mean_streams < patching_cost_rate(lam, duration)


def test_logarithmic_growth(rng):
    """Doubling the rate adds roughly a constant, not a factor."""
    duration = 7200.0
    means = []
    for rate in (25.0, 100.0, 400.0):
        horizon = 80 * 3600.0
        sim = ContinuousSimulation(HMSMProtocol(duration), horizon,
                                   warmup=horizon * 0.05)
        times = PoissonArrivals(rate).generate(horizon, rng)
        means.append(sim.run(times).mean_streams)
    assert means[1] - means[0] < 0.6 * means[0]
    assert means[2] - means[1] < means[1] - means[0] + 1.0


def test_zero_delay():
    assert HMSMProtocol(100.0).startup_delay(5.0) == 0.0


def test_validation():
    with pytest.raises(ConfigurationError):
        HMSMProtocol(duration=0.0)
