"""Tests for repro.protocols.dsb — dynamic skyscraper broadcasting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocols.dsb import DynamicSkyscraperProtocol
from repro.protocols.sb import sb_streams_for_segments
from repro.protocols.ud import UniversalDistributionProtocol
from repro.sim.slotted import SlottedSimulation
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals


def test_idle_system_costs_nothing():
    dsb = DynamicSkyscraperProtocol(n_streams=4)
    assert all(dsb.slot_load(s) == 0 for s in range(30))


def test_one_request_marks_one_cycle_per_group():
    dsb = DynamicSkyscraperProtocol(n_streams=3)  # widths 1, 2, 2
    dsb.handle_request(slot=0)
    # S1's slot, then one W=2 cycle on each of streams 2 and 3.
    total = sum(dsb.slot_load(s) for s in range(1, 10))
    assert total == 1 + 2 + 2


def test_marking_is_idempotent():
    dsb = DynamicSkyscraperProtocol(n_streams=3)
    dsb.handle_request(slot=0)
    loads = [dsb.slot_load(s) for s in range(10)]
    dsb.handle_request(slot=0)
    assert [dsb.slot_load(s) for s in range(10)] == loads


def test_cycles_meet_sb_deadlines():
    """Each marked cycle delivers group g's segments by their playout slots
    (the same latest-cycle rule the static SB client uses)."""
    dsb = DynamicSkyscraperProtocol(n_streams=5)
    for arrival in range(20):
        first = 1
        for width in dsb.widths:
            cycle = ((arrival + first) // width) * width
            # Segment first+m arrives during cycle+m <= arrival+first+m, and
            # reception starts after the arrival slot.
            assert cycle > arrival
            assert cycle <= arrival + first
            first += width


def test_saturation_reverts_to_sb():
    dsb = DynamicSkyscraperProtocol(n_segments=99)
    k = sb_streams_for_segments(99)
    sim = SlottedSimulation(dsb, 1.0, 400, warmup_slots=100)
    times = DeterministicArrivals(interval=0.5).generate(400.0, np.random.default_rng(0))
    result = sim.run(times)
    assert result.mean_streams == pytest.approx(float(k))


def test_needs_more_bandwidth_than_ud_at_saturation():
    """"it also requires a higher server bandwidth than the UD protocol"."""
    def saturated(protocol):
        sim = SlottedSimulation(protocol, 1.0, 400, warmup_slots=100)
        times = DeterministicArrivals(interval=0.5).generate(
            400.0, np.random.default_rng(0)
        )
        return sim.run(times).mean_streams

    dsb_mean = saturated(DynamicSkyscraperProtocol(n_segments=99))
    ud_mean = saturated(UniversalDistributionProtocol(n_segments=99))
    assert dsb_mean > ud_mean


def test_low_rate_far_below_saturation(rng):
    dsb = DynamicSkyscraperProtocol(n_segments=99)
    d = 7200.0 / 99
    sim = SlottedSimulation(dsb, d, 2000, warmup_slots=200)
    times = PoissonArrivals(3.0).generate(2000 * d, rng)
    result = sim.run(times)
    assert result.mean_streams < 0.5 * dsb.n_streams


def test_release_before_prunes():
    dsb = DynamicSkyscraperProtocol(n_streams=3)
    dsb.handle_request(slot=0)
    dsb.release_before(50)
    assert all(len(marks) == 0 for marks in dsb._marked_cycles.values())
    dsb.handle_request(slot=50)
    assert sum(dsb.slot_load(s) for s in range(50, 60)) > 0


def test_validation():
    with pytest.raises(ConfigurationError):
        DynamicSkyscraperProtocol()
