"""Tests for repro.protocols.harmonic."""

import pytest

from repro.analysis.theory import harmonic_number
from repro.errors import ConfigurationError
from repro.protocols.harmonic import HarmonicBroadcasting


def test_total_bandwidth_is_harmonic_number():
    hb = HarmonicBroadcasting(n_segments=99, duration=7200.0)
    assert hb.total_bandwidth == pytest.approx(harmonic_number(99))


def test_sub_stream_bandwidths():
    hb = HarmonicBroadcasting(n_segments=4, duration=100.0)
    assert [hb.sub_stream_bandwidth(j) for j in range(1, 5)] == [
        1.0, 0.5, pytest.approx(1 / 3), 0.25
    ]
    assert sum(hb.sub_stream_bandwidth(j) for j in range(1, 5)) == pytest.approx(
        hb.total_bandwidth
    )


def test_delivery_exactly_meets_deadlines():
    hb = HarmonicBroadcasting(n_segments=10, duration=100.0)
    for j in range(1, 11):
        assert hb.delivery_complete_by(j) == pytest.approx(j * hb.segment_duration)


def test_max_wait():
    hb = HarmonicBroadcasting(n_segments=99, duration=7200.0)
    assert hb.max_wait == pytest.approx(7200.0 / 99)


def test_harmonic_undershoots_pagoda_and_fb():
    """Equal-bandwidth stream protocols can only approximate H(n)."""
    from repro.protocols.fb import fb_streams_for_segments
    from repro.protocols.npb import pagoda_streams_for_segments

    hb = HarmonicBroadcasting(n_segments=99, duration=7200.0)
    assert hb.total_bandwidth < pagoda_streams_for_segments(99)
    assert hb.total_bandwidth < fb_streams_for_segments(99)


class TestPolyharmonic:
    def test_m_one_is_classic_harmonic(self):
        from repro.protocols.harmonic import PolyharmonicBroadcasting

        phb = PolyharmonicBroadcasting(n_segments=50, duration=1000.0, m=1)
        hb = HarmonicBroadcasting(n_segments=50, duration=1000.0)
        assert phb.total_bandwidth == pytest.approx(hb.total_bandwidth)
        assert phb.max_wait == pytest.approx(hb.max_wait)

    def test_bandwidth_formula(self):
        from repro.protocols.harmonic import PolyharmonicBroadcasting

        phb = PolyharmonicBroadcasting(n_segments=4, duration=100.0, m=3)
        # sum 1/(m+j-1) for j=1..4 = 1/3 + 1/4 + 1/5 + 1/6.
        assert phb.total_bandwidth == pytest.approx(1 / 3 + 1 / 4 + 1 / 5 + 1 / 6)

    def test_larger_m_trades_wait_for_bandwidth(self):
        from repro.protocols.harmonic import PolyharmonicBroadcasting

        bandwidths, waits = [], []
        for m in (1, 2, 4, 8):
            phb = PolyharmonicBroadcasting(n_segments=99, duration=7200.0, m=m)
            bandwidths.append(phb.total_bandwidth)
            waits.append(phb.max_wait)
        assert bandwidths == sorted(bandwidths, reverse=True)
        assert waits == sorted(waits)

    def test_preloading_removes_wait_and_substreams(self):
        from repro.protocols.harmonic import PolyharmonicBroadcasting

        phb = PolyharmonicBroadcasting(
            n_segments=10, duration=100.0, m=3, preloaded=3
        )
        assert phb.max_wait == 0.0
        assert phb.sub_stream_bandwidth(2) == 0.0
        assert phb.sub_stream_bandwidth(4) == pytest.approx(1 / 6)
        assert phb.delivery_complete_by(1) == 0.0

    def test_delivery_always_on_time(self):
        from repro.protocols.harmonic import PolyharmonicBroadcasting

        phb = PolyharmonicBroadcasting(n_segments=20, duration=400.0, m=5)
        d = phb.segment_duration
        for j in range(1, 21):
            playout_start = (phb.m + j - 1) * d
            assert phb.delivery_complete_by(j) <= playout_start + 1e-9

    def test_validation(self):
        from repro.protocols.harmonic import PolyharmonicBroadcasting

        with pytest.raises(ConfigurationError):
            PolyharmonicBroadcasting(n_segments=5, duration=10.0, m=0)
        with pytest.raises(ConfigurationError):
            PolyharmonicBroadcasting(n_segments=5, duration=10.0, preloaded=6)


def test_validation():
    with pytest.raises(ConfigurationError):
        HarmonicBroadcasting(n_segments=0, duration=100.0)
    with pytest.raises(ConfigurationError):
        HarmonicBroadcasting(n_segments=5, duration=0.0)
    hb = HarmonicBroadcasting(n_segments=5, duration=100.0)
    with pytest.raises(ConfigurationError):
        hb.sub_stream_bandwidth(6)
    with pytest.raises(ConfigurationError):
        hb.delivery_complete_by(0)
