"""Tests for repro.protocols.fb — Fast Broadcasting (paper Figure 1)."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.base import verify_static_map
from repro.protocols.fb import (
    FastBroadcasting,
    fb_map,
    fb_segments_for_streams,
    fb_streams_for_segments,
)

FIGURE_1 = """\
Stream 1  S1 S1 S1 S1
Stream 2  S2 S3 S2 S3
Stream 3  S4 S5 S6 S7"""


def test_figure_1_reproduced_verbatim():
    assert fb_map(3).render(4) == FIGURE_1


def test_capacity_formula():
    assert [fb_segments_for_streams(k) for k in range(1, 6)] == [1, 3, 7, 15, 31]


def test_streams_for_segments():
    assert fb_streams_for_segments(7) == 3
    assert fb_streams_for_segments(8) == 4
    assert fb_streams_for_segments(99) == 7
    assert fb_streams_for_segments(1) == 1


def test_stream_s_carries_its_dyadic_range():
    m = fb_map(4)
    assert m.patterns[3] == list(range(8, 16))


@pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6, 7])
def test_delivery_guarantee(k):
    verify_static_map(fb_map(k), exhaustive_arrivals=16 if k <= 4 else 0)


def test_truncated_last_stream():
    m = fb_map(7, n_segments=99)
    assert m.n_segments == 99
    assert m.patterns[6] == list(range(64, 100))
    verify_static_map(m)


def test_truncation_bounds():
    with pytest.raises(ConfigurationError):
        fb_map(3, n_segments=8)  # above capacity
    with pytest.raises(ConfigurationError):
        fb_map(3, n_segments=3)  # below what 3 streams imply


def test_protocol_interface():
    fb = FastBroadcasting(n_streams=3)
    assert (fb.n_segments, fb.n_streams) == (7, 3)
    assert fb.slot_load(12345) == 3


def test_for_segments_constructor():
    fb = FastBroadcasting.for_segments(99)
    assert fb.n_streams == 7
    assert fb.n_segments == 99


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        FastBroadcasting()
    with pytest.raises(ConfigurationError):
        fb_segments_for_streams(0)
    with pytest.raises(ConfigurationError):
        fb_streams_for_segments(0)
