"""Tests for repro.protocols.staggered."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.staggered import StaggeredBroadcasting


def test_constant_load():
    stag = StaggeredBroadcasting(n_channels=5, duration=7200.0)
    stag.handle_request(3)
    assert stag.slot_load(0) == 5
    assert stag.slot_load(99999) == 5
    assert stag.requests_admitted == 1


def test_waiting_times():
    stag = StaggeredBroadcasting(n_channels=4, duration=7200.0)
    assert stag.slot_duration == 1800.0
    assert stag.max_wait == 1800.0
    assert stag.mean_wait == 900.0


def test_more_channels_shorter_wait():
    waits = [
        StaggeredBroadcasting(n_channels=c, duration=7200.0).max_wait
        for c in (1, 2, 10, 100)
    ]
    assert waits == sorted(waits, reverse=True)


def test_staggered_is_far_worse_than_segment_protocols():
    """Matching DHB's 73-second wait would need 99 channels vs ~5-6 streams
    — the gap the buffering-based protocols opened."""
    matching = StaggeredBroadcasting(n_channels=99, duration=7200.0)
    assert matching.max_wait == pytest.approx(7200.0 / 99)
    assert matching.slot_load(0) == 99


def test_validation():
    with pytest.raises(ConfigurationError):
        StaggeredBroadcasting(n_channels=0, duration=10.0)
    with pytest.raises(ConfigurationError):
        StaggeredBroadcasting(n_channels=1, duration=0.0)
