"""Tests for repro.protocols.catching."""

import pytest

from repro.analysis.theory import (
    optimal_catching_channels,
    staggered_catching_cost_rate,
)
from repro.errors import ConfigurationError
from repro.protocols.catching import SelectiveCatchingProtocol
from repro.sim.continuous import ContinuousSimulation
from repro.workload.arrivals import PoissonArrivals


def test_cycle_gap():
    sc = SelectiveCatchingProtocol(duration=100.0, n_channels=4)
    assert sc.cycle_gap == 25.0


def test_patch_is_time_since_cycle_start():
    sc = SelectiveCatchingProtocol(duration=100.0, n_channels=2)
    intervals = sc.handle_request(60.0)
    assert intervals[-1] == (60.0, 70.0)  # Delta = 60 - 50


def test_request_at_cycle_start_needs_no_patch():
    sc = SelectiveCatchingProtocol(duration=100.0, n_channels=2)
    intervals = sc.handle_request(50.0)
    # Only lazily emitted broadcast cycles, no patch.
    assert all(start in (0.0, 50.0) for start, _ in intervals)


def test_broadcast_cycles_flushed_at_finish():
    sc = SelectiveCatchingProtocol(duration=100.0, n_channels=2)
    cycles = sc.finish(200.0)
    starts = [start for start, _ in cycles]
    assert starts == [0.0, 50.0, 100.0, 150.0, 200.0]


def test_channel_count_from_rate():
    sc = SelectiveCatchingProtocol(duration=7200.0, expected_rate_per_hour=100.0)
    assert sc.n_channels == optimal_catching_channels(100.0 / 3600.0, 7200.0)


def test_simulation_matches_theory(rng):
    duration, rate = 7200.0, 60.0
    channels = optimal_catching_channels(rate / 3600.0, duration)
    protocol = SelectiveCatchingProtocol(duration, n_channels=channels)
    horizon = 200 * 3600.0
    sim = ContinuousSimulation(protocol, horizon, warmup=horizon * 0.05)
    times = PoissonArrivals(rate).generate(horizon, rng)
    result = sim.run(times)
    theory = staggered_catching_cost_rate(rate / 3600.0, duration, channels)
    assert result.mean_streams == pytest.approx(theory, rel=0.08)


def test_zero_delay():
    sc = SelectiveCatchingProtocol(duration=100.0, n_channels=1)
    assert sc.startup_delay(42.0) == 0.0


def test_validation():
    with pytest.raises(ConfigurationError):
        SelectiveCatchingProtocol(duration=0.0, n_channels=1)
    with pytest.raises(ConfigurationError):
        SelectiveCatchingProtocol(duration=10.0, n_channels=0)
    with pytest.raises(ConfigurationError):
        SelectiveCatchingProtocol(duration=10.0)
