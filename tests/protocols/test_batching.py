"""Tests for repro.protocols.batching."""

import pytest

from repro.analysis.theory import batching_cost_rate
from repro.errors import ConfigurationError
from repro.protocols.batching import BatchingProtocol
from repro.sim.continuous import ContinuousSimulation
from repro.workload.arrivals import PoissonArrivals


def test_batch_opens_and_serves_later():
    b = BatchingProtocol(duration=100.0, window=10.0)
    assert b.handle_request(5.0) == [(15.0, 115.0)]


def test_joining_requests_are_free_and_wait_less():
    b = BatchingProtocol(duration=100.0, window=10.0)
    b.handle_request(5.0)
    assert b.handle_request(12.0) == []
    assert b.startup_delay(12.0) == pytest.approx(3.0)


def test_next_batch_after_service():
    b = BatchingProtocol(duration=100.0, window=10.0)
    b.handle_request(0.0)
    assert b.handle_request(10.0) == [(20.0, 120.0)]
    assert b.batches_served == 2


def test_waits_bounded_by_window():
    b = BatchingProtocol(duration=100.0, window=10.0)
    b.handle_request(0.0)
    for t in [1.0, 5.0, 9.9]:
        b.handle_request(t)
        assert 0.0 <= b.startup_delay(t) <= 10.0


def test_simulation_matches_theory(rng):
    duration, rate, window = 7200.0, 60.0, 300.0
    protocol = BatchingProtocol(duration, window)
    horizon = 300 * 3600.0
    sim = ContinuousSimulation(protocol, horizon, warmup=horizon * 0.05)
    times = PoissonArrivals(rate).generate(horizon, rng)
    result = sim.run(times)
    theory = batching_cost_rate(rate / 3600.0, duration, window)
    assert result.mean_streams == pytest.approx(theory, rel=0.08)
    assert result.max_wait <= window + 1e-9


def test_validation():
    with pytest.raises(ConfigurationError):
        BatchingProtocol(duration=0.0)
    with pytest.raises(ConfigurationError):
        BatchingProtocol(duration=10.0, window=-1.0)
