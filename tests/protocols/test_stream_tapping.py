"""Tests for repro.protocols.stream_tapping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocols.stream_tapping import StreamTappingProtocol
from repro.sim.continuous import ContinuousSimulation
from repro.workload.arrivals import PoissonArrivals


def make(duration=100.0, **kwargs):
    kwargs.setdefault("expected_rate_per_hour", 360.0)
    return StreamTappingProtocol(duration=duration, **kwargs)


def test_first_request_gets_complete_stream():
    st = make()
    assert st.handle_request(0.0) == [(0.0, 100.0)]
    assert st.complete_streams == 1


def test_second_request_full_tap():
    st = make()
    st.handle_request(0.0)
    assert st.handle_request(4.0) == [(4.0, 8.0)]


def test_extra_tapping_reduces_cost():
    st = make()
    st.handle_request(0.0)
    st.handle_request(4.0)
    pieces = st.handle_request(6.0)
    # Taps [2,4) of the previous 4-second tap: pays 2*(6-4) = 4 s total.
    assert pieces == [(6.0, 8.0), (10.0, 12.0)]
    total = sum(end - start for start, end in pieces)
    assert total == pytest.approx(4.0)


def test_without_extra_tapping_cost_is_delta():
    st = make(extra_tapping=False)
    st.handle_request(0.0)
    st.handle_request(4.0)
    pieces = st.handle_request(6.0)
    assert pieces == [(6.0, 12.0)]  # the whole 6-second prefix


def test_chained_taps_across_many_members():
    """Manual trace of extra tapping at a steady 10-second cadence.

    A member's pieces are transmitted just-in-time, so a newcomer can only
    capture positions >= (its arrival - the member's arrival):

    * t=10: nothing to tap -> pays its 10 s prefix, pieces [0,10).
    * t=20: the t=10 member finished transmitting exactly at 20 -> pays 20.
    * t=30: taps [10,20) from the t=20 member -> pays [0,10) + [20,30) = 20.
    * t=40: only [20,30) of the t=30 member is still capturable -> pays 30.
    """
    st = make(restart_window=1000.0, duration=1000.0)
    st.handle_request(0.0)
    costs = []
    for t in [10.0, 20.0, 30.0, 40.0]:
        pieces = st.handle_request(t)
        costs.append(sum(e - s for s, e in pieces))
    assert costs == pytest.approx([10.0, 20.0, 20.0, 30.0])
    # Every cost is bounded by the full-tap fallback.
    for t, cost in zip([10.0, 20.0, 30.0, 40.0], costs):
        assert cost <= t


def test_restart_window_triggers_new_complete_stream():
    st = make(restart_window=10.0)
    st.handle_request(0.0)
    result = st.handle_request(50.0)
    assert result == [(50.0, 150.0)]
    assert st.complete_streams == 2


def test_group_expires_with_video_end():
    st = make(restart_window=1e9)
    st.handle_request(0.0)
    result = st.handle_request(150.0)  # past the end of the complete stream
    assert result == [(150.0, 250.0)]
    assert st.complete_streams == 2


def test_optimal_window_used_when_rate_given():
    st = StreamTappingProtocol(duration=7200.0, expected_rate_per_hour=10.0)
    window = st.restart_window()
    lam = 10.0 / 3600.0
    expected = (np.sqrt(1 + 2 * lam * 7200.0) - 1) / lam
    assert window == pytest.approx(expected)


def test_online_rate_estimate_adapts():
    st = StreamTappingProtocol(duration=7200.0)
    assert st.restart_window() == pytest.approx(7200.0)  # no estimate yet
    for t in np.arange(0.0, 3600.0, 60.0):
        st.handle_request(float(t))
    # ~60 requests/hour: the adaptive window must now be far below D.
    assert st.restart_window() < 3000.0


def test_zero_delay():
    assert make().startup_delay(5.0) == 0.0


def test_mean_cost_tracks_patching_theory(rng):
    """With extra tapping the measured cost must beat plain patching but
    stay in its ballpark."""
    from repro.analysis.theory import patching_cost_rate

    duration, rate = 7200.0, 20.0
    st = StreamTappingProtocol(duration, expected_rate_per_hour=rate)
    horizon = 400 * 3600.0
    sim = ContinuousSimulation(st, horizon, warmup=horizon * 0.05)
    times = PoissonArrivals(rate).generate(horizon, rng)
    result = sim.run(times)
    theory = patching_cost_rate(rate / 3600.0, duration)
    assert result.mean_streams <= theory * 1.05
    assert result.mean_streams >= theory * 0.5


def test_validation():
    with pytest.raises(ConfigurationError):
        StreamTappingProtocol(duration=0.0)
