"""Tests for repro.protocols.sb — Skyscraper Broadcasting (paper Figure 3)."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.base import verify_static_map
from repro.protocols.sb import (
    SkyscraperBroadcasting,
    sb_map,
    sb_segments_for_streams,
    sb_streams_for_segments,
    skyscraper_widths,
)

FIGURE_3 = """\
Stream 1  S1 S1 S1 S1
Stream 2  S2 S3 S2 S3
Stream 3  S4 S5 S4 S5"""


def test_figure_3_reproduced_verbatim():
    assert sb_map(3).render(4) == FIGURE_3


def test_width_series():
    assert skyscraper_widths(9) == [1, 2, 2, 5, 5, 12, 12, 25, 25]


def test_width_cap():
    assert skyscraper_widths(8, width_cap=12) == [1, 2, 2, 5, 5, 12, 12, 12]


def test_widths_never_exceed_first_segment_of_group():
    widths = skyscraper_widths(12)
    first = 1
    for width in widths:
        assert width <= first
        first += width


def test_capacity():
    assert sb_segments_for_streams(3) == 5
    assert sb_segments_for_streams(6) == 27


def test_streams_for_segments():
    assert sb_streams_for_segments(5) == 3
    assert sb_streams_for_segments(6) == 4
    assert sb_streams_for_segments(99) == 10


def test_sb_needs_more_streams_than_fb_and_npb():
    """"SB will always require more server bandwidth than NPB and FB"."""
    from repro.protocols.fb import fb_streams_for_segments
    from repro.protocols.npb import pagoda_streams_for_segments

    for n in [5, 15, 27, 52, 99]:
        assert sb_streams_for_segments(n) >= fb_streams_for_segments(n)
        assert sb_streams_for_segments(n) >= pagoda_streams_for_segments(n)


@pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6, 7, 8])
def test_delivery_guarantee(k):
    verify_static_map(sb_map(k), exhaustive_arrivals=12 if k <= 4 else 0)


@pytest.mark.parametrize("k", [2, 3, 5, 7, 9])
def test_two_stream_client_property(k):
    """The signature SB constraint: an STB never receives more than two
    streams at once."""
    sb = SkyscraperBroadcasting(n_streams=k)
    assert sb.max_client_streams(n_arrival_slots=120) <= 2


def test_client_downloads_meet_deadlines():
    sb = SkyscraperBroadcasting(n_streams=5)
    widths = sb.widths
    for arrival in range(30):
        intervals = sb._client_download_intervals(arrival)
        first_segment = 1
        for (start, end), width in zip(intervals, widths):
            # Group g's download must start after arrival and deliver its
            # m-th segment (start + m) no later than playout (arrival +
            # first_segment + m).
            assert start > arrival
            assert start <= arrival + first_segment
            assert end - start == width
            first_segment += width


def test_protocol_interface():
    sb = SkyscraperBroadcasting(n_segments=20)
    assert sb.n_segments >= 20
    assert sb.slot_load(7) == sb.n_streams


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        SkyscraperBroadcasting()
    with pytest.raises(ConfigurationError):
        skyscraper_widths(0)
    with pytest.raises(ConfigurationError):
        skyscraper_widths(3, width_cap=0)
    with pytest.raises(ConfigurationError):
        sb_streams_for_segments(0)
